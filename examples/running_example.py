#!/usr/bin/env python3
"""Reproduce the paper's worked examples (Figure 1 and Figure 3).

* Example 1 — a seven-vertex network where five well-chosen edges carry
  more expected information to Q than the six-edge maximum-probability
  spanning tree.
* Example 2 / Figure 3 — the 17-vertex graph whose F-tree decomposes into
  three mono-connected and three bi-connected components; the F-tree
  expected flow is compared against exact possible-world enumeration.

Run with:  python examples/running_example.py
"""

from __future__ import annotations

from repro.experiments.running_example import (
    QUERY,
    example1_report,
    ftree_example_graph,
    ftree_example_insertion_order,
    ftree_example_report,
)
from repro.ftree import ComponentSampler, FTree


def main() -> None:
    # ------------------------------------------------------------------
    # Example 1 (Figure 1)
    # ------------------------------------------------------------------
    report = example1_report()
    print("Example 1 (Figure 1 replica)")
    print(f"  expected flow, all 10 edges activated : {report.flow_all_edges:.3f}")
    print(
        f"  expected flow, Dijkstra spanning tree  : {report.flow_dijkstra_tree:.3f}"
        f"  ({report.dijkstra_edges} edges)"
    )
    print(f"  expected flow, best 5-edge subgraph    : {report.flow_optimal_five:.3f}")
    print(f"  5 edges dominate the spanning tree     : {report.optimal_dominates_dijkstra}")
    print(f"  optimal edges: {[f'{e.u}-{e.v}' for e in report.optimal_edges]}")
    print()

    # ------------------------------------------------------------------
    # Example 2 (Figure 3): build the F-tree incrementally and inspect it
    # ------------------------------------------------------------------
    graph = ftree_example_graph()
    ftree = FTree(graph, QUERY, sampler=ComponentSampler(n_samples=500, exact_threshold=12, seed=0))
    cases = []
    for edge in ftree_example_insertion_order():
        cases.append(ftree.insert_edge(edge.u, edge.v).case)
    print("Example 2 (Figure 3 replica)")
    print(f"  insertion case frequencies: "
          f"{ {case: cases.count(case) for case in sorted(set(cases))} }")
    for component in sorted(ftree.components(), key=lambda c: c.component_id):
        kind = "mono" if component.is_mono else "bi  "
        print(
            f"  component #{component.component_id:<2} [{kind}] "
            f"articulation={component.articulation!r:>4} "
            f"vertices={sorted(component.vertices, key=str)}"
        )
    comparison = ftree_example_report()
    print(f"  expected flow (F-tree)           : {comparison.ftree_flow:.6f}")
    print(f"  expected flow (exact enumeration): {comparison.exact_flow:.6f}")
    print(f"  relative difference              : {comparison.agreement:.2e}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Road-network information propagation (paper Section 7.4, Figure 9a).

Sensors placed at road intersections propagate measurements towards a
collection point; the probability that two adjacent intersections can
communicate decays exponentially with their physical distance
(``exp(-0.001 · metres)``, the law the paper applies to the San Joaquin
road network).  Road networks have very low vertex degree and a strong
locality structure, which is where the F-tree heuristics shine and the
Dijkstra spanning tree wastes its budget on long, fragile paths.

Run with:  python examples/road_network.py
"""

from __future__ import annotations

from repro.datasets import san_joaquin_surrogate
from repro.experiments.harness import evaluate_flow, pick_query_vertex
from repro.experiments.reporting import format_table
from repro.selection import make_selector


def main() -> None:
    road_network = san_joaquin_surrogate(400, seed=13)
    collection_point = pick_query_vertex(road_network)
    print(
        f"road network: {road_network.n_vertices} intersections, "
        f"{road_network.n_edges} road segments\n"
        f"collection point: intersection {collection_point}\n"
    )

    rows = []
    for budget in (15, 30, 60):
        for name in ("Dijkstra", "FT+M", "FT+M+CI", "FT+M+CI+DS"):
            selector = make_selector(name, n_samples=150, seed=21)
            result = selector.select(road_network, collection_point, budget)
            flow = evaluate_flow(
                road_network, result.selected_edges, collection_point, n_samples=500, seed=3
            )
            rows.append(
                {
                    "budget k": budget,
                    "algorithm": result.algorithm,
                    "expected flow": flow,
                    "runtime [s]": result.elapsed_seconds,
                }
            )

    print(format_table(rows, title="Information reaching the collection point"))
    print(
        "\nOn road networks the locality assumption holds strongly: the confidence-\n"
        "interval and delayed-sampling heuristics cut the running time while the\n"
        "collected information stays essentially unchanged (compare the FT+M rows)."
    )


if __name__ == "__main__":
    main()

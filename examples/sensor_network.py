#!/usr/bin/env python3
"""Wireless sensor network scenario (paper Section 7.3, Figure 8).

A set of sensors is scattered uniformly over the unit square; two sensors
can communicate when they are within radio range ``eps`` of each other,
and every link succeeds only with some probability.  A sink node wants to
collect as much sensed information as possible, but every activated link
costs energy — so only ``k`` links may be switched on.

The script compares the Dijkstra spanning tree (the classic WSN
interconnection strategy) with the F-tree greedy selection at several
budgets and shows how quickly the spanning tree falls behind once links
can fail.

Run with:  python examples/sensor_network.py
"""

from __future__ import annotations

from repro import make_selector
from repro.experiments.harness import evaluate_flow
from repro.experiments.reporting import format_table
from repro.graph.generators import wsn_graph_with_positions


def main() -> None:
    n_sensors = 400
    eps = 0.07
    graph, positions = wsn_graph_with_positions(n_sensors, eps=eps, seed=3)

    # the sink is the sensor closest to the centre of the deployment area
    sink = min(
        positions,
        key=lambda v: (positions[v][0] - 0.5) ** 2 + (positions[v][1] - 0.5) ** 2,
    )
    print(
        f"wireless sensor network: {graph.n_vertices} sensors, {graph.n_edges} possible links\n"
        f"radio range eps={eps}, sink node {sink} at {positions[sink]}\n"
    )

    rows = []
    for budget in (10, 20, 40):
        for name in ("Dijkstra", "FT+M", "FT+M+DS"):
            selector = make_selector(name, n_samples=200, seed=11)
            result = selector.select(graph, sink, budget)
            flow = evaluate_flow(graph, result.selected_edges, sink, n_samples=600, seed=5)
            rows.append(
                {
                    "budget k": budget,
                    "algorithm": result.algorithm,
                    "expected flow": flow,
                    "runtime [s]": result.elapsed_seconds,
                }
            )

    print(format_table(rows, title="Information collected at the sink per link budget"))
    print(
        "\nBecause sensor links fail independently, a pure spanning tree loses whole\n"
        "subtrees whenever a single link fails; the F-tree selection spends part of the\n"
        "budget on redundant links around the sink and collects noticeably more data."
    )


if __name__ == "__main__":
    main()

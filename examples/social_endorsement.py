#!/usr/bin/env python3
"""Social endorsement campaign (the paper's LinkedIn-style motivation).

A professional network user Q wants to collect as many endorsements as
possible.  The service provider may ask a limited number of connections
— i.e. activate a limited number of edges — and an asked user endorses Q
only with the probability attached to the edge (strong ties are likely
to endorse, weak ties rarely do).  Users who endorsed Q can in turn
convince their own contacts.

The script builds a Facebook-circles-style surrogate network (dense, ten
high-probability "close friends" per user), selects which connections to
ask with several strategies and reports the expected number of
endorsements.

Run with:  python examples/social_endorsement.py
"""

from __future__ import annotations

from repro.datasets import facebook_surrogate
from repro.experiments.harness import evaluate_flow
from repro.experiments.reporting import format_table
from repro.selection import make_selector


def main() -> None:
    network = facebook_surrogate(250, seed=8)
    # every vertex counts as one potential endorsement
    for person in network.vertices():
        network.set_weight(person, 1.0)
    # the campaign target: the best-connected user
    target = max(network.vertices(), key=network.degree)
    print(
        f"social network: {network.n_vertices} users, {network.n_edges} ties\n"
        f"campaign target: user {target} with {network.degree(target)} direct ties\n"
    )

    budgets = (5, 15, 30)
    rows = []
    for budget in budgets:
        for name in ("Random", "Dijkstra", "FT+M", "FT+M+CI+DS"):
            selector = make_selector(name, n_samples=150, seed=4)
            result = selector.select(network, target, budget)
            endorsements = evaluate_flow(
                network, result.selected_edges, target, n_samples=600, seed=2
            )
            rows.append(
                {
                    "asked ties": budget,
                    "strategy": result.algorithm,
                    "expected endorsements": endorsements,
                    "runtime [s]": result.elapsed_seconds,
                }
            )

    print(format_table(rows, title="Expected endorsements per campaign budget"))
    print(
        "\nIn a dense social network most of the budget should go to the strong ties\n"
        "around the target plus a few redundant 'second chances' through mutual\n"
        "friends — exactly the cyclic structures the F-tree evaluates with local\n"
        "sampling while everything tree-shaped is computed analytically."
    )


if __name__ == "__main__":
    main()

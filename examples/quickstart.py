#!/usr/bin/env python3
"""Quickstart: maximise information flow towards a query vertex.

Generates a small uncertain graph, runs the paper's main algorithm
(FT+M: greedy edge selection on the F-tree with memoization) next to the
two baselines (Dijkstra spanning tree, Naive whole-graph sampling), and
prints the expected information flow and runtime of each.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import make_selector, partitioned_graph
from repro.experiments.harness import evaluate_flow, pick_query_vertex
from repro.experiments.reporting import format_table

# Every Monte-Carlo estimate runs on a pluggable possible-world sampling
# backend: "vectorized" (batched NumPy, the default) or "naive" (one BFS
# per world, the readable reference).  Both yield bit-for-bit identical
# estimates for the same seed, so the choice is purely about speed.  Pick
# one with the `backend` argument of make_selector / evaluate_flow /
# ComponentSampler, `ExperimentConfig(backend=...)`, or `--backend` on
# the CLI:
#
#     selector = make_selector("FT+M", n_samples=300, seed=7, backend="vectorized")
#     flow = evaluate_flow(graph, edges, query, backend="naive")
#
# Candidate scoring inside the greedy selectors additionally uses common
# random numbers (CRN) by default: one shared batch of possible worlds
# per selection round, scored incrementally through
# repro.reachability.EvaluationContext — one backend draw amortized over
# every candidate of the round, and no cross-candidate sampling noise.
# `crn=False` (or --resample-per-candidate on the CLI) restores the
# paper's literal resample-per-candidate reference mode:
#
#     selector = make_selector("Naive", n_samples=1000, seed=7, crn=False)
#
# The context is also usable directly — one call scores a whole greedy
# round against the same worlds:
#
#     from repro.reachability import EvaluationContext
#     context = EvaluationContext(graph, query, n_samples=1000, seed=7)
#     scores = context.score_candidates(selected_edges, candidate_edges)
#     index, edge, flow = scores.best()
#
# Sampling scales across cores through repro.parallel: requests are split
# into fixed-size shards, each shard draws from its own SeedSequence-
# spawned child stream, and an executor fans the shards out — results are
# bit-for-bit identical for any worker count at a fixed (seed, n_samples,
# shard_size).  Pass a worker count (or a shared ProcessExecutor) to the
# estimators and selectors, ExperimentConfig(workers=...), or --workers
# on the CLI:
#
#     from repro import ProcessExecutor
#     with ProcessExecutor(4) as pool:
#         selector = make_selector("FT+M", n_samples=1000, seed=7, executor=pool)
#
# And instead of a fixed sample budget, n_samples="auto" keeps drawing
# shards only until the confidence interval is tight enough:
#
#     from repro import AdaptiveSettings
#     from repro.reachability import monte_carlo_reachability
#     estimate = monte_carlo_reachability(
#         graph, query, target, n_samples="auto", seed=7,
#         adaptive=AdaptiveSettings(target_width=0.02, max_samples=5000),
#     )


def main() -> None:
    # 1. an uncertain graph with a locality structure (the paper's "partitioned"
    #    scheme): 300 vertices, degree 6, edge probabilities uniform in (0, 1],
    #    vertex weights uniform in [0, 10]
    graph = partitioned_graph(300, degree=6, seed=42)
    query = pick_query_vertex(graph)
    budget = 20
    print(f"graph: {graph.n_vertices} vertices / {graph.n_edges} edges, "
          f"query vertex {query}, budget k={budget}\n")

    # 2. run three algorithms on the same instance
    rows = []
    for name in ("Dijkstra", "Naive", "FT+M"):
        n_samples = 100 if name == "Naive" else 300
        selector = make_selector(name, n_samples=n_samples, seed=7)
        result = selector.select(graph, query, budget)
        # evaluate every result with the same independent estimator
        flow = evaluate_flow(graph, result.selected_edges, query, n_samples=800, seed=1)
        rows.append(
            {
                "algorithm": result.algorithm,
                "edges used": result.n_selected,
                "expected flow": flow,
                "runtime [s]": result.elapsed_seconds,
            }
        )

    # 3. report
    print(format_table(rows, title="Expected information flow towards the query vertex"))
    print(
        "\nThe greedy selections reach a clearly higher expected flow than the Dijkstra\n"
        "spanning tree at the same edge budget.  With the default CRN candidate scoring\n"
        "even the Naive whole-graph greedy is fast here; rerun with crn=False to see\n"
        "the paper's literal per-candidate resampling cost."
    )

    # 4. adaptive sampling: stop as soon as the estimate is tight enough
    #    instead of always paying a fixed budget
    from repro import AdaptiveSettings
    from repro.reachability import monte_carlo_reachability

    target = next(iter(graph.neighbors(query)))
    settings = AdaptiveSettings(target_width=0.05, alpha=0.05, max_samples=4000)
    estimate = monte_carlo_reachability(
        graph, query, target, n_samples="auto", seed=7, adaptive=settings
    )
    print(
        f"\nAdaptive sampling: P({query} <-> {target}) = {estimate.probability:.3f} "
        f"pinned to a {settings.target_width}-wide CI after {estimate.n_samples} of "
        f"{settings.max_samples} allowed worlds."
    )


if __name__ == "__main__":
    main()

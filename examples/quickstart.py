#!/usr/bin/env python3
"""Quickstart: maximise information flow towards a query vertex.

Generates a small uncertain graph, runs the paper's main algorithm
(FT+M: greedy edge selection on the F-tree with memoization) next to the
two baselines (Dijkstra spanning tree, Naive whole-graph sampling), and
prints the expected information flow and runtime of each.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.experiments.harness import pick_query_vertex
from repro.experiments.reporting import format_table

# All runtime knobs live in one scoped configuration object,
# repro.RuntimeConfig, activated with `with repro.session(...)`:
#
#   * backend     — possible-world sampling backend: "vectorized"
#                   (batched NumPy, the default), "csr" (frontier-sparse
#                   propagation over the cached CSR graph layout, faster
#                   on larger graphs — try backend="csr" below), or
#                   "naive" (one BFS per world, the readable reference).
#                   "csr-numba" appears too when numba is installed; run
#                   `repro-flow backends` to list availability.  All
#                   yield bit-for-bit identical estimates for the same
#                   seed.
#   * crn         — common-random-numbers candidate scoring (default
#                   True): one shared batch of possible worlds per greedy
#                   selection round.  crn=False restores the paper's
#                   literal resample-per-candidate reference mode.
#   * workers     — sharded parallel sampling: a worker count (the
#                   session owns and closes the pool) or a shared
#                   ProcessExecutor instance.  Results are bit-for-bit
#                   identical for any worker count at a fixed
#                   (seed, n_samples, shard_size).
#   * n_samples   — default Monte-Carlo budget for the session's methods;
#                   "auto" switches to adaptive CI-driven stopping.
#   * seed        — default seed for the session's methods.
#   * world_cache — digest-keyed LRU world cache for the batched query
#                   service (an entry bound, 0 to disable, or a shared
#                   WorldCache instance).
#
# Sessions scope cleanly (contextvar-based): they nest, restore the
# enclosing configuration on exit, and are invisible to other threads.
# The classic functional API (make_selector, monte_carlo_expected_flow,
# BatchEvaluator, EvaluationContext, ...) still works and resolves its
# unspecified arguments from the active session, so both styles compose:
#
#     with repro.session(backend="naive", workers=4):
#         selector = repro.make_selector("FT+M", n_samples=1000, seed=7)
#         result = selector.select(graph, query, budget)   # 4-way sharded, naive backend
#
# (The five legacy process-wide set_default_* functions still work for
# one release but emit DeprecationWarning — see the README's migration
# table.)


def main() -> None:
    # 1. an uncertain graph with a locality structure (the paper's "partitioned"
    #    scheme): 300 vertices, degree 6, edge probabilities uniform in (0, 1],
    #    vertex weights uniform in [0, 10]
    graph = repro.partitioned_graph(300, degree=6, seed=42)
    query = pick_query_vertex(graph)
    budget = 20
    print(f"graph: {graph.n_vertices} vertices / {graph.n_edges} edges, "
          f"query vertex {query}, budget k={budget}\n")

    # 2. run three algorithms on the same instance inside one session;
    #    every selection and evaluation below inherits the session's seed
    #    policy and would inherit backend/workers/... the same way
    rows = []
    with repro.session(seed=7) as s:
        for name in ("Dijkstra", "Naive", "FT+M"):
            n_samples = 100 if name == "Naive" else 300
            result = s.select(graph, query, budget, algorithm=name, n_samples=n_samples)
            # evaluate every result with the same independent estimator
            flow = s.evaluate_flow(graph, result.selected_edges, query,
                                   n_samples=800, seed=1)
            rows.append(
                {
                    "algorithm": result.algorithm,
                    "edges used": result.n_selected,
                    "expected flow": flow,
                    "runtime [s]": result.elapsed_seconds,
                }
            )

    # 3. report
    print(format_table(rows, title="Expected information flow towards the query vertex"))
    print(
        "\nThe greedy selections reach a clearly higher expected flow than the Dijkstra\n"
        "spanning tree at the same edge budget.  With the default CRN candidate scoring\n"
        "even the Naive whole-graph greedy is fast here; rerun inside\n"
        "repro.session(crn=False) to see the paper's literal per-candidate resampling cost."
    )

    # 4. adaptive sampling: a session whose default budget is "auto" stops
    #    as soon as the estimate is tight enough instead of always paying
    #    a fixed cost
    target = next(iter(graph.neighbors(query)))
    settings = repro.AdaptiveSettings(target_width=0.05, alpha=0.05, max_samples=4000)
    with repro.session(n_samples="auto", adaptive=settings, seed=7) as s:
        estimate = s.pair_reachability(graph, query, target)
    print(
        f"\nAdaptive sampling: P({query} <-> {target}) = {estimate.probability:.3f} "
        f"pinned to a {settings.target_width}-wide CI after {estimate.n_samples} of "
        f"{settings.max_samples} allowed worlds."
    )

    # 5. telemetry: the same knob resolution enables the unified
    #    observability layer for one scope — spans trace where the time
    #    went, counters tell how much work each layer did.  Telemetry is
    #    off by default and costs nothing when off; switching it on never
    #    changes a result.
    from repro.telemetry import InMemoryExporter, Telemetry, format_span_tree

    memory = InMemoryExporter()
    tel = Telemetry(exporters=[memory])
    with repro.session(telemetry=tel, seed=7) as s:
        s.expected_flow(graph, query, n_samples=800)
    counters = tel.snapshot()["counters"]
    print(
        f"\nTelemetry: {counters.get('engine.worlds_sampled', 0)} worlds sampled in "
        f"{counters.get('engine.sample_calls', 0)} engine call(s); span tree:"
    )
    print(format_span_tree(memory.spans[-1]))

    # 6. profiling: profile=True upgrades the pipeline so every span also
    #    records CPU time, allocation deltas and GC collections — the
    #    hot-span table ranks where the resources went, and the collapsed
    #    stacks feed flamegraph.pl / speedscope.  Like tracing, profiling
    #    never changes a sampled result.
    from repro.telemetry.profile import (
        ProfilingTelemetry,
        format_collapsed,
        format_hot_spans,
    )

    profile_memory = InMemoryExporter()
    profile_tel = ProfilingTelemetry(exporters=[profile_memory])
    with repro.session(telemetry=profile_tel, profile=True, seed=7) as s:
        s.expected_flow(graph, query, n_samples=800)
    profile_tel.close()
    print("\nProfiling: hot spans by self time (CPU / alloc / gc per span):")
    print(format_hot_spans(profile_memory.spans, limit=5))
    folded = format_collapsed(profile_memory.spans).splitlines()
    print(f"collapsed stacks for a flamegraph ({len(folded)} lines), e.g.:")
    print(f"  {folded[0]}")

    # 7. distributed execution: the same sharded sampling fanned out over
    #    a fleet of out-of-process workers speaking the JSONL wire
    #    protocol.  local_fleet() spawns them as local subprocesses over
    #    loopback; on real deployments each machine runs
    #    `repro-flow worker --connect HOST:PORT` and the session passes
    #    workers="remote:HOST:PORT" instead.  The determinism contract
    #    crosses the network untouched: for the same
    #    (seed, n_samples, shard_size) the fleet reproduces the
    #    single-process estimate bit-for-bit.
    from repro.distributed import local_fleet

    with repro.session(workers=1, shard_size=64, n_samples=800, seed=7) as s:
        local_estimate = s.expected_flow(graph, query)
    with local_fleet(2) as fleet:
        with repro.session(
            workers=fleet.executor, shard_size=64, n_samples=800, seed=7
        ) as s:
            fleet_estimate = s.expected_flow(graph, query)
        dispatched = fleet.executor.tasks_dispatched
    assert fleet_estimate.expected_flow == local_estimate.expected_flow
    print(
        f"\nDistributed: 2 loopback workers answered {dispatched} shard tasks "
        f"and reproduced the local estimate bit-for-bit "
        f"({fleet_estimate.expected_flow:.3f})."
    )


if __name__ == "__main__":
    main()

"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that environments without the ``wheel`` package (which modern editable
installs require) can still install the project with
``python setup.py develop`` or ``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()

#!/usr/bin/env python3
"""Load benchmark: the async serving tier versus a naive request loop.

Measures what :mod:`repro.server` exists for, on the Fig. 5 graph-size
sweep (Erdős graphs, degree 6): N concurrent clients fire the 64-query
mixed workload of ``bench_queries`` at one server over real loopback
TCP, and the coalescing dispatcher folds the concurrently-arriving
requests into shared ``QueryPlanner`` groups served from one world
cache.  The baseline is the pre-server serving story — a **naive
one-request-per-evaluate loop** (one uncached ``BatchEvaluator.evaluate``
call per request: no coalescing, no world reuse).

Reported per size:

* naive and served throughput (answers/s) and their ratio;
* request latency percentiles (p50/p95/p99, ms) from the server's own
  ``metrics`` surface — the numbers a ``{"kind": "metrics"}`` probe
  reports, including the cache hit/miss counters;
* coalescing effectiveness (batches dispatched, mean/largest batch).

Two correctness gates run inside the benchmark and abort on violation:

1. **determinism** — every answer every client receives must be
   bit-for-bit identical to a direct ``BatchEvaluator`` call for the
   same ``(seed, backend, shard plan)``;
2. **backpressure** — a flood against a deliberately tiny
   ``max_inflight`` bound must produce explicit ``over_capacity``
   rejections and zero hangs (every request gets *some* response).

Acceptance (ISSUE 6): coalesced serving must reach >= 3x the naive
loop's throughput at Fig. 5 sizes with 8 concurrent clients (gated in
full mode; ``--quick`` is the CI smoke run).

CI-smokeable like the other plain-script benchmarks::

    PYTHONPATH=src python benchmarks/bench_server.py                # full sweep
    PYTHONPATH=src python benchmarks/bench_server.py --quick        # CI smoke
    PYTHONPATH=src python benchmarks/bench_server.py --json out.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path
from typing import List

from _helpers import bench_environment
from bench_queries import build_workload
from repro.graph.generators import erdos_renyi_graph
from repro.runtime import RuntimeConfig
from repro.server import ReproServer, ServerClient, ServerConfig, protocol
from repro.service import BatchEvaluator, request_to_dict, result_to_dict

#: Fig. 5 graph-size sweep (scaled down, degree 6 => |E| ~ 3*|V|).
FULL_SIZES = (150, 300, 600)
QUICK_SIZES = (60,)

FULL_SAMPLES = 1000
QUICK_SAMPLES = 150

N_CLIENTS = 8
TARGET_RATIO = 3.0

#: Backpressure probe: flood size against a tiny admission bound.
PROBE_INFLIGHT = 4
PROBE_FLOOD = 24


def comparable(payload: dict) -> dict:
    """A response payload stripped to its deterministic evaluation bits."""
    return {
        key: value
        for key, value in payload.items()
        if key not in ("id", "ok", "latency_ms", "from_cache")
    }


def direct_reference(graph, requests) -> List[dict]:
    """The bit oracle: direct, uncached BatchEvaluator answers."""
    with BatchEvaluator(cache=0) as evaluator:
        results = evaluator.evaluate(graph, requests)
    return [comparable(json.loads(json.dumps(result_to_dict(r)))) for r in results]


def run_naive_loop(graph, requests) -> float:
    """The baseline: one uncached evaluate call per request."""
    started = time.perf_counter()
    with BatchEvaluator(cache=0) as evaluator:
        for request in requests:
            evaluator.evaluate(graph, [request])
    return time.perf_counter() - started


async def run_served_load(graph, requests, reference):
    """N concurrent clients over real TCP; returns (seconds, metrics)."""
    payloads = [request_to_dict(request) for request in requests]
    server = ReproServer(
        graph,
        ServerConfig(
            port=0,
            batch_window_ms=5.0,
            max_batch=128,
            max_inflight=4096,
            runtime=RuntimeConfig(world_cache=64),
        ),
    )
    await server.start()
    host, port = server.address

    async def one_client() -> None:
        client = await ServerClient.connect(host, port)
        try:
            responses = await asyncio.gather(
                *(client.query(payload) for payload in payloads)
            )
        finally:
            await client.close()
        answers = [comparable(response) for response in responses]
        if answers != reference:
            raise SystemExit(
                "served answers diverged from the direct BatchEvaluator bits"
            )

    try:
        started = time.perf_counter()
        await asyncio.gather(*(one_client() for _ in range(N_CLIENTS)))
        elapsed = time.perf_counter() - started
        metrics = server.metrics.snapshot()
        metrics["cache"] = server._cache_stats()
    finally:
        await server.stop()
    return elapsed, metrics


async def run_backpressure_probe(graph, requests) -> dict:
    """Flood a tiny admission bound; every request must get a response."""
    payloads = [request_to_dict(requests[0])] * PROBE_FLOOD
    server = ReproServer(
        graph,
        ServerConfig(
            port=0,
            max_inflight=PROBE_INFLIGHT,
            max_batch=128,
            batch_window_ms=200.0,
            runtime=RuntimeConfig(world_cache=8),
        ),
    )
    await server.start()
    host, port = server.address
    try:
        client = await ServerClient.connect(host, port)
        try:
            responses = await asyncio.wait_for(
                asyncio.gather(*(client.query(payload) for payload in payloads)),
                timeout=120.0,
            )
        finally:
            await client.close()
    finally:
        await server.stop()
    rejected = [r for r in responses if protocol.is_rejection(r)]
    answered = [r for r in responses if r.get("ok")]
    if len(responses) != PROBE_FLOOD:
        raise SystemExit("backpressure probe: some requests got no response")
    if not rejected:
        raise SystemExit(
            "backpressure probe: the flood produced no over_capacity rejections"
        )
    if len(answered) + len(rejected) != PROBE_FLOOD:
        raise SystemExit("backpressure probe: unexpected response mix")
    return {
        "flood": PROBE_FLOOD,
        "max_inflight": PROBE_INFLIGHT,
        "answered": len(answered),
        "rejected": len(rejected),
    }


def bench_sizes(sizes, n_samples: int) -> List[dict]:
    rows: List[dict] = []
    for size in sizes:
        graph = erdos_renyi_graph(size, average_degree=6.0, seed=size)
        requests = build_workload(graph, n_samples)
        reference = direct_reference(graph, requests)

        naive_seconds = run_naive_loop(graph, requests)
        served_seconds, metrics = asyncio.run(
            run_served_load(graph, requests, reference)
        )
        backpressure = asyncio.run(run_backpressure_probe(graph, requests))

        naive_throughput = len(requests) / naive_seconds
        served_requests = N_CLIENTS * len(requests)
        served_throughput = served_requests / served_seconds
        rows.append(
            {
                "n_vertices": graph.n_vertices,
                "n_edges": graph.n_edges,
                "n_samples": n_samples,
                "n_queries": len(requests),
                "n_clients": N_CLIENTS,
                "naive_seconds": naive_seconds,
                "served_seconds": served_seconds,
                "naive_throughput_qps": naive_throughput,
                "served_throughput_qps": served_throughput,
                "throughput_ratio": served_throughput / naive_throughput,
                "latency_ms": metrics["latency_ms"],
                "coalescing": metrics["coalescing"],
                "cache": metrics["cache"],
                "backpressure": backpressure,
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny instance + 150 samples (CI smoke test)"
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write the benchmark report to this JSON file"
    )
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    n_samples = QUICK_SAMPLES if args.quick else FULL_SAMPLES

    rows = bench_sizes(sizes, n_samples)
    header = (
        f"{'|V|':>6} {'|E|':>6} {'served':>7} {'naive [q/s]':>12} "
        f"{'served [q/s]':>13} {'ratio':>7} {'p50 [ms]':>9} {'p95 [ms]':>9} "
        f"{'p99 [ms]':>9} {'hit rate':>9}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        latency = row["latency_ms"]
        print(
            f"{row['n_vertices']:>6} {row['n_edges']:>6} "
            f"{row['n_clients'] * row['n_queries']:>7} "
            f"{row['naive_throughput_qps']:>12.1f} "
            f"{row['served_throughput_qps']:>13.1f} "
            f"{row['throughput_ratio']:>6.1f}x "
            f"{latency['p50']:>9.2f} {latency['p95']:>9.2f} {latency['p99']:>9.2f} "
            f"{row['cache']['hit_rate']:>9.0%}"
        )

    report = {
        "bench": "server_tier",
        "sizes": list(sizes),
        "n_samples": n_samples,
        "n_clients": N_CLIENTS,
        "target_ratio": TARGET_RATIO,
        "environment": bench_environment(),
        "rows": rows,
    }

    exit_code = 0
    if not args.quick:
        worst = min(row["throughput_ratio"] for row in rows)
        status = "PASS" if worst >= TARGET_RATIO else "FAIL"
        report["acceptance"] = {
            "gate": (
                f"coalesced serving >= {TARGET_RATIO}x naive one-request-per-"
                f"evaluate throughput with {N_CLIENTS} concurrent clients"
            ),
            "worst_throughput_ratio": worst,
            "status": status,
        }
        print(
            f"\nacceptance (served >= {TARGET_RATIO}x naive throughput, "
            f"{N_CLIENTS} clients, all Fig. 5 sizes): {status} (worst {worst:.1f}x)"
        )
        if status == "FAIL":
            exit_code = 1

    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"\nBENCH JSON written to {args.json}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Micro-benchmark: the distributed executor over loopback worker fleets.

Times whole-graph Monte-Carlo flow estimation
(:func:`repro.reachability.monte_carlo.monte_carlo_expected_flow`) on
the *naive* backend under the serial reference executor and under
:class:`repro.distributed.RemoteExecutor` fronting local subprocess
fleets of 2 and 3 workers, all at the same
``(seed, n_samples, shard_size)``.

The numbers measure the wire-protocol overhead of the distributed tier
on a single machine — the point of the benchmark is not the speedup
(loopback fleets on a small container are mostly overhead) but the
**hard invariance gate**: the flows must be bit-for-bit identical across
every fleet size, and the run aborts with a non-zero exit if they are
not.  The ``remote{N}_speedup`` ratios feed the CI regression diff
(:mod:`check_regression`) so a wire-protocol slowdown shows up as a
ratio shift even on heterogeneous runners.

Like the other plain-script benchmarks this is CI-smokeable::

    PYTHONPATH=src python benchmarks/bench_distributed.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_distributed.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_distributed.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List

from _helpers import bench_environment
from repro.distributed import local_fleet
from repro.graph.generators import erdos_renyi_graph
from repro.parallel import SerialExecutor
from repro.reachability.monte_carlo import monte_carlo_expected_flow

#: Fig. 5 graph-size sweep (scaled down, degree 6 ⇒ |E| ≈ 3·|V|).
FULL_SIZES = (150, 300, 600)
QUICK_SIZES = (60,)

FULL_SAMPLES = 5000
QUICK_SAMPLES = 400

#: Worlds per shard (fixed: shard size is part of the determinism key).
SHARD_SIZE = 256

#: Loopback fleet sizes measured against the serial reference.
FLEET_SIZES = (2, 3)

SEED = 7
BACKEND = "naive"


def bench_remote(sizes, n_samples: int) -> List[dict]:
    """Time serial versus remote-fleet sharded sampling; verify invariance."""
    rows: List[dict] = []
    for size in sizes:
        graph = erdos_renyi_graph(size, average_degree=6.0, seed=size)
        query = 0
        row = {
            "n_vertices": graph.n_vertices,
            "n_edges": graph.n_edges,
            "n_samples": n_samples,
            "shard_size": SHARD_SIZE,
            "backend": BACKEND,
        }
        flows = {}

        started = time.perf_counter()
        estimate = monte_carlo_expected_flow(
            graph, query, n_samples=n_samples, seed=SEED, backend=BACKEND,
            executor=SerialExecutor(), shard_size=SHARD_SIZE,
        )
        row["serial_seconds"] = time.perf_counter() - started
        flows["serial"] = estimate.expected_flow

        for n_workers in FLEET_SIZES:
            with local_fleet(n_workers) as fleet:
                # warm the fleet on a tiny request so worker start-up and
                # the one-time problem push are not billed to the run
                monte_carlo_expected_flow(
                    graph, query, n_samples=SHARD_SIZE, seed=SEED, backend=BACKEND,
                    executor=fleet.executor, shard_size=SHARD_SIZE,
                )
                started = time.perf_counter()
                estimate = monte_carlo_expected_flow(
                    graph, query, n_samples=n_samples, seed=SEED, backend=BACKEND,
                    executor=fleet.executor, shard_size=SHARD_SIZE,
                )
                row[f"remote{n_workers}_seconds"] = time.perf_counter() - started
                flows[f"remote{n_workers}"] = estimate.expected_flow
                row[f"remote{n_workers}_tasks"] = fleet.executor.tasks_dispatched
            row[f"remote{n_workers}_speedup"] = (
                row["serial_seconds"] / row[f"remote{n_workers}_seconds"]
            )

        if len(set(flows.values())) != 1:
            raise SystemExit(
                f"fleet sizes disagree on the same (seed, n_samples, shard_size): {flows!r}"
            )
        row["expected_flow"] = flows["serial"]
        rows.append(row)
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny instance + 400 samples (CI smoke test)"
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write the benchmark rows to this JSON file"
    )
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    n_samples = QUICK_SAMPLES if args.quick else FULL_SAMPLES

    rows = bench_remote(sizes, n_samples)
    header = (
        f"{'|V|':>6} {'|E|':>6} {'samples':>8} {'serial [s]':>11} "
        + " ".join(f"{f'{n}wkr [s]':>9} {f'{n}wkr spd':>8}" for n in FLEET_SIZES)
        + f" {'flow':>10}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['n_vertices']:>6} {row['n_edges']:>6} {row['n_samples']:>8} "
            f"{row['serial_seconds']:>11.3f} "
            + " ".join(
                f"{row[f'remote{n}_seconds']:>9.3f} {row[f'remote{n}_speedup']:>7.2f}x"
                for n in FLEET_SIZES
            )
            + f" {row['expected_flow']:>10.3f}"
        )
    print(
        "\ninvariance gate: serial and every fleet size agree bit-for-bit "
        "(the run would have aborted otherwise)"
    )

    report = {
        "bench": "distributed_remote_executor",
        "sizes": list(sizes),
        "n_samples": n_samples,
        "backend": BACKEND,
        "fleet_sizes": list(FLEET_SIZES),
        "environment": bench_environment(workers=max(FLEET_SIZES), shard_size=SHARD_SIZE),
        "rows": rows,
    }
    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"BENCH JSON written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Ablation benchmarks for the design choices called out in DESIGN.md.

Not figures of the paper, but ablations of this reproduction's own design
decisions: the exact-evaluation threshold for small bi-connected
components, robustness to misestimated edge probabilities, and the
lazy-greedy extension versus the paper's delayed-sampling heuristic.
"""

from __future__ import annotations


from _helpers import scaled
from repro.experiments.ablations import (
    exact_threshold_ablation,
    lazy_versus_eager_greedy,
    probability_misestimation_robustness,
)
from repro.experiments.config import ExperimentConfig

CONFIG = ExperimentConfig(
    n_vertices=scaled(200),
    degree=6,
    budget=scaled(12, minimum=6),
    n_samples=100,
    naive_samples=40,
    algorithms=("FT+M",),
    seed=3,
)


def test_exact_threshold_ablation(benchmark):
    """Runtime/flow trade-off of evaluating small components exactly instead of sampling."""
    result = benchmark.pedantic(
        exact_threshold_ablation,
        kwargs={"thresholds": (0, 8, 12), "config": CONFIG},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    for row in result.rows:
        benchmark.extra_info[f"flow_thr_{row['exact_threshold']}"] = round(row["evaluated_flow"], 3)


def test_probability_noise_robustness(benchmark):
    """Flow retained when probabilities are misestimated by up to 50 %."""
    result = benchmark.pedantic(
        probability_misestimation_robustness,
        kwargs={"noise_levels": (0.0, 0.25, 0.5), "config": CONFIG},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    for row in result.rows:
        key = f"{row['algorithm']}_noise_{row['noise']}"
        benchmark.extra_info[key] = round(row["evaluated_flow"], 3)


def test_lazy_versus_eager_greedy(benchmark):
    """CELF-style lazy greedy versus the paper's eager greedy and delayed sampling."""
    result = benchmark.pedantic(
        lazy_versus_eager_greedy,
        kwargs={"budgets": (CONFIG.budget,), "config": CONFIG},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    for row in result.rows:
        benchmark.extra_info[f"{row['algorithm']}_evaluations"] = row["flow_evaluations"]
        benchmark.extra_info[f"{row['algorithm']}_flow"] = round(row["evaluated_flow"], 3)

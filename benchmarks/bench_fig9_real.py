"""Figure 9: the four real-world datasets (reproduced on synthetic surrogates).

* Fig. 9(a) — San Joaquin road network  -> planar road-grid surrogate
* Fig. 9(b) — Facebook social circles   -> dense close-friend surrogate
* Fig. 9(c) — DBLP collaboration graph  -> clique-union surrogate
* Fig. 9(d) — YouTube friendship graph  -> preferential-attachment surrogate

See DESIGN.md §4 for the substitution argument.  The expected shapes:
Dijkstra loses the most flow on the dense social graph, the Naive
baseline (not benchmarked here — see bench_fig5/7) is orders of
magnitude slower everywhere, memoization gives the largest runtime win
on the dense graph, and the CI/DS heuristics pay off on the road
network (locality) but not on the social graphs.
"""

from __future__ import annotations

import pytest

from _helpers import FT_ALGORITHMS, run_selection_benchmark, scaled
from repro.datasets.registry import load_dataset

DATASETS = ("san-joaquin", "facebook", "dblp", "youtube")
SIZES = {
    "san-joaquin": scaled(400),
    "facebook": scaled(200),
    "dblp": scaled(300),
    "youtube": scaled(400),
}
BUDGET = scaled(16, minimum=8)


def _dataset(graph_cache, name):
    key = ("fig9", name)
    if key not in graph_cache:
        graph_cache[key] = load_dataset(name, n_vertices=SIZES[name], seed=29)
    return graph_cache[key]


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("algorithm", FT_ALGORITHMS)
def test_fig9_real_world(benchmark, graph_cache, dataset, algorithm):
    """Fig. 9(a)-(d): budget-constrained flow maximisation on each dataset surrogate."""
    graph = _dataset(graph_cache, dataset)
    run_selection_benchmark(benchmark, graph, algorithm, BUDGET, n_samples=100)

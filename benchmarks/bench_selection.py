#!/usr/bin/env python3
"""Micro-benchmark: CRN evaluation contexts versus per-candidate resampling.

Times the Naive greedy and FT+Lazy greedy selectors in both sampling
modes — ``crn`` (one shared batch of possible worlds per selection
round, scored through :class:`repro.reachability.context.EvaluationContext`
/ the component sampler's keyed streams) and ``resample`` (a fresh world
batch per probed candidate, the paper's literal scheme) — on the Fig. 5
graph-size sweep (Erdős graphs, degree 6) at equal sample counts and
budgets, and reports the speedup of CRN over resampling.

Like ``bench_backends.py`` this is a plain script so CI can smoke-run
it, and it can emit its rows as a JSON artifact::

    PYTHONPATH=src python benchmarks/bench_selection.py                 # full sweep
    PYTHONPATH=src python benchmarks/bench_selection.py --quick         # CI smoke
    PYTHONPATH=src python benchmarks/bench_selection.py --json out.json

Both modes run the same greedy on the same graph, so the reported flows
double as a sanity check: CRN must reach a flow at least comparable to
resampling (it removes cross-candidate noise; it never trades quality
for speed).  The run fails if CRN selections differ across backends for
the same seed.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List

from _helpers import bench_environment
from repro.graph.generators import erdos_renyi_graph
from repro.reachability.backends import BACKEND_NAMES, DEFAULT_BACKEND
from repro.selection.greedy_naive import NaiveGreedySelector
from repro.selection.lazy_greedy import LazyGreedySelector

#: Fig. 5 graph-size sweep (scaled down, degree 6 ⇒ |E| ≈ 3·|V|).
FULL_SIZES = (150, 300, 600)
QUICK_SIZES = (60,)

FULL_SAMPLES = 1000
QUICK_SAMPLES = 100

FULL_BUDGET = 12
QUICK_BUDGET = 4

#: The acceptance case: >= 5x for Naive greedy at 1000 samples, >= 500 edges.
TARGET_SPEEDUP = 5.0

SEED = 7


def _make_selector(algorithm: str, n_samples: int, crn: bool, backend=None):
    if algorithm == "Naive":
        return NaiveGreedySelector(n_samples=n_samples, seed=SEED, crn=crn, backend=backend)
    if algorithm == "FT+Lazy":
        return LazyGreedySelector(n_samples=n_samples, seed=SEED, crn=crn, backend=backend)
    raise ValueError(algorithm)


def _check_cross_backend(
    algorithm: str, graph, query, budget: int, n_samples: int, reference_edges
) -> None:
    """CRN selections must be identical across backends for the same seed.

    ``reference_edges`` is the already-timed run on the default backend,
    so only the non-default backends are re-run.
    """
    for backend in BACKEND_NAMES:
        if backend == DEFAULT_BACKEND:
            continue
        edges = (
            _make_selector(algorithm, n_samples, crn=True, backend=backend)
            .select(graph, query, budget)
            .selected_edges
        )
        if edges != reference_edges:
            raise SystemExit(
                f"{algorithm}: CRN selections disagree across backends on the same seed"
            )


def run(sizes, n_samples: int, budget: int) -> List[dict]:
    """Benchmark both algorithms in both modes on every graph size."""
    rows: List[dict] = []
    for size in sizes:
        graph = erdos_renyi_graph(size, average_degree=6.0, seed=size)
        query = 0
        for algorithm in ("Naive", "FT+Lazy"):
            row = {
                "algorithm": algorithm,
                "n_vertices": graph.n_vertices,
                "n_edges": graph.n_edges,
                "n_samples": n_samples,
                "budget": budget,
            }
            crn_edges = None
            for mode, crn in (("crn", True), ("resample", False)):
                selector = _make_selector(algorithm, n_samples, crn=crn)
                started = time.perf_counter()
                result = selector.select(graph, query, budget)
                row[f"{mode}_seconds"] = time.perf_counter() - started
                row[f"{mode}_flow"] = result.expected_flow
                row[f"{mode}_selected"] = result.n_selected
                if crn:
                    crn_edges = result.selected_edges
            row["speedup"] = row["resample_seconds"] / row["crn_seconds"]
            _check_cross_backend(algorithm, graph, query, budget, n_samples, crn_edges)
            rows.append(row)
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny instance + 100 samples (CI smoke test)"
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write the benchmark rows to this JSON file"
    )
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    n_samples = QUICK_SAMPLES if args.quick else FULL_SAMPLES
    budget = QUICK_BUDGET if args.quick else FULL_BUDGET

    rows = run(sizes, n_samples, budget)
    header = (
        f"{'algorithm':>9} {'|V|':>6} {'|E|':>6} {'samples':>8} {'k':>4} "
        f"{'crn [s]':>10} {'resample [s]':>13} {'speedup':>9} {'crn flow':>10} {'res flow':>10}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['algorithm']:>9} {row['n_vertices']:>6} {row['n_edges']:>6} "
            f"{row['n_samples']:>8} {row['budget']:>4} {row['crn_seconds']:>10.4f} "
            f"{row['resample_seconds']:>13.4f} {row['speedup']:>8.1f}x "
            f"{row['crn_flow']:>10.3f} {row['resample_flow']:>10.3f}"
        )

    report = {
        "bench": "selection_crn_vs_resample",
        "sizes": list(sizes),
        "n_samples": n_samples,
        "budget": budget,
        "target_speedup": TARGET_SPEEDUP,
        "environment": bench_environment(),
        "rows": rows,
    }
    exit_code = 0
    if not args.quick:
        acceptance = [
            r for r in rows
            if r["algorithm"] == "Naive" and r["n_edges"] >= 500 and r["n_samples"] >= 1000
        ]
        worst = min(r["speedup"] for r in acceptance) if acceptance else None
        if worst is not None:
            status = "PASS" if worst >= TARGET_SPEEDUP else "FAIL"
            report["acceptance"] = {"worst_naive_speedup": worst, "status": status}
            print(
                f"\nacceptance (Naive >= {TARGET_SPEEDUP:.0f}x on 1000-sample, >= 500-edge "
                f"cases): {status} (worst {worst:.1f}x)"
            )
            exit_code = 0 if worst >= TARGET_SPEEDUP else 1
    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"\nBENCH JSON written to {args.json}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())

"""Estimation ablation: whole-graph sampling versus F-tree component sampling.

Backs the variance argument of Section 7.3 (discussion of Fig. 5(b)): for
the same per-component sample budget, sampling the independent
bi-connected components separately and combining them analytically gives
a lower-variance (and never slower) estimate of the expected flow than
sampling the whole subgraph at once.  The exact value from possible-world
enumeration is recorded alongside so the bias of both estimators is
visible in ``extra_info``.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import estimator_variance_ablation
from repro.experiments.harness import pick_query_vertex
from repro.ftree.builder import build_ftree
from repro.ftree.sampler import ComponentSampler
from repro.graph.generators import erdos_renyi_graph
from repro.reachability.backends import BACKEND_NAMES
from repro.reachability.exact import exact_expected_flow
from repro.reachability.monte_carlo import monte_carlo_expected_flow

N_SAMPLES = 200


def _ablation_graph():
    graph = erdos_renyi_graph(12, average_degree=3.0, seed=0, weight_range=(1.0, 5.0))
    return graph, pick_query_vertex(graph)


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_whole_graph_monte_carlo_estimation(benchmark, backend):
    """Time and bias of the whole-graph Monte-Carlo flow estimator, per backend."""
    graph, query = _ablation_graph()
    exact = exact_expected_flow(graph, query).expected_flow

    def run():
        return monte_carlo_expected_flow(
            graph, query, n_samples=N_SAMPLES, seed=1, backend=backend
        )

    estimate = benchmark(run)
    benchmark.extra_info["estimator"] = f"whole-graph MC [{backend}]"
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["exact_flow"] = round(exact, 4)
    benchmark.extra_info["estimate"] = round(estimate.expected_flow, 4)


def test_ftree_component_estimation(benchmark):
    """Time and bias of the component-wise (F-tree) flow estimator."""
    graph, query = _ablation_graph()
    exact = exact_expected_flow(graph, query).expected_flow
    edges = graph.edge_list()

    def run():
        sampler = ComponentSampler(n_samples=N_SAMPLES, exact_threshold=0, seed=1)
        ftree = build_ftree(graph, edges, query, sampler=sampler)
        return ftree.expected_flow()

    estimate = benchmark(run)
    benchmark.extra_info["estimator"] = "F-tree component MC"
    benchmark.extra_info["exact_flow"] = round(exact, 4)
    benchmark.extra_info["estimate"] = round(estimate, 4)


def test_variance_comparison(benchmark):
    """Empirical variance of both estimators over repeated runs (the paper's argument)."""

    def run():
        return estimator_variance_ablation(
            n_vertices=12, average_degree=3.0, n_samples=100, repetitions=15, seed=2
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    rows = {row["estimator"]: row for row in result.rows}
    benchmark.extra_info["naive_variance"] = round(rows["whole-graph MC"]["variance"], 5)
    benchmark.extra_info["ftree_variance"] = round(
        rows["F-tree component MC"]["variance"], 5
    )

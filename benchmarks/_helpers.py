"""Shared helpers for the benchmark suite (imported by the bench modules).

Every benchmark regenerates the data behind one figure of the paper's
evaluation at a scaled-down size (see DESIGN.md §4 and EXPERIMENTS.md).
Set the environment variable ``REPRO_BENCH_SCALE`` to a value above 1.0
to move the instances towards the paper's original scale.

Each benchmark case runs one selection algorithm on one sweep point; the
wall-clock time is measured by pytest-benchmark and the resulting
expected information flow is attached as ``extra_info`` so that both of
the paper's series (flow and runtime) can be read from one benchmark
run.
"""

from __future__ import annotations

import os
import platform
from typing import Dict, Optional

from repro.experiments.harness import evaluate_flow, pick_query_vertex
from repro.graph.uncertain_graph import UncertainGraph
from repro.parallel.plan import DEFAULT_SHARD_SIZE
from repro.runtime import current_config
from repro.selection.registry import make_selector
from repro.types import VertexId


def bench_scale() -> float:
    """Read the global benchmark scale factor (default 1.0)."""
    try:
        return max(0.1, float(os.environ.get("REPRO_BENCH_SCALE", "1.0")))
    except ValueError:
        return 1.0


def bench_environment(
    workers: Optional[int] = None, shard_size: Optional[int] = None
) -> Dict[str, object]:
    """Machine/parallelism context attached to every BENCH JSON payload.

    Perf trajectories are only comparable across machines when the
    payload says how many cores the run had and how the sampling was
    sharded — a 4-worker speedup measured on a 1-core container is not a
    regression, it is a different machine.  ``runtime_config`` records
    the fully resolved :class:`repro.runtime.RuntimeConfig` the numbers
    were measured under (active session → ``runtime.defaults`` →
    built-in defaults), with the benchmark's explicit ``workers`` /
    ``shard_size`` arguments overlaid, since benches thread those through
    call arguments rather than sessions.
    """
    runtime_config = current_config().as_dict()
    if workers is not None:
        runtime_config["workers"] = workers
    if shard_size is not None:
        runtime_config["shard_size"] = shard_size
    return {
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "shard_size": (
            shard_size if shard_size is not None else (DEFAULT_SHARD_SIZE if workers else None)
        ),
        "bench_scale": bench_scale(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "runtime_config": runtime_config,
    }


def scaled(value: int, minimum: int = 4) -> int:
    """Scale an instance-size parameter by ``REPRO_BENCH_SCALE``."""
    return max(minimum, int(round(value * bench_scale())))


#: algorithms benchmarked on most figures (Naive only joins the smallest ones)
FT_ALGORITHMS = ("Dijkstra", "FT", "FT+M", "FT+M+CI", "FT+M+DS", "FT+M+CI+DS")


def run_selection_benchmark(
    benchmark,
    graph: UncertainGraph,
    algorithm: str,
    budget: int,
    n_samples: int = 120,
    seed: int = 7,
    query: Optional[VertexId] = None,
) -> None:
    """Benchmark one selection run and record its evaluated flow.

    The selection itself is what the paper times; the flow of the
    selected subgraph is re-evaluated once outside the timed section
    with a shared, higher-precision estimator.
    """
    query = pick_query_vertex(graph) if query is None else query
    selector = make_selector(algorithm, n_samples=n_samples, seed=seed)

    result_holder: Dict[str, object] = {}

    def run():
        result_holder["result"] = selector.select(graph, query, budget)
        return result_holder["result"]

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    result = result_holder["result"]
    flow = evaluate_flow(
        graph, result.selected_edges, query, n_samples=max(400, n_samples), seed=123
    )
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["graph"] = graph.name
    benchmark.extra_info["n_vertices"] = graph.n_vertices
    benchmark.extra_info["n_edges"] = graph.n_edges
    benchmark.extra_info["budget"] = budget
    benchmark.extra_info["expected_flow"] = round(flow, 4)
    benchmark.extra_info["edges_selected"] = result.n_selected
    for key, value in bench_environment().items():
        benchmark.extra_info[key] = value

#!/usr/bin/env python3
"""Micro-benchmark: naive vs vectorized vs CSR possible-world sampling.

Times :func:`repro.reachability.monte_carlo.monte_carlo_expected_flow`
with every registered backend on the Fig. 5 graph-size sweep (Erdős
graphs, degree 6 — the paper's no-locality scheme) and reports the
speedup of each backend over the naive per-world-BFS reference.

Unlike the ``bench_fig*.py`` modules this is a plain script (no
pytest-benchmark dependency) so CI can smoke-run it::

    PYTHONPATH=src python benchmarks/bench_backends.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_backends.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_backends.py --json out.json

All backends draw the identical possible worlds per seed, so the
printed flow estimates double as a cross-backend consistency check: a
mismatch means a backend broke the random-stream contract, and the run
aborts.

Acceptance gates (full sweep only, on the 1000-sample rows):

* ``vectorized`` must be >= 5x over ``naive`` at |E| >= 500;
* ``csr`` (numpy path) must be >= 1.2x over ``vectorized`` at |E| >= 900;
* ``csr-numba`` must be >= 5x over ``vectorized`` when numba is
  importable — otherwise the report carries an explicit SKIPPED record
  with the probe's reason instead of silently omitting the gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

from _helpers import bench_environment
from repro.graph.generators import erdos_renyi_graph
from repro.reachability.backends import BACKEND_NAMES
from repro.reachability.backends.csr import numba_unavailable_reason
from repro.reachability.monte_carlo import monte_carlo_expected_flow

#: Fig. 5 graph-size sweep (scaled down, degree 6 ⇒ |E| ≈ 3·|V|).
FULL_SIZES = (150, 300, 600)
QUICK_SIZES = (60,)

FULL_SAMPLES = 1000
QUICK_SAMPLES = 100

#: vectorized-vs-naive gate: 1000 samples on the >= 500-edge instances.
TARGET_SPEEDUP = 5.0
#: csr-vs-vectorized gate: 1000 samples on the >= 900-edge instances.
CSR_TARGET_RATIO = 1.2
CSR_EDGE_FLOOR = 900
#: csr-numba-vs-vectorized gate (compiled kernel, when numba imports).
NUMBA_TARGET_RATIO = 5.0

#: Repeats per timing (best-of); the naive reference is slow enough that
#: one run is already stable, the fast backends need a few to shake off
#: allocator noise on small instances.
REPEATS = {"naive": 1}
DEFAULT_REPEATS = 3


def time_backend(graph, query, backend: str, n_samples: int, seed: int = 7):
    """Return (best-of-N elapsed seconds, flow estimate) for one backend."""
    best = float("inf")
    flow = None
    for _ in range(REPEATS.get(backend, DEFAULT_REPEATS)):
        started = time.perf_counter()
        estimate = monte_carlo_expected_flow(
            graph, query, n_samples=n_samples, seed=seed, backend=backend
        )
        best = min(best, time.perf_counter() - started)
        flow = estimate.expected_flow
    return best, flow


def run(sizes, n_samples: int) -> List[dict]:
    """Benchmark every backend on every graph size; return report rows."""
    rows: List[dict] = []
    for size in sizes:
        graph = erdos_renyi_graph(size, average_degree=6.0, seed=size)
        query = 0
        row = {"n_vertices": graph.n_vertices, "n_edges": graph.n_edges, "n_samples": n_samples}
        flows = {}
        for backend in BACKEND_NAMES:
            elapsed, flow = time_backend(graph, query, backend, n_samples)
            row[f"{backend}_seconds"] = elapsed
            flows[backend] = flow
        baseline = row["naive_seconds"]
        for backend in BACKEND_NAMES:
            if backend != "naive":
                row[f"{backend}_speedup"] = baseline / row[f"{backend}_seconds"]
        if "csr" in BACKEND_NAMES and "vectorized" in BACKEND_NAMES:
            row["csr_vs_vectorized"] = row["vectorized_seconds"] / row["csr_seconds"]
        if "csr-numba" in BACKEND_NAMES:
            row["csr_numba_vs_vectorized"] = (
                row["vectorized_seconds"] / row["csr-numba_seconds"]
            )
        if len(set(flows.values())) != 1:
            raise SystemExit(f"backends disagree on the same seed: {flows!r}")
        row["expected_flow"] = flows["naive"]
        rows.append(row)
    return rows


def measure_telemetry_overhead(sizes, n_samples: int) -> dict:
    """Time the csr backend with telemetry off (the default) and on.

    The disabled path is the guard-and-return fast path every hot call
    site takes — it must cost nothing measurable (the repo's acceptance
    bar keeps the default-path timings within noise of the pre-telemetry
    baseline).  The enabled number shows what a metrics-only pipeline
    costs when actually switched on.
    """
    import repro

    size = max(sizes)
    graph = erdos_renyi_graph(size, average_degree=6.0, seed=size)
    disabled_seconds, _ = time_backend(graph, 0, "csr", n_samples)
    with repro.session(telemetry=True):
        enabled_seconds, _ = time_backend(graph, 0, "csr", n_samples)
    return {
        "backend": "csr",
        "n_vertices": graph.n_vertices,
        "n_samples": n_samples,
        "disabled_seconds": disabled_seconds,
        "enabled_seconds": enabled_seconds,
        "overhead_ratio": enabled_seconds / disabled_seconds,
    }


def check_gates(rows: List[dict]) -> List[dict]:
    """Evaluate the acceptance gates; return PASS/FAIL/SKIPPED records."""
    gates: List[dict] = []

    vec_rows = [r for r in rows if r["n_edges"] >= 500 and r["n_samples"] >= 1000]
    if vec_rows:
        worst = min(r["vectorized_speedup"] for r in vec_rows)
        gates.append(
            {
                "gate": "vectorized_vs_naive",
                "target": TARGET_SPEEDUP,
                "worst": worst,
                "status": "PASS" if worst >= TARGET_SPEEDUP else "FAIL",
            }
        )

    csr_rows = [
        r
        for r in rows
        if r["n_edges"] >= CSR_EDGE_FLOOR and r["n_samples"] >= 1000 and "csr_vs_vectorized" in r
    ]
    if csr_rows:
        worst = min(r["csr_vs_vectorized"] for r in csr_rows)
        gates.append(
            {
                "gate": "csr_vs_vectorized",
                "target": CSR_TARGET_RATIO,
                "worst": worst,
                "status": "PASS" if worst >= CSR_TARGET_RATIO else "FAIL",
            }
        )

    numba_reason = numba_unavailable_reason()
    if numba_reason is not None:
        gates.append(
            {
                "gate": "csr_numba_vs_vectorized",
                "target": NUMBA_TARGET_RATIO,
                "status": "SKIPPED",
                "reason": numba_reason,
            }
        )
    else:
        numba_rows = [
            r
            for r in rows
            if r["n_edges"] >= 500 and r["n_samples"] >= 1000 and "csr_numba_vs_vectorized" in r
        ]
        if numba_rows:
            worst = min(r["csr_numba_vs_vectorized"] for r in numba_rows)
            gates.append(
                {
                    "gate": "csr_numba_vs_vectorized",
                    "target": NUMBA_TARGET_RATIO,
                    "worst": worst,
                    "status": "PASS" if worst >= NUMBA_TARGET_RATIO else "FAIL",
                }
            )
    return gates


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny instance + 100 samples (CI smoke test)"
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write rows + gates + environment as JSON",
    )
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    n_samples = QUICK_SAMPLES if args.quick else FULL_SAMPLES

    rows = run(sizes, n_samples)
    header = f"{'|V|':>6} {'|E|':>6} {'samples':>8} " + " ".join(
        f"{name + ' [s]':>14}" for name in BACKEND_NAMES
    ) + f" {'vec x':>8} {'csr/vec':>8} {'flow':>10}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['n_vertices']:>6} {row['n_edges']:>6} {row['n_samples']:>8} "
            + " ".join(f"{row[f'{name}_seconds']:>14.4f}" for name in BACKEND_NAMES)
            + f" {row.get('vectorized_speedup', 1.0):>7.1f}x"
            + f" {row.get('csr_vs_vectorized', float('nan')):>7.2f}x"
            + f" {row['expected_flow']:>10.3f}"
        )

    overhead = measure_telemetry_overhead(sizes, n_samples)
    print(
        f"\ntelemetry (csr, |V|={overhead['n_vertices']}, {n_samples} samples): "
        f"disabled {overhead['disabled_seconds']:.4f}s, "
        f"enabled {overhead['enabled_seconds']:.4f}s "
        f"({overhead['overhead_ratio'] - 1.0:+.1%} when switched on)"
    )

    gates = check_gates(rows) if not args.quick else []
    for gate in gates:
        if gate["status"] == "SKIPPED":
            print(f"\ngate {gate['gate']} (>= {gate['target']:.1f}x): SKIPPED — {gate['reason']}")
        else:
            print(
                f"\ngate {gate['gate']} (>= {gate['target']:.1f}x): "
                f"{gate['status']} (worst {gate['worst']:.2f}x)"
            )

    if args.json is not None:
        payload: Dict[str, object] = {
            "benchmark": "bench_backends",
            "mode": "quick" if args.quick else "full",
            "backends": list(BACKEND_NAMES),
            "numba_unavailable_reason": numba_unavailable_reason(),
            "environment": bench_environment(),
            "rows": rows,
            "telemetry_overhead": overhead,
            "gates": gates,
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {args.json}")

    return 1 if any(g["status"] == "FAIL" for g in gates) else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Micro-benchmark: naive versus vectorized possible-world sampling.

Times :func:`repro.reachability.monte_carlo.monte_carlo_expected_flow`
with every registered backend on the Fig. 5 graph-size sweep (Erdős
graphs, degree 6 — the paper's no-locality scheme) and reports the
speedup of each backend over the naive per-world-BFS reference.

Unlike the ``bench_fig*.py`` modules this is a plain script (no
pytest-benchmark dependency) so CI can smoke-run it::

    PYTHONPATH=src python benchmarks/bench_backends.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_backends.py --quick    # CI smoke

Both backends draw the identical possible worlds per seed, so the
printed flow estimates double as a cross-backend consistency check: a
mismatch means a backend broke the random-stream contract.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.graph.generators import erdos_renyi_graph
from repro.reachability.backends import BACKEND_NAMES
from repro.reachability.monte_carlo import monte_carlo_expected_flow

#: Fig. 5 graph-size sweep (scaled down, degree 6 ⇒ |E| ≈ 3·|V|).
FULL_SIZES = (150, 300, 600)
QUICK_SIZES = (60,)

FULL_SAMPLES = 1000
QUICK_SAMPLES = 100

#: The acceptance case: 1000 samples on the ≥ 500-edge instance.
TARGET_SPEEDUP = 5.0


def time_backend(graph, query, backend: str, n_samples: int, seed: int = 7):
    """Return (elapsed seconds, flow estimate) for one backend run."""
    started = time.perf_counter()
    estimate = monte_carlo_expected_flow(
        graph, query, n_samples=n_samples, seed=seed, backend=backend
    )
    return time.perf_counter() - started, estimate.expected_flow


def run(sizes, n_samples: int) -> List[dict]:
    """Benchmark every backend on every graph size; return report rows."""
    rows: List[dict] = []
    for size in sizes:
        graph = erdos_renyi_graph(size, average_degree=6.0, seed=size)
        query = 0
        row = {"n_vertices": graph.n_vertices, "n_edges": graph.n_edges, "n_samples": n_samples}
        flows = {}
        for backend in BACKEND_NAMES:
            elapsed, flow = time_backend(graph, query, backend, n_samples)
            row[f"{backend}_seconds"] = elapsed
            flows[backend] = flow
        baseline = row["naive_seconds"]
        for backend in BACKEND_NAMES:
            if backend != "naive":
                row[f"{backend}_speedup"] = baseline / row[f"{backend}_seconds"]
        if len(set(flows.values())) != 1:
            raise SystemExit(f"backends disagree on the same seed: {flows!r}")
        row["expected_flow"] = flows["naive"]
        rows.append(row)
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny instance + 100 samples (CI smoke test)"
    )
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    n_samples = QUICK_SAMPLES if args.quick else FULL_SAMPLES

    rows = run(sizes, n_samples)
    header = f"{'|V|':>6} {'|E|':>6} {'samples':>8} " + " ".join(
        f"{name + ' [s]':>14}" for name in BACKEND_NAMES
    ) + f" {'speedup':>9} {'flow':>10}"
    print(header)
    print("-" * len(header))
    for row in rows:
        speedup = row.get("vectorized_speedup", 1.0)
        print(
            f"{row['n_vertices']:>6} {row['n_edges']:>6} {row['n_samples']:>8} "
            + " ".join(f"{row[f'{name}_seconds']:>14.4f}" for name in BACKEND_NAMES)
            + f" {speedup:>8.1f}x {row['expected_flow']:>10.3f}"
        )

    if not args.quick:
        acceptance = [r for r in rows if r["n_edges"] >= 500 and r["n_samples"] >= 1000]
        worst = min(r["vectorized_speedup"] for r in acceptance) if acceptance else None
        if worst is not None:
            status = "PASS" if worst >= TARGET_SPEEDUP else "FAIL"
            print(
                f"\nacceptance (>= {TARGET_SPEEDUP:.0f}x on 1000-sample, >= 500-edge cases): "
                f"{status} (worst {worst:.1f}x)"
            )
            return 0 if worst >= TARGET_SPEEDUP else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

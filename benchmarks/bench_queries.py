#!/usr/bin/env python3
"""Micro-benchmark: batched multi-query evaluation versus per-query calls.

Measures the amortization the :mod:`repro.service` subsystem exists for,
on the Fig. 5 graph-size sweep (Erdős graphs, degree 6 — the paper's
no-locality scheme).  The workload is 64 mixed queries per graph — for
each of four query vertices, one expected-flow query and fifteen pair
reachabilities towards distinct targets, all at the same (seed,
n_samples) — answered three ways:

1. **per-query** — one ``monte_carlo_*`` estimator call per query, the
   pre-service baseline: 64 independent sampling runs;
2. **batched (cold)** — one ``BatchEvaluator.evaluate`` call with an
   empty world cache: the planner groups the 64 queries onto 4 shared
   world batches (one per query vertex), so sampling runs 4 times and
   everything else is column gathers;
3. **batched + cached (warm)** — the same call again with the cache
   populated: zero sampling, answers served entirely from cached worlds.

The three result sets must be **bit-for-bit identical** (the service
determinism contract); the run aborts if they are not.

Acceptance (ISSUE 4): batched+cached must be >= 5x faster than the
per-query baseline at 64 queries on every Fig. 5 size (PASS/FAIL on
capable hardware, recorded as SKIPPED with the reason otherwise — this
benchmark has no multi-core requirement, so it is expected to run
everywhere).

CI-smokeable like the other plain-script benchmarks::

    PYTHONPATH=src python benchmarks/bench_queries.py                # full sweep
    PYTHONPATH=src python benchmarks/bench_queries.py --quick        # CI smoke
    PYTHONPATH=src python benchmarks/bench_queries.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Tuple

from _helpers import bench_environment
from repro.graph.generators import erdos_renyi_graph
from repro.reachability.monte_carlo import (
    monte_carlo_expected_flow,
    monte_carlo_reachability,
)
from repro.service import BatchEvaluator, QueryRequest, WorldCache

#: Fig. 5 graph-size sweep (scaled down, degree 6 => |E| ~ 3*|V|).
FULL_SIZES = (150, 300, 600)
QUICK_SIZES = (60,)

FULL_SAMPLES = 1000
QUICK_SAMPLES = 150

#: The amortization workload: |SOURCES| query vertices, each asked one
#: expected-flow query plus (QUERIES_PER_SOURCE - 1) pair queries.
N_QUERIES = 64
N_SOURCES = 4
QUERIES_PER_SOURCE = N_QUERIES // N_SOURCES

TARGET_SPEEDUP = 5.0
SEED = 7


def build_workload(graph, n_samples: int) -> List[QueryRequest]:
    """64 mixed queries over four sources (deterministic, graph-agnostic)."""
    vertices = list(graph.vertices())
    sources = vertices[:N_SOURCES]
    requests: List[QueryRequest] = []
    for source_index, source in enumerate(sources):
        requests.append(
            QueryRequest(
                kind="expected_flow", source=source, n_samples=n_samples, seed=SEED
            )
        )
        targets = [
            vertex
            for vertex in vertices
            if vertex != source
        ][source_index : source_index + QUERIES_PER_SOURCE - 1]
        for target in targets:
            requests.append(
                QueryRequest(
                    kind="pair_reachability",
                    source=source,
                    target=target,
                    n_samples=n_samples,
                    seed=SEED,
                )
            )
    assert len(requests) == N_QUERIES
    return requests


def run_per_query(graph, requests) -> Tuple[float, list]:
    """The baseline: one estimator call per request."""
    started = time.perf_counter()
    answers = []
    for request in requests:
        if request.kind == "expected_flow":
            answers.append(
                monte_carlo_expected_flow(
                    graph,
                    request.source,
                    n_samples=request.n_samples,
                    seed=request.seed,
                )
            )
        else:
            answers.append(
                monte_carlo_reachability(
                    graph,
                    request.source,
                    request.target,
                    n_samples=request.n_samples,
                    seed=request.seed,
                )
            )
    return time.perf_counter() - started, answers

def check_equal(requests, answers, results, label: str) -> None:
    """Abort unless batched results equal the per-query answers bit-for-bit."""
    for request, answer, result in zip(requests, answers, results):
        batched = result.flow if request.kind == "expected_flow" else result.reachability
        if batched != answer:
            raise SystemExit(
                f"{label}: batched answer diverged from the single-query "
                f"estimator for {request!r}: {batched!r} != {answer!r}"
            )


def bench_sizes(sizes, n_samples: int) -> List[dict]:
    rows: List[dict] = []
    for size in sizes:
        graph = erdos_renyi_graph(size, average_degree=6.0, seed=size)
        requests = build_workload(graph, n_samples)

        per_query_seconds, answers = run_per_query(graph, requests)

        evaluator = BatchEvaluator(cache=WorldCache(max_entries=32))
        started = time.perf_counter()
        cold_results = evaluator.evaluate(graph, requests)
        cold_seconds = time.perf_counter() - started

        started = time.perf_counter()
        warm_results = evaluator.evaluate(graph, requests)
        warm_seconds = time.perf_counter() - started

        check_equal(requests, answers, cold_results, f"|V|={size} cold")
        check_equal(requests, answers, warm_results, f"|V|={size} warm")
        if not all(result.from_cache for result in warm_results):
            raise SystemExit(f"|V|={size}: warm pass was not fully served from cache")

        plan = evaluator.plan(graph, requests)
        rows.append(
            {
                "n_vertices": graph.n_vertices,
                "n_edges": graph.n_edges,
                "n_samples": n_samples,
                "n_queries": len(requests),
                "world_batches": len(plan.groups),
                "amortization": plan.amortization,
                "per_query_seconds": per_query_seconds,
                "batched_cold_seconds": cold_seconds,
                "batched_warm_seconds": warm_seconds,
                "cold_speedup": per_query_seconds / cold_seconds,
                "warm_speedup": per_query_seconds / warm_seconds,
                "cache": evaluator.cache_stats(),
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny instance + 150 samples (CI smoke test)"
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write the benchmark rows to this JSON file"
    )
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    n_samples = QUICK_SAMPLES if args.quick else FULL_SAMPLES

    rows = bench_sizes(sizes, n_samples)
    header = (
        f"{'|V|':>6} {'|E|':>6} {'queries':>8} {'batches':>8} "
        f"{'per-query [s]':>14} {'cold [s]':>9} {'warm [s]':>9} "
        f"{'cold spd':>9} {'warm spd':>9}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['n_vertices']:>6} {row['n_edges']:>6} {row['n_queries']:>8} "
            f"{row['world_batches']:>8} {row['per_query_seconds']:>14.3f} "
            f"{row['batched_cold_seconds']:>9.3f} {row['batched_warm_seconds']:>9.3f} "
            f"{row['cold_speedup']:>8.1f}x {row['warm_speedup']:>8.1f}x"
        )

    report = {
        "bench": "batched_query_service",
        "sizes": list(sizes),
        "n_samples": n_samples,
        "n_queries": N_QUERIES,
        "n_sources": N_SOURCES,
        "target_speedup": TARGET_SPEEDUP,
        "environment": bench_environment(),
        "rows": rows,
    }

    exit_code = 0
    if not args.quick:
        worst = min(row["warm_speedup"] for row in rows)
        status = "PASS" if worst >= TARGET_SPEEDUP else "FAIL"
        report["acceptance"] = {
            "gate": f"batched+cached >= {TARGET_SPEEDUP}x per-query at {N_QUERIES} queries",
            "worst_warm_speedup": worst,
            "worst_cold_speedup": min(row["cold_speedup"] for row in rows),
            "status": status,
        }
        print(
            f"\nacceptance (batched+cached >= {TARGET_SPEEDUP}x per-query at "
            f"{N_QUERIES} queries, all Fig. 5 sizes): {status} (worst {worst:.1f}x)"
        )
        if status == "FAIL":
            exit_code = 1

    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"\nBENCH JSON written to {args.json}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())

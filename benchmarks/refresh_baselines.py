#!/usr/bin/env python3
"""Regenerate every checked-in ``BENCH_*.json`` baseline in one pass.

Each baseline is the ``--quick --json`` report of one benchmark script;
:mod:`check_regression` diffs fresh CI runs against these files.  After
a deliberate performance change (or a report-format change that breaks
the diff with exit code 2), rerun this script and commit the refreshed
JSON alongside the code change::

    python benchmarks/refresh_baselines.py            # all baselines
    python benchmarks/refresh_baselines.py --only distributed server

Baselines are recorded with ``--quick`` so a refresh stays cheap and the
rows match what CI measures.  Only the dimensionless ratio fields are
ever compared (see check_regression.py), so the machine recording the
baseline does not need to resemble the CI runner.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

#: baseline name -> benchmark script that produces it
BASELINES = {
    "backends": "bench_backends.py",
    "selection": "bench_selection.py",
    "queries": "bench_queries.py",
    "parallel": "bench_parallel.py",
    "server": "bench_server.py",
    "distributed": "bench_distributed.py",
}


def refresh(name: str) -> bool:
    script = BENCH_DIR / BASELINES[name]
    target = BENCH_DIR / f"BENCH_{name}.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(BENCH_DIR), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    print(f"=== {script.name} --quick --json {target.name}")
    completed = subprocess.run(
        [sys.executable, str(script), "--quick", "--json", str(target)],
        cwd=REPO_ROOT,
        env=env,
    )
    if completed.returncode != 0:
        print(f"ERROR: {script.name} exited {completed.returncode}; {target.name} not trusted")
        return False
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        nargs="+",
        choices=sorted(BASELINES),
        default=None,
        metavar="NAME",
        help=f"refresh only these baselines (choices: {', '.join(sorted(BASELINES))})",
    )
    args = parser.parse_args(argv)
    names = args.only if args.only else list(BASELINES)
    failures = [name for name in names if not refresh(name)]
    if failures:
        print(f"\n{len(failures)} baseline(s) failed to refresh: {', '.join(failures)}")
        return 1
    print(f"\nrefreshed {len(names)} baseline(s): {', '.join(names)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

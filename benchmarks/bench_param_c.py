"""Section 7.3, "Parameter c": the delayed-sampling penalisation parameter.

The paper reports that decreasing ``c`` consistently decreases the
running time of FT+M+DS (edges are suspended longer), with a factor 2-10
speed-up at c = 1.2 and a multi-order-of-magnitude speed-up at c = 1.01 —
but that below c ≈ 1.2 the information flow degrades noticeably because
edges are suspended almost arbitrarily long.
"""

from __future__ import annotations

import pytest

from _helpers import scaled
from repro.experiments.harness import evaluate_flow, pick_query_vertex
from repro.graph.generators import partitioned_graph
from repro.selection.ftree_greedy import FTreeGreedySelector

C_VALUES = (1.01, 1.2, 2.0, 4.0, 16.0)
N_VERTICES = scaled(300)
BUDGET = scaled(16, minimum=8)


@pytest.mark.parametrize("c", C_VALUES)
def test_param_c_delayed_sampling(benchmark, graph_cache, c):
    """FT+M+DS with different penalisation parameters c on a locality graph."""
    key = ("param-c",)
    if key not in graph_cache:
        graph_cache[key] = partitioned_graph(N_VERTICES, degree=6, seed=5)
    graph = graph_cache[key]
    query = pick_query_vertex(graph)
    selector = FTreeGreedySelector(
        n_samples=120, exact_threshold=10, memoize=True, delayed=True, delay_base=c, seed=3
    )
    holder = {}

    def run():
        holder["result"] = selector.select(graph, query, BUDGET)
        return holder["result"]

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    result = holder["result"]
    flow = evaluate_flow(graph, result.selected_edges, query, n_samples=400, seed=11)
    benchmark.extra_info["c"] = c
    benchmark.extra_info["expected_flow"] = round(flow, 4)
    benchmark.extra_info["delayed_candidates"] = result.extras.get("delayed_candidates", 0.0)

"""Benchmark-suite fixtures."""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.graph.uncertain_graph import UncertainGraph


@pytest.fixture(scope="session")
def graph_cache() -> Dict[Tuple, UncertainGraph]:
    """Session-wide cache so sweep points reuse identical graphs across algorithms."""
    return {}

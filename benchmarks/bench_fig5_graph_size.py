"""Figure 5: expected flow and runtime versus graph size.

* Fig. 5(a): *partitioned* graphs (locality assumption).
* Fig. 5(b): Erdős graphs (no locality assumption).

Paper setting: |V| swept up to 10,000, degree 6, k = 200, 1000 samples.
Here the sizes are scaled down (see EXPERIMENTS.md); the series shapes —
Dijkstra fastest but far less flow on locality graphs, all algorithms
roughly size-independent under the locality assumption — are preserved.
"""

from __future__ import annotations

import pytest

from _helpers import FT_ALGORITHMS, run_selection_benchmark, scaled
from repro.graph.generators import erdos_renyi_graph, partitioned_graph

SIZES = (scaled(150), scaled(300), scaled(600))
BUDGET = scaled(12, minimum=6)


def _locality_graph(graph_cache, size):
    key = ("fig5a", size)
    if key not in graph_cache:
        graph_cache[key] = partitioned_graph(size, degree=6, seed=size)
    return graph_cache[key]


def _no_locality_graph(graph_cache, size):
    key = ("fig5b", size)
    if key not in graph_cache:
        graph_cache[key] = erdos_renyi_graph(size, average_degree=6.0, seed=size)
    return graph_cache[key]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("algorithm", FT_ALGORITHMS)
def test_fig5a_locality_graph_size(benchmark, graph_cache, size, algorithm):
    """Fig. 5(a): graph-size sweep with locality assumption."""
    graph = _locality_graph(graph_cache, size)
    run_selection_benchmark(benchmark, graph, algorithm, BUDGET)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("algorithm", FT_ALGORITHMS)
def test_fig5b_no_locality_graph_size(benchmark, graph_cache, size, algorithm):
    """Fig. 5(b): graph-size sweep without locality assumption."""
    graph = _no_locality_graph(graph_cache, size)
    run_selection_benchmark(benchmark, graph, algorithm, BUDGET)


@pytest.mark.parametrize("size", SIZES[:1])
def test_fig5_naive_baseline_smallest_size(benchmark, graph_cache, size):
    """The Naive whole-graph-sampling baseline, only on the smallest instance (it is slow)."""
    graph = _no_locality_graph(graph_cache, size)
    run_selection_benchmark(benchmark, graph, "Naive", BUDGET, n_samples=60)

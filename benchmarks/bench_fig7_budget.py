"""Figure 7: expected flow and runtime versus the edge budget k.

The paper's central sweep: as k grows, the Dijkstra spanning tree keeps
adding ever longer (and hence ever less reliable) paths without backup
edges, so its flow falls further and further behind the FT variants —
most dramatically under the locality assumption (Fig. 7(a)).
"""

from __future__ import annotations

import pytest

from _helpers import FT_ALGORITHMS, run_selection_benchmark, scaled
from repro.graph.generators import erdos_renyi_graph, partitioned_graph

BUDGETS = (scaled(8, minimum=4), scaled(16, minimum=8), scaled(32, minimum=16))
N_VERTICES = scaled(300)


@pytest.mark.parametrize("budget", BUDGETS)
@pytest.mark.parametrize("algorithm", FT_ALGORITHMS)
def test_fig7a_locality_budget(benchmark, graph_cache, budget, algorithm):
    """Fig. 7(a): budget sweep with locality assumption."""
    key = ("fig7a",)
    if key not in graph_cache:
        graph_cache[key] = partitioned_graph(N_VERTICES, degree=6, seed=0)
    run_selection_benchmark(benchmark, graph_cache[key], algorithm, budget)


@pytest.mark.parametrize("budget", BUDGETS)
@pytest.mark.parametrize("algorithm", FT_ALGORITHMS)
def test_fig7b_no_locality_budget(benchmark, graph_cache, budget, algorithm):
    """Fig. 7(b): budget sweep without locality assumption."""
    key = ("fig7b",)
    if key not in graph_cache:
        graph_cache[key] = erdos_renyi_graph(N_VERTICES, average_degree=6.0, seed=0)
    run_selection_benchmark(benchmark, graph_cache[key], algorithm, budget)


@pytest.mark.parametrize("budget", BUDGETS[:2])
def test_fig7_naive_baseline(benchmark, graph_cache, budget):
    """Naive baseline on the locality instance at the two smallest budgets."""
    key = ("fig7a",)
    if key not in graph_cache:
        graph_cache[key] = partitioned_graph(N_VERTICES, degree=6, seed=0)
    run_selection_benchmark(benchmark, graph_cache[key], "Naive", budget, n_samples=60)

"""Figures 1 and 3: the paper's worked examples.

These micro-benchmarks time (a) the exact reproduction of Example 1
(all-edges flow, Dijkstra spanning tree, optimal five-edge subgraph) and
(b) the incremental construction and evaluation of the Figure-3 F-tree,
whose expected flow must equal exact possible-world enumeration.
"""

from __future__ import annotations


from repro.experiments.running_example import (
    QUERY,
    example1_report,
    ftree_example_graph,
    ftree_example_insertion_order,
    ftree_example_report,
)
from repro.ftree.ftree import FTree
from repro.ftree.sampler import ComponentSampler


def test_example1_exact_reproduction(benchmark):
    """Example 1: exact flows of the three discussed solutions (Figure 1)."""
    report = benchmark(example1_report)
    benchmark.extra_info["flow_all_edges"] = round(report.flow_all_edges, 4)
    benchmark.extra_info["flow_dijkstra_tree"] = round(report.flow_dijkstra_tree, 4)
    benchmark.extra_info["flow_optimal_five"] = round(report.flow_optimal_five, 4)
    benchmark.extra_info["optimal_dominates_dijkstra"] = report.optimal_dominates_dijkstra
    assert report.optimal_dominates_dijkstra


def test_figure3_incremental_ftree_construction(benchmark):
    """Figure 3: incremental F-tree construction and flow evaluation."""
    graph = ftree_example_graph()
    order = ftree_example_insertion_order()

    def build_and_evaluate():
        ftree = FTree(
            graph, QUERY, sampler=ComponentSampler(n_samples=500, exact_threshold=12, seed=0)
        )
        for edge in order:
            ftree.insert_edge(edge.u, edge.v)
        return ftree.expected_flow()

    flow = benchmark(build_and_evaluate)
    benchmark.extra_info["ftree_flow"] = round(flow, 6)


def test_figure3_exact_agreement(benchmark):
    """Figure 3: F-tree versus exact possible-world enumeration."""
    report = benchmark.pedantic(ftree_example_report, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["exact_flow"] = round(report.exact_flow, 6)
    benchmark.extra_info["ftree_flow"] = round(report.ftree_flow, 6)
    assert report.agreement < 1e-9

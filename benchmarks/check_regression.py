#!/usr/bin/env python3
"""Compare a fresh benchmark ``--json`` report against a baseline.

CI runs the backend benchmark on every push and diffs the dimensionless
speedup ratios (``*_speedup``, ``csr_vs_vectorized``, ...) against the
checked-in ``BENCH_backends.json``; the server-smoke job does the same
for ``bench_server.py``'s ``throughput_ratio`` against
``BENCH_server.json``.  Ratios rather than raw seconds are compared
because CI machines differ from the machine the baseline was recorded
on — a slower runner scales every backend equally, but a real
regression moves one side relative to the other.

A fresh ratio below ``(1 - tolerance)`` of the baseline ratio fails the
check (default tolerance 25%).  Rows are matched on
``(n_vertices, n_samples)``; a fresh report with *no* overlapping rows
fails loudly rather than passing vacuously.  Ratio fields missing on
either side (e.g. ``csr_numba_vs_vectorized`` when numba is absent) are
ignored, so the same baseline serves both the plain and the numba CI
legs::

    PYTHONPATH=src python benchmarks/bench_backends.py --quick --json fresh.json
    python benchmarks/check_regression.py benchmarks/BENCH_backends.json fresh.json
    PYTHONPATH=src python benchmarks/bench_server.py --quick --json fresh-server.json
    python benchmarks/check_regression.py benchmarks/BENCH_server.json fresh-server.json

The same diff covers ``BENCH_selection.json`` (bare ``speedup`` per
``algorithm`` row), ``BENCH_queries.json`` (``cold_speedup`` /
``warm_speedup``), ``BENCH_parallel.json`` (``workers*_speedup`` under
``sharded_rows``) and ``BENCH_distributed.json`` (``remote*_speedup``).

Exit codes separate the two failure families: **1** means a genuine
ratio regression; **2** means the comparison itself could not run — a
missing or unparseable JSON file, no overlapping rows, or no shared
ratio fields (stale baseline / wrong file pairing, usually fixed by
``python benchmarks/refresh_baselines.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

DEFAULT_TOLERANCE = 0.25

#: Only dimensionless ratio fields participate in the diff
#: (``_ratio`` covers bench_server's served-vs-naive throughput ratio;
#: the bare ``speedup`` is bench_selection's CRN-vs-resample ratio).
RATIO_SUFFIXES = ("_speedup", "_vs_vectorized", "_ratio")

#: Keys under which a report may store comparable rows
#: (``sharded_rows`` is bench_parallel's layout).
ROW_KEYS = ("rows", "sharded_rows")


def ratio_fields(row: dict) -> Dict[str, float]:
    return {
        key: float(value)
        for key, value in row.items()
        if (key == "speedup" or key.endswith(RATIO_SUFFIXES))
        and isinstance(value, (int, float))
    }


def index_rows(report: dict) -> Dict[Tuple[int, int, str], dict]:
    """Rows keyed by size, sample count and (optional) algorithm label.

    bench_selection emits one row per ``algorithm`` at the same
    ``(n_vertices, n_samples)``, so the label participates in the key;
    reports without it collapse onto the empty string unchanged.
    """
    indexed: Dict[Tuple[int, int, str], dict] = {}
    for key in ROW_KEYS:
        for row in report.get(key, []):
            indexed[(row["n_vertices"], row["n_samples"], row.get("algorithm", ""))] = row
    return indexed


class ComparisonUnusableError(Exception):
    """The diff could not run at all (as opposed to finding a regression).

    Raised for disjoint row sets or overlapping rows with no shared
    ratio fields — both mean the baseline and the fresh report do not
    describe the same benchmark (stale baseline, wrong file pairing),
    not that performance moved.  Mapped to exit code 2.
    """


def compare(baseline: dict, fresh: dict, tolerance: float) -> List[str]:
    """Return a list of human-readable failure messages (empty = pass).

    Raises :class:`ComparisonUnusableError` when the two reports have
    nothing comparable.
    """
    failures: List[str] = []
    baseline_rows = index_rows(baseline)
    fresh_rows = index_rows(fresh)
    overlap = sorted(set(baseline_rows) & set(fresh_rows))
    if not overlap:
        raise ComparisonUnusableError(
            "no overlapping (n_vertices, n_samples, algorithm) rows between "
            f"the baseline rows {sorted(baseline_rows)} and the fresh rows "
            f"{sorted(fresh_rows)}; the baseline is stale or the files are "
            f"mismatched — regenerate with 'python benchmarks/refresh_baselines.py'"
        )

    compared = 0
    for key in overlap:
        base_ratios = ratio_fields(baseline_rows[key])
        fresh_ratios = ratio_fields(fresh_rows[key])
        for field in sorted(set(base_ratios) & set(fresh_ratios)):
            compared += 1
            floor = base_ratios[field] * (1.0 - tolerance)
            if fresh_ratios[field] < floor:
                label = f" [{key[2]}]" if key[2] else ""
                failures.append(
                    f"row |V|={key[0]} samples={key[1]}{label} {field}: "
                    f"{fresh_ratios[field]:.2f}x < {floor:.2f}x "
                    f"(baseline {base_ratios[field]:.2f}x - {tolerance:.0%})"
                )
    if compared == 0:
        raise ComparisonUnusableError(
            "overlapping rows share no ratio fields — nothing was compared; "
            "the baseline and fresh report come from different benchmarks, "
            "or the baseline predates the current report format — regenerate "
            "with 'python benchmarks/refresh_baselines.py'"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="checked-in baseline JSON")
    parser.add_argument("fresh", type=Path, help="report from this run's --json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    args = parser.parse_args(argv)

    reports = {}
    for label, path in (("baseline", args.baseline), ("fresh", args.fresh)):
        try:
            reports[label] = json.loads(path.read_text())
        except FileNotFoundError:
            hint = (
                " — regenerate checked-in baselines with "
                "'python benchmarks/refresh_baselines.py'"
                if label == "baseline"
                else " — run the benchmark with --json first"
            )
            print(f"ERROR: {label} report {path} does not exist{hint}")
            return 2
        except (OSError, ValueError) as error:
            print(f"ERROR: {label} report {path} is not readable JSON: {error}")
            return 2
    try:
        failures = compare(reports["baseline"], reports["fresh"], args.tolerance)
    except ComparisonUnusableError as error:
        print(f"ERROR: cannot compare {args.fresh} against {args.baseline}: {error}")
        return 2
    if failures:
        print(f"PERF REGRESSION vs {args.baseline}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"no ratio regression vs {args.baseline} (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

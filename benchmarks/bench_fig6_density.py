"""Figure 6: expected flow and runtime versus graph density (vertex degree).

* Fig. 6(a): *partitioned* graphs (locality) — the FT variants' advantage
  over Dijkstra is largest at low degree.
* Fig. 6(b): Erdős graphs (no locality) — the paper notes that Dijkstra
  closes the gap (and can win) at small degrees, where the optimal
  solution is almost tree-like.
"""

from __future__ import annotations

import pytest

from _helpers import FT_ALGORITHMS, run_selection_benchmark, scaled
from repro.graph.generators import erdos_renyi_graph, partitioned_graph

DEGREES = (4, 6, 10)
N_VERTICES = scaled(300)
BUDGET = scaled(12, minimum=6)


@pytest.mark.parametrize("degree", DEGREES)
@pytest.mark.parametrize("algorithm", FT_ALGORITHMS)
def test_fig6a_locality_density(benchmark, graph_cache, degree, algorithm):
    """Fig. 6(a): density sweep with locality assumption."""
    key = ("fig6a", degree)
    if key not in graph_cache:
        graph_cache[key] = partitioned_graph(N_VERTICES, degree=degree, seed=degree)
    run_selection_benchmark(benchmark, graph_cache[key], algorithm, BUDGET)


@pytest.mark.parametrize("degree", DEGREES)
@pytest.mark.parametrize("algorithm", FT_ALGORITHMS)
def test_fig6b_no_locality_density(benchmark, graph_cache, degree, algorithm):
    """Fig. 6(b): density sweep without locality assumption."""
    key = ("fig6b", degree)
    if key not in graph_cache:
        graph_cache[key] = erdos_renyi_graph(N_VERTICES, average_degree=degree, seed=degree)
    run_selection_benchmark(benchmark, graph_cache[key], algorithm, BUDGET)

"""Figure 8: synthetic wireless sensor networks.

Vertices are sensors placed uniformly in the unit square, connected when
closer than ``eps``; Fig. 8(a) uses eps = 0.05, Fig. 8(b) eps = 0.07.
The paper reports the same qualitative behaviour as on the partitioned
graphs: a strong locality structure, a large Dijkstra flow deficit and a
good runtime/flow trade-off for the combined heuristics; increasing eps
(denser networks) narrows the gap between Dijkstra and the FT variants.
"""

from __future__ import annotations

import pytest

from _helpers import FT_ALGORITHMS, run_selection_benchmark, scaled
from repro.graph.generators import wsn_graph

EPS_VALUES = (0.05, 0.07)
N_SENSORS = scaled(600)
BUDGET = scaled(16, minimum=8)


def _wsn(graph_cache, eps):
    key = ("fig8", eps)
    if key not in graph_cache:
        graph_cache[key] = wsn_graph(N_SENSORS, eps=eps, seed=17)
    return graph_cache[key]


@pytest.mark.parametrize("eps", EPS_VALUES)
@pytest.mark.parametrize("algorithm", FT_ALGORITHMS)
def test_fig8_wsn(benchmark, graph_cache, eps, algorithm):
    """Fig. 8(a)/(b): WSN budget-constrained flow maximisation for each radio range."""
    graph = _wsn(graph_cache, eps)
    run_selection_benchmark(benchmark, graph, algorithm, BUDGET)

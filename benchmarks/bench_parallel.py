#!/usr/bin/env python3
"""Micro-benchmark: parallel sharded sampling and adaptive CI stopping.

Two measurements on the Fig. 5 graph-size sweep (Erdős graphs, degree 6
— the paper's no-locality scheme):

1. **Sharded fan-out** — times whole-graph Monte-Carlo flow estimation
   (:func:`repro.reachability.monte_carlo.monte_carlo_expected_flow`) on
   the *naive* backend under the serial reference executor and under
   process pools of 2 and 4 workers, all at the same
   ``(seed, n_samples, shard_size)``.  The flows must be bit-for-bit
   identical across worker counts (the :mod:`repro.parallel` determinism
   contract); the run aborts if they are not.  The acceptance case is
   the |E| ≈ 1800 instance (|V| = 600) at 5000 samples: 4 workers must
   be ≥ 2.5x faster than 1 worker — enforced only when the machine
   actually has ≥ 4 CPUs, and recorded as skipped otherwise (the BENCH
   JSON carries ``cpu_count`` so trajectories stay comparable).

2. **Adaptive stopping** — estimates a two-terminal reachability with
   ``n_samples="auto"`` (Wilson interval, target width 0.02, capped at
   the fixed budget) and reports how much of the fixed 5000-sample
   budget the adaptive stopper actually spent.  Acceptance: at least one
   Fig. 5 size reaches the target width with ≤ 60% of the fixed budget.

Like the other plain-script benchmarks this is CI-smokeable::

    PYTHONPATH=src python benchmarks/bench_parallel.py                # full sweep
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick        # CI smoke
    PYTHONPATH=src python benchmarks/bench_parallel.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from _helpers import bench_environment
from repro.graph.generators import erdos_renyi_graph
from repro.parallel import AdaptiveSettings, ProcessExecutor, SerialExecutor
from repro.reachability.confidence import proportion_interval_function
from repro.reachability.monte_carlo import (
    monte_carlo_expected_flow,
    monte_carlo_reachability,
)

#: Fig. 5 graph-size sweep (scaled down, degree 6 ⇒ |E| ≈ 3·|V|).
FULL_SIZES = (150, 300, 600)
QUICK_SIZES = (60,)

FULL_SAMPLES = 5000
QUICK_SAMPLES = 400

#: Worlds per shard (fixed: shard size is part of the determinism key).
SHARD_SIZE = 256

#: Process-pool worker counts measured against the serial reference.
WORKER_COUNTS = (2, 4)

#: Acceptance thresholds (see ISSUE 3).
TARGET_SPEEDUP = 2.5
ADAPTIVE_TARGET_WIDTH = 0.02
ADAPTIVE_BUDGET_FRACTION = 0.6

SEED = 7
BACKEND = "naive"


def _pick_adaptive_target(graph, source):
    """The neighbour of ``source`` joined by the most reliable edge.

    A high-reachability pair is exactly where adaptive stopping should
    beat a fixed budget: the Wilson interval around a fraction near 1
    tightens far faster than the worst-case (p = 0.5) sizing a fixed
    budget has to assume.
    """
    best, best_probability = None, -1.0
    for neighbor in graph.neighbors(source):
        probability = graph.probability(source, neighbor)
        if probability > best_probability:
            best, best_probability = neighbor, probability
    return best


def bench_sharded(sizes, n_samples: int) -> List[dict]:
    """Time serial versus process-pool sharded sampling; verify invariance."""
    rows: List[dict] = []
    for size in sizes:
        graph = erdos_renyi_graph(size, average_degree=6.0, seed=size)
        query = 0
        row = {
            "n_vertices": graph.n_vertices,
            "n_edges": graph.n_edges,
            "n_samples": n_samples,
            "shard_size": SHARD_SIZE,
            "backend": BACKEND,
        }
        flows = {}

        started = time.perf_counter()
        estimate = monte_carlo_expected_flow(
            graph, query, n_samples=n_samples, seed=SEED, backend=BACKEND,
            executor=SerialExecutor(), shard_size=SHARD_SIZE,
        )
        row["serial_seconds"] = time.perf_counter() - started
        flows["serial"] = estimate.expected_flow

        for workers in WORKER_COUNTS:
            with ProcessExecutor(workers) as pool:
                # warm the pool on a tiny request so process start-up is
                # not billed to the measured run
                monte_carlo_expected_flow(
                    graph, query, n_samples=SHARD_SIZE, seed=SEED, backend=BACKEND,
                    executor=pool, shard_size=SHARD_SIZE,
                )
                started = time.perf_counter()
                estimate = monte_carlo_expected_flow(
                    graph, query, n_samples=n_samples, seed=SEED, backend=BACKEND,
                    executor=pool, shard_size=SHARD_SIZE,
                )
                row[f"workers{workers}_seconds"] = time.perf_counter() - started
                flows[f"workers{workers}"] = estimate.expected_flow
            row[f"workers{workers}_speedup"] = (
                row["serial_seconds"] / row[f"workers{workers}_seconds"]
            )

        if len(set(flows.values())) != 1:
            raise SystemExit(
                f"worker counts disagree on the same (seed, n_samples, shard_size): {flows!r}"
            )
        row["expected_flow"] = flows["serial"]
        rows.append(row)
    return rows


def bench_adaptive(sizes, fixed_budget: int) -> List[dict]:
    """Adaptive CI-driven stopping versus the paper's fixed sample budget."""
    settings = AdaptiveSettings(
        target_width=ADAPTIVE_TARGET_WIDTH,
        alpha=0.05,
        method="wilson",
        max_samples=fixed_budget,
        min_samples=min(100, fixed_budget),
    )
    rows: List[dict] = []
    for size in sizes:
        graph = erdos_renyi_graph(size, average_degree=6.0, seed=size)
        source = 0
        target = _pick_adaptive_target(graph, source)
        if target is None:
            print(f"  |V|={graph.n_vertices}: source {source} is isolated, skipping")
            continue
        estimate = monte_carlo_reachability(
            graph, source, target, n_samples="auto", seed=SEED, adaptive=settings
        )
        width = proportion_interval_function(settings.method)(
            estimate.successes, estimate.n_samples, alpha=settings.alpha
        ).width
        rows.append(
            {
                "n_vertices": graph.n_vertices,
                "n_edges": graph.n_edges,
                "target": target,
                "probability": estimate.probability,
                "fixed_budget": fixed_budget,
                "samples_used": estimate.n_samples,
                "budget_fraction": estimate.n_samples / fixed_budget,
                "ci_width": width,
                "target_width": settings.target_width,
                "converged": width <= settings.target_width,
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny instance + 400 samples (CI smoke test)"
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write the benchmark rows to this JSON file"
    )
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    n_samples = QUICK_SAMPLES if args.quick else FULL_SAMPLES

    sharded = bench_sharded(sizes, n_samples)
    header = (
        f"{'|V|':>6} {'|E|':>6} {'samples':>8} {'serial [s]':>11} "
        + " ".join(f"{f'{w}w [s]':>9} {f'{w}w spd':>8}" for w in WORKER_COUNTS)
        + f" {'flow':>10}"
    )
    print(header)
    print("-" * len(header))
    for row in sharded:
        print(
            f"{row['n_vertices']:>6} {row['n_edges']:>6} {row['n_samples']:>8} "
            f"{row['serial_seconds']:>11.3f} "
            + " ".join(
                f"{row[f'workers{w}_seconds']:>9.3f} {row[f'workers{w}_speedup']:>7.2f}x"
                for w in WORKER_COUNTS
            )
            + f" {row['expected_flow']:>10.3f}"
        )

    adaptive = bench_adaptive(sizes, n_samples)
    print(
        f"\nadaptive (wilson, width <= {ADAPTIVE_TARGET_WIDTH}, "
        f"cap {n_samples}):"
    )
    for row in adaptive:
        print(
            f"  |V|={row['n_vertices']:>4}  p^={row['probability']:.4f}  "
            f"used {row['samples_used']:>5}/{row['fixed_budget']} "
            f"({row['budget_fraction']:.0%})  width={row['ci_width']:.4f}  "
            f"{'converged' if row['converged'] else 'hit cap'}"
        )

    report = {
        "bench": "parallel_sharded_sampling",
        "sizes": list(sizes),
        "n_samples": n_samples,
        "backend": BACKEND,
        "worker_counts": list(WORKER_COUNTS),
        "target_speedup": TARGET_SPEEDUP,
        "adaptive_target_width": ADAPTIVE_TARGET_WIDTH,
        "adaptive_budget_fraction": ADAPTIVE_BUDGET_FRACTION,
        "environment": bench_environment(workers=max(WORKER_COUNTS), shard_size=SHARD_SIZE),
        "sharded_rows": sharded,
        "adaptive_rows": adaptive,
    }

    exit_code = 0
    if not args.quick:
        acceptance = {}
        cpu_count = os.cpu_count() or 1
        speedup_cases = [r for r in sharded if r["n_edges"] >= 1500 and r["n_samples"] >= 5000]
        worst: Optional[float] = (
            min(r["workers4_speedup"] for r in speedup_cases) if speedup_cases else None
        )
        if worst is None:
            acceptance["speedup"] = {"status": "SKIPPED (no qualifying instance)"}
        elif cpu_count < 4:
            acceptance["speedup"] = {
                "worst_4worker_speedup": worst,
                "status": f"SKIPPED (cpu_count={cpu_count} < 4)",
            }
            print(
                f"\nacceptance (4 workers >= {TARGET_SPEEDUP}x at |E| >= 1500, 5000 samples): "
                f"SKIPPED — only {cpu_count} CPU(s) available (measured {worst:.2f}x)"
            )
        else:
            status = "PASS" if worst >= TARGET_SPEEDUP else "FAIL"
            acceptance["speedup"] = {"worst_4worker_speedup": worst, "status": status}
            print(
                f"\nacceptance (4 workers >= {TARGET_SPEEDUP}x at |E| >= 1500, 5000 samples): "
                f"{status} (worst {worst:.2f}x)"
            )
            if status == "FAIL":
                exit_code = 1

        good = [
            r
            for r in adaptive
            if r["converged"] and r["budget_fraction"] <= ADAPTIVE_BUDGET_FRACTION
        ]
        status = "PASS" if good else "FAIL"
        acceptance["adaptive"] = {
            "status": status,
            "best_budget_fraction": min((r["budget_fraction"] for r in adaptive), default=None),
        }
        print(
            f"acceptance (width {ADAPTIVE_TARGET_WIDTH} using <= "
            f"{ADAPTIVE_BUDGET_FRACTION:.0%} of the budget on >= 1 size): {status}"
        )
        if not good:
            exit_code = 1
        report["acceptance"] = acceptance

    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"\nBENCH JSON written to {args.json}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())

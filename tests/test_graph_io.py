"""Tests for graph serialisation (edge list and JSON)."""

import pytest

from repro.exceptions import GraphError
from repro.graph.generators import erdos_renyi_graph
from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    read_edge_list,
    read_json,
    write_edge_list,
    write_json,
)
from repro.graph.uncertain_graph import UncertainGraph


@pytest.fixture
def sample_graph() -> UncertainGraph:
    graph = UncertainGraph(name="io-sample")
    graph.add_vertex(0, weight=1.0)
    graph.add_vertex(1, weight=2.5)
    graph.add_vertex(2, weight=1.0)
    graph.add_vertex(99, weight=7.0)  # isolated vertex
    graph.add_edge(0, 1, 0.5)
    graph.add_edge(1, 2, 0.125)
    return graph


class TestEdgeList:
    def test_round_trip(self, tmp_path, sample_graph):
        path = tmp_path / "graph.tsv"
        write_edge_list(sample_graph, path)
        loaded = read_edge_list(path)
        assert loaded == sample_graph

    def test_round_trip_random_graph(self, tmp_path):
        graph = erdos_renyi_graph(30, seed=5)
        path = tmp_path / "random.tsv"
        write_edge_list(graph, path)
        assert read_edge_list(path) == graph

    def test_malformed_edge_line(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("0 1\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_malformed_weight_line(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("# 0\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_default_name_is_file_stem(self, tmp_path, sample_graph):
        path = tmp_path / "mynetwork.tsv"
        write_edge_list(sample_graph, path)
        assert read_edge_list(path).name == "mynetwork"

    def test_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / "sparse.tsv"
        path.write_text("\n0\t1\t0.5\n\n", encoding="utf-8")
        graph = read_edge_list(path)
        assert graph.n_edges == 1


class TestJson:
    def test_round_trip(self, tmp_path, sample_graph):
        path = tmp_path / "graph.json"
        write_json(sample_graph, path)
        loaded = read_json(path)
        assert loaded == sample_graph
        assert loaded.name == "io-sample"

    def test_dict_round_trip(self, sample_graph):
        assert graph_from_dict(graph_to_dict(sample_graph)) == sample_graph

    def test_dict_defaults(self):
        graph = graph_from_dict({"vertices": [{"id": 0}], "edges": []})
        assert graph.weight(0) == 1.0
        assert graph.name == ""

"""Tests for the command-line interface."""


import pytest

from repro.cli import build_parser, main
from repro.graph.io import read_json, write_json
from repro.graph.generators import erdos_renyi_graph


@pytest.fixture
def graph_file(tmp_path):
    graph = erdos_renyi_graph(25, average_degree=3, seed=0)
    path = tmp_path / "graph.json"
    write_json(graph, path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self):
        args = build_parser().parse_args(
            ["generate", "--dataset", "erdos", "--out", "x.json"]
        )
        assert args.dataset == "erdos"


class TestGenerate:
    def test_generates_json(self, tmp_path, capsys):
        out = tmp_path / "erdos.json"
        code = main(["generate", "--dataset", "erdos", "--size", "30", "--out", str(out)])
        assert code == 0
        assert out.exists()
        graph = read_json(out)
        assert graph.n_vertices == 30
        assert "30 vertices" in capsys.readouterr().out


class TestSelect:
    def test_select_reports_flow(self, graph_file, capsys, tmp_path):
        edges_out = tmp_path / "edges.txt"
        code = main(
            [
                "select",
                "--graph", str(graph_file),
                "--budget", "4",
                "--algorithm", "FT+M",
                "--samples", "40",
                "--out", str(edges_out),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "expected flow" in output
        assert edges_out.exists()
        assert len(edges_out.read_text().strip().splitlines()) == 4

    def test_select_with_explicit_query(self, graph_file, capsys):
        code = main(
            ["select", "--graph", str(graph_file), "--budget", "2", "--query", "0",
             "--samples", "30"]
        )
        assert code == 0
        assert "query vertex   : 0" in capsys.readouterr().out

    def test_unknown_query_vertex(self, graph_file):
        with pytest.raises(SystemExit):
            main(["select", "--graph", str(graph_file), "--budget", "2", "--query", "zzz"])


class TestEvaluate:
    def test_evaluate_round_trip(self, graph_file, tmp_path, capsys):
        edges_file = tmp_path / "edges.txt"
        main(
            ["select", "--graph", str(graph_file), "--budget", "3", "--query", "0",
             "--samples", "30", "--out", str(edges_file)]
        )
        capsys.readouterr()
        code = main(
            ["evaluate", "--graph", str(graph_file), "--edges", str(edges_file),
             "--query", "0", "--samples", "100"]
        )
        assert code == 0
        assert "expected flow" in capsys.readouterr().out

    def test_malformed_edge_file(self, graph_file, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("only-one-token\n", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["evaluate", "--graph", str(graph_file), "--edges", str(bad), "--query", "0"])


class TestExperiment:
    def test_variance_figure_runs(self, capsys):
        code = main(["experiment", "--figure", "variance"])
        assert code == 0
        out = capsys.readouterr().out
        assert "whole-graph MC" in out

    def test_csv_output(self, capsys):
        code = main(["experiment", "--figure", "variance", "--csv"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("estimator")

    def test_output_dir_writes_csv(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        code = main(
            ["experiment", "--figure", "7a", "--quick", "--output-dir", str(out_dir)]
        )
        assert code == 0
        written = list(out_dir.glob("figure_*.csv"))
        assert len(written) == 1
        assert (out_dir / "SUMMARY.md").exists()
        assert "CSV files written" in capsys.readouterr().out

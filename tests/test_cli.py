"""Tests for the command-line interface."""


import pytest

from repro.cli import build_parser, main
from repro.graph.io import read_json, write_json
from repro.graph.generators import erdos_renyi_graph


@pytest.fixture
def graph_file(tmp_path):
    graph = erdos_renyi_graph(25, average_degree=3, seed=0)
    path = tmp_path / "graph.json"
    write_json(graph, path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self):
        args = build_parser().parse_args(
            ["generate", "--dataset", "erdos", "--out", "x.json"]
        )
        assert args.dataset == "erdos"


class TestGenerate:
    def test_generates_json(self, tmp_path, capsys):
        out = tmp_path / "erdos.json"
        code = main(["generate", "--dataset", "erdos", "--size", "30", "--out", str(out)])
        assert code == 0
        assert out.exists()
        graph = read_json(out)
        assert graph.n_vertices == 30
        assert "30 vertices" in capsys.readouterr().out


class TestSelect:
    def test_select_reports_flow(self, graph_file, capsys, tmp_path):
        edges_out = tmp_path / "edges.txt"
        code = main(
            [
                "select",
                "--graph", str(graph_file),
                "--budget", "4",
                "--algorithm", "FT+M",
                "--samples", "40",
                "--out", str(edges_out),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "expected flow" in output
        assert edges_out.exists()
        assert len(edges_out.read_text().strip().splitlines()) == 4

    def test_select_with_explicit_query(self, graph_file, capsys):
        code = main(
            ["select", "--graph", str(graph_file), "--budget", "2", "--query", "0",
             "--samples", "30"]
        )
        assert code == 0
        assert "query vertex   : 0" in capsys.readouterr().out

    def test_unknown_query_vertex(self, graph_file):
        with pytest.raises(SystemExit):
            main(["select", "--graph", str(graph_file), "--budget", "2", "--query", "zzz"])


class TestEvaluate:
    def test_evaluate_round_trip(self, graph_file, tmp_path, capsys):
        edges_file = tmp_path / "edges.txt"
        main(
            ["select", "--graph", str(graph_file), "--budget", "3", "--query", "0",
             "--samples", "30", "--out", str(edges_file)]
        )
        capsys.readouterr()
        code = main(
            ["evaluate", "--graph", str(graph_file), "--edges", str(edges_file),
             "--query", "0", "--samples", "100"]
        )
        assert code == 0
        assert "expected flow" in capsys.readouterr().out

    def test_malformed_edge_file(self, graph_file, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("only-one-token\n", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["evaluate", "--graph", str(graph_file), "--edges", str(bad), "--query", "0"])


class TestExperiment:
    def test_variance_figure_runs(self, capsys):
        code = main(["experiment", "--figure", "variance"])
        assert code == 0
        out = capsys.readouterr().out
        assert "whole-graph MC" in out

    def test_csv_output(self, capsys):
        code = main(["experiment", "--figure", "variance", "--csv"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("estimator")

    def test_output_dir_writes_csv(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        code = main(
            ["experiment", "--figure", "7a", "--quick", "--output-dir", str(out_dir)]
        )
        assert code == 0
        written = list(out_dir.glob("figure_*.csv"))
        assert len(written) == 1
        assert (out_dir / "SUMMARY.md").exists()
        assert "CSV files written" in capsys.readouterr().out


class TestBatch:
    @staticmethod
    def _write_requests(tmp_path, lines):
        path = tmp_path / "requests.jsonl"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path

    def test_batch_answers_match_single_query(self, graph_file, tmp_path, capsys):
        import json

        from repro.reachability.monte_carlo import (
            monte_carlo_expected_flow,
            monte_carlo_reachability,
        )

        requests = self._write_requests(
            tmp_path,
            [
                '{"kind": "expected_flow", "query": 0, "n_samples": 80, "seed": 7}',
                '{"kind": "pair_reachability", "source": 0, "target": 5, "n_samples": 80, "seed": 7}',
                "# comments and blank lines are skipped",
                "",
            ],
        )
        out = tmp_path / "results.jsonl"
        code = main(
            ["batch", "--graph", str(graph_file), "--requests", str(requests),
             "--out", str(out)]
        )
        assert code == 0
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(rows) == 2
        graph = read_json(graph_file)
        flow = monte_carlo_expected_flow(graph, 0, n_samples=80, seed=7)
        pair = monte_carlo_reachability(graph, 0, 5, n_samples=80, seed=7)
        assert rows[0]["expected_flow"] == flow.expected_flow
        assert rows[1]["probability"] == pair.probability
        summary = capsys.readouterr().out
        assert "world batches  : 1" in summary  # both requests shared one batch

    def test_batch_warm_serves_from_cache(self, graph_file, tmp_path, capsys):
        import json

        requests = self._write_requests(
            tmp_path,
            ['{"kind": "expected_flow", "query": 0, "n_samples": 60, "seed": 1}'],
        )
        code = main(
            ["batch", "--graph", str(graph_file), "--requests", str(requests), "--warm"]
        )
        assert code == 0
        captured = capsys.readouterr()
        row = json.loads(captured.out.splitlines()[0])
        assert row["from_cache"] is True

    def test_batch_rejects_bad_request_lines(self, graph_file, tmp_path):
        requests = self._write_requests(
            tmp_path, ['{"kind": "mystery", "query": 0}']
        )
        with pytest.raises(SystemExit):
            main(["batch", "--graph", str(graph_file), "--requests", str(requests)])

    def test_batch_rejects_missing_vertices_cleanly(self, graph_file, tmp_path):
        requests = self._write_requests(
            tmp_path, ['{"kind": "expected_flow", "query": 424242}']
        )
        with pytest.raises(SystemExit, match="batch evaluation failed"):
            main(["batch", "--graph", str(graph_file), "--requests", str(requests)])

    def test_batch_rejects_empty_request_file(self, graph_file, tmp_path):
        requests = self._write_requests(tmp_path, ["# nothing here"])
        with pytest.raises(SystemExit, match="no requests"):
            main(["batch", "--graph", str(graph_file), "--requests", str(requests)])

    def test_batch_validates_flags(self, graph_file, tmp_path):
        requests = self._write_requests(
            tmp_path, ['{"kind": "expected_flow", "query": 0}']
        )
        with pytest.raises(SystemExit):
            main(["batch", "--graph", str(graph_file), "--requests", str(requests),
                  "--cache-size", "-1"])
        with pytest.raises(SystemExit):
            main(["batch", "--graph", str(graph_file), "--requests", str(requests),
                  "--workers", "0"])

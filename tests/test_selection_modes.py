"""Selector edge cases across the CRN / resample sampling modes.

The CRN refactor rewired every sampling-based selector's candidate
evaluation; these tests pin the behaviours that must not change with the
mode: exhausting a candidate pool smaller than the budget, a query
vertex with no incident uncertain edges, and per-seed determinism of
the selection in both modes.
"""

from __future__ import annotations

import pytest

from repro.graph.generators import erdos_renyi_graph, path_graph
from repro.graph.uncertain_graph import UncertainGraph
from repro.selection.dijkstra_tree import DijkstraSelector
from repro.selection.ftree_greedy import FTreeGreedySelector
from repro.selection.greedy_naive import NaiveGreedySelector
from repro.selection.lazy_greedy import LazyGreedySelector
from repro.selection.random_baseline import RandomSelector
from repro.selection.registry import get_default_crn, make_selector

MODES = (True, False)


def _sampling_selectors(crn: bool):
    """One instance of every sampling-based selector in the given mode."""
    return [
        NaiveGreedySelector(n_samples=30, seed=0, crn=crn),
        FTreeGreedySelector(n_samples=30, seed=0, crn=crn),
        FTreeGreedySelector(n_samples=30, seed=0, memoize=True, crn=crn),
        LazyGreedySelector(n_samples=30, seed=0, crn=crn),
        RandomSelector(n_samples=30, seed=0, crn=crn),
    ]


@pytest.mark.parametrize("crn", MODES)
class TestBudgetExceedsCandidatePool:
    def test_selectors_stop_at_pool_size(self, crn):
        graph = path_graph(5, probability=0.6)
        for selector in _sampling_selectors(crn):
            result = selector.select(graph, 0, 100)
            assert result.n_selected == 4, selector.name
            assert result.budget == 100

    def test_selected_edges_cover_the_whole_path(self, crn):
        graph = path_graph(4, probability=0.6)
        result = NaiveGreedySelector(n_samples=40, seed=1, crn=crn).select(graph, 0, 50)
        assert sorted((min(e.u, e.v), max(e.u, e.v)) for e in result.selected_edges) == [
            (0, 1),
            (1, 2),
            (2, 3),
        ]


@pytest.mark.parametrize("crn", MODES)
class TestIsolatedQueryVertex:
    def _graph_with_isolated_query(self) -> UncertainGraph:
        graph = erdos_renyi_graph(12, average_degree=3.0, seed=7)
        graph.add_vertex("island", weight=2.0)
        return graph

    def test_no_incident_uncertain_edges_selects_nothing(self, crn):
        graph = self._graph_with_isolated_query()
        for selector in _sampling_selectors(crn):
            result = selector.select(graph, "island", 5)
            assert result.selected_edges == [], selector.name
            assert result.expected_flow == 0.0, selector.name
            assert result.iterations == [], selector.name

    def test_dijkstra_also_selects_nothing(self, crn):
        graph = self._graph_with_isolated_query()
        result = DijkstraSelector().select(graph, "island", 5)
        assert result.selected_edges == []


class TestDeterministicSelectionPerSeed:
    @pytest.mark.parametrize("crn", MODES)
    @pytest.mark.parametrize(
        "name", ("Naive", "FT", "FT+M", "FT+M+CI", "FT+M+DS", "Random")
    )
    def test_same_seed_same_selection(self, name, crn):
        graph = erdos_renyi_graph(25, average_degree=4.0, seed=9)
        runs = [
            make_selector(name, n_samples=40, seed=5, crn=crn).select(graph, 0, 5)
            for _ in range(2)
        ]
        assert runs[0].selected_edges == runs[1].selected_edges
        assert runs[0].expected_flow == runs[1].expected_flow

    @pytest.mark.parametrize("crn", MODES)
    def test_lazy_same_seed_same_selection(self, crn):
        graph = erdos_renyi_graph(25, average_degree=4.0, seed=9)
        runs = [
            LazyGreedySelector(n_samples=40, seed=5, crn=crn).select(graph, 0, 5)
            for _ in range(2)
        ]
        assert runs[0].selected_edges == runs[1].selected_edges

    def test_modes_are_actually_different_streams(self):
        """CRN and resample are distinct estimators: extras record the mode."""
        graph = erdos_renyi_graph(25, average_degree=4.0, seed=9)
        crn = NaiveGreedySelector(n_samples=40, seed=5, crn=True).select(graph, 0, 5)
        resample = NaiveGreedySelector(n_samples=40, seed=5, crn=False).select(graph, 0, 5)
        assert crn.extras["crn"] == 1.0
        assert resample.extras["crn"] == 0.0
        assert "fast_evaluations" in crn.extras
        assert "fast_evaluations" not in resample.extras


class TestDefaultCrnToggle:
    def test_default_is_crn(self):
        assert get_default_crn() is True
        assert make_selector("Naive", n_samples=10).crn is True

    def test_runtime_default_redirects_none(self):
        # (the deprecated set_default_crn shim over this store is pinned
        # in tests/test_runtime_deprecations.py)
        from repro.runtime import defaults

        defaults.crn = False
        try:
            assert make_selector("Naive", n_samples=10).crn is False
            assert make_selector("FT+M", n_samples=10).crn is False
            # an explicit argument still wins over the default
            assert make_selector("Naive", n_samples=10, crn=True).crn is True
        finally:
            defaults.crn = None
        assert get_default_crn() is True

    def test_session_scope_redirects_none(self):
        import repro

        with repro.session(crn=False):
            assert make_selector("Naive", n_samples=10).crn is False
        assert get_default_crn() is True

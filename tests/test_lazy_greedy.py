"""Tests for the CELF-style lazy greedy selector (library extension)."""

import pytest

from repro.graph.generators import erdos_renyi_graph, partitioned_graph, path_graph, star_graph
from repro.reachability.exact import exact_expected_flow
from repro.selection.ftree_greedy import FTreeGreedySelector
from repro.selection.lazy_greedy import LazyGreedySelector
from repro.types import Edge


def _lazy(**kwargs) -> LazyGreedySelector:
    defaults = dict(n_samples=60, exact_threshold=16, seed=0)
    defaults.update(kwargs)
    return LazyGreedySelector(**defaults)


class TestLazyGreedy:
    def test_respects_budget(self, random_graph):
        result = _lazy().select(random_graph, 0, 8)
        assert result.n_selected == 8
        assert result.algorithm == "FT+Lazy"

    def test_stops_when_exhausted(self):
        graph = path_graph(4, probability=0.5)
        result = _lazy().select(graph, 0, 10)
        assert result.n_selected == 3

    def test_selected_edges_are_connected_to_query(self, random_graph):
        result = _lazy().select(random_graph, 0, 10)
        connected = {0}
        for edge in result.selected_edges:
            assert edge.u in connected or edge.v in connected
            connected.update(edge.endpoints())

    def test_first_pick_is_best_edge(self):
        graph = star_graph(4, probability=0.3)
        graph.set_probability(0, 3, 0.95)
        result = _lazy().select(graph, 0, 1)
        assert result.selected_edges == [Edge(0, 3)]

    def test_matches_plain_greedy_flow_with_exact_evaluation(self):
        """With exact component evaluation lazy greedy reaches the same flow as FT greedy."""
        graph = erdos_renyi_graph(25, average_degree=4, seed=3)
        budget = 6
        eager = FTreeGreedySelector(n_samples=60, exact_threshold=16, seed=1).select(
            graph, 0, budget
        )
        lazy = _lazy(seed=1).select(graph, 0, budget)
        eager_flow = exact_expected_flow(graph, 0, edges=eager.selected_edges).expected_flow
        lazy_flow = exact_expected_flow(graph, 0, edges=lazy.selected_edges).expected_flow
        assert lazy_flow == pytest.approx(eager_flow, rel=1e-6)

    def test_uses_fewer_flow_evaluations_than_eager_greedy(self):
        graph = partitioned_graph(120, degree=6, seed=2)
        budget = 10
        lazy = _lazy(exact_threshold=10).select(graph, 0, budget)
        eager = FTreeGreedySelector(n_samples=60, exact_threshold=10, seed=0).select(
            graph, 0, budget
        )
        eager_probes = sum(iteration.candidates_probed for iteration in eager.iterations)
        assert lazy.extras["flow_evaluations"] < eager_probes

    def test_flow_monotone_over_iterations(self, random_graph):
        result = _lazy().select(random_graph, 0, 8)
        flows = [iteration.flow_after for iteration in result.iterations]
        assert all(b >= a - 1e-9 for a, b in zip(flows, flows[1:]))

    def test_zero_budget(self, random_graph):
        result = _lazy().select(random_graph, 0, 0)
        assert result.n_selected == 0

"""Tests for the from-scratch F-tree builder and its agreement with incremental insertion."""

import pytest

from repro.experiments.running_example import (
    QUERY,
    ftree_example_graph,
    ftree_example_insertion_order,
)
from repro.ftree.builder import build_ftree
from repro.ftree.ftree import FTree
from repro.ftree.sampler import ComponentSampler
from repro.graph.generators import cycle_graph, erdos_renyi_graph, path_graph
from repro.reachability.exact import exact_expected_flow
from repro.types import Edge


def exact_sampler() -> ComponentSampler:
    return ComponentSampler(n_samples=10, exact_threshold=20, seed=0)


class TestBuilderBasics:
    def test_empty_edge_set(self, small_path):
        ftree = build_ftree(small_path, [], 0, sampler=exact_sampler())
        assert ftree.expected_flow() == 0.0
        assert ftree.components() == []

    def test_tree_only_graph_has_mono_components_only(self, small_path):
        ftree = build_ftree(small_path, small_path.edge_list(), 0, sampler=exact_sampler())
        ftree.check_invariants()
        assert all(component.is_mono for component in ftree.components())
        assert ftree.expected_flow() == pytest.approx(0.875)

    def test_cycle_graph_has_single_bi_component(self, five_cycle):
        ftree = build_ftree(five_cycle, five_cycle.edge_list(), 0, sampler=exact_sampler())
        ftree.check_invariants()
        components = ftree.components()
        assert len(components) == 1
        assert not components[0].is_mono
        assert components[0].articulation == 0

    def test_edges_not_connected_to_query_are_ignored(self):
        graph = path_graph(5, probability=0.5)
        graph.remove_edge(1, 2)  # disconnect {2,3,4} from {0,1}
        ftree = build_ftree(graph, graph.edge_list(), 0, sampler=exact_sampler())
        ftree.check_invariants()
        assert not ftree.is_connected_vertex(3)
        assert ftree.expected_flow() == pytest.approx(0.5)

    def test_lollipop_structure(self, lollipop_graph):
        ftree = build_ftree(
            lollipop_graph, lollipop_graph.edge_list(), 0, sampler=exact_sampler()
        )
        ftree.check_invariants()
        bi = [c for c in ftree.components() if not c.is_mono]
        mono = [c for c in ftree.components() if c.is_mono]
        assert len(bi) == 1
        assert bi[0].articulation == 0
        assert len(mono) == 1
        assert mono[0].articulation == 2
        assert mono[0].vertices == {3, 4}

    def test_unknown_query_rejected(self, small_path):
        from repro.exceptions import VertexNotFoundError

        with pytest.raises(VertexNotFoundError):
            build_ftree(small_path, small_path.edge_list(), 999)


class TestBuilderVsIncremental:
    def test_figure3_graph_agreement(self):
        graph = ftree_example_graph()
        order = ftree_example_insertion_order()
        incremental = FTree(graph, QUERY, sampler=exact_sampler())
        for edge in order:
            incremental.insert_edge(edge.u, edge.v)
        built = build_ftree(graph, order, QUERY, sampler=exact_sampler())
        assert incremental.expected_flow() == pytest.approx(built.expected_flow())
        # the partition into bi-connected components must agree exactly
        def bi_partition(ftree):
            return {
                frozenset(component.vertices) | {component.articulation}
                for component in ftree.components()
                if not component.is_mono
            }

        assert bi_partition(incremental) == bi_partition(built)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_graph_agreement(self, seed):
        graph = erdos_renyi_graph(14, average_degree=3.0, seed=seed)
        edges = graph.edge_list()
        # keep at most 16 edges so exact enumeration stays cheap
        edges = edges[:16]
        # build a connectivity-preserving insertion order around vertex 0
        connected = {0}
        order = []
        remaining = list(edges)
        changed = True
        while remaining and changed:
            changed = False
            for edge in list(remaining):
                if edge.u in connected or edge.v in connected:
                    order.append(edge)
                    connected.update(edge.endpoints())
                    remaining.remove(edge)
                    changed = True
        incremental = FTree(graph, 0, sampler=exact_sampler())
        for edge in order:
            incremental.insert_edge(edge.u, edge.v)
        incremental.check_invariants()
        built = build_ftree(graph, order, 0, sampler=exact_sampler())
        built.check_invariants()
        exact = exact_expected_flow(graph, 0, edges=order).expected_flow
        assert incremental.expected_flow() == pytest.approx(exact)
        assert built.expected_flow() == pytest.approx(exact)

    def test_insertion_after_build(self):
        """A built F-tree accepts further incremental insertions."""
        graph = cycle_graph(6, probability=0.5)
        graph.add_vertex(99, weight=2.0)
        graph.add_edge(3, 99, 0.5)
        initial = [Edge(0, 1), Edge(1, 2), Edge(2, 3)]
        ftree = build_ftree(graph, initial, 0, sampler=exact_sampler())
        ftree.insert_edge(3, 99)
        ftree.insert_edge(3, 4)
        ftree.insert_edge(4, 5)
        ftree.insert_edge(5, 0)
        ftree.check_invariants()
        exact = exact_expected_flow(graph, 0).expected_flow
        assert ftree.expected_flow() == pytest.approx(exact)

"""Tests for the digest-keyed world cache (`repro.service.cache`)."""

import pytest

from repro.digest import graph_digest
from repro.graph.generators import erdos_renyi_graph
from repro.service import (
    BatchEvaluator,
    QueryRequest,
    WorldCache,
    get_default_world_cache,
    resolve_cache,
)
from repro.service.cache import WorldKey


def make_key(**overrides) -> WorldKey:
    base = dict(
        graph_digest=1,
        edges_digest=None,
        source_repr="0",
        backend="vectorized",
        seed=7,
        n_samples=100,
        shard_size=None,
    )
    base.update(overrides)
    return WorldKey(**base)


@pytest.fixture
def graph():
    return erdos_renyi_graph(40, average_degree=4, seed=2)


def flow_request(seed=7, n_samples=120, backend=None):
    return QueryRequest(
        kind="expected_flow", source=0, n_samples=n_samples, seed=seed, backend=backend
    )


class TestWorldKey:
    def test_digest_is_stable(self):
        assert make_key().digest == make_key().digest

    def test_every_component_separates_keys(self):
        base = make_key().digest
        assert make_key(graph_digest=2).digest != base
        assert make_key(edges_digest=5).digest != base
        assert make_key(source_repr="1").digest != base
        assert make_key(backend="naive").digest != base
        assert make_key(seed=8).digest != base
        assert make_key(n_samples=200).digest != base
        assert make_key(shard_size=256).digest != base


class TestLRUBehaviour:
    def test_eviction_order_is_least_recently_used(self, graph):
        cache = WorldCache(max_entries=2)
        evaluator = BatchEvaluator(cache=cache)
        requests = [flow_request(seed=s) for s in (1, 2)]
        evaluator.evaluate(graph, requests)
        assert len(cache) == 2

        # touch seed=1 so seed=2 becomes the LRU entry, then add seed=3
        evaluator.evaluate_one(graph, flow_request(seed=1))
        evaluator.evaluate_one(graph, flow_request(seed=3))
        assert len(cache) == 2
        assert cache.evictions == 1
        seeds = [key.seed for key in cache.keys()]
        assert seeds == [1, 3]  # seed=2 was evicted

        # the evicted entry misses, the survivors hit
        before = cache.misses
        evaluator.evaluate_one(graph, flow_request(seed=2))
        assert cache.misses == before + 1

    def test_unbounded_cache_never_evicts(self, graph):
        cache = WorldCache(max_entries=None)
        evaluator = BatchEvaluator(cache=cache)
        for seed in range(5):
            evaluator.evaluate_one(graph, flow_request(seed=seed))
        assert len(cache) == 5
        assert cache.evictions == 0

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            WorldCache(max_entries=0)


class TestKeySeparation:
    def test_seed_and_backend_do_not_cross_hit(self, graph):
        cache = WorldCache()
        evaluator = BatchEvaluator(cache=cache)
        evaluator.evaluate_one(graph, flow_request(seed=1, backend="naive"))
        evaluator.evaluate_one(graph, flow_request(seed=1, backend="vectorized"))
        evaluator.evaluate_one(graph, flow_request(seed=2, backend="vectorized"))
        assert len(cache) == 3
        assert cache.hits == 0
        assert cache.misses == 3

    def test_sharded_and_unsharded_streams_do_not_cross_hit(self, graph):
        from repro.parallel.executor import SerialExecutor

        cache = WorldCache()
        unsharded = BatchEvaluator(cache=cache)
        sharded = BatchEvaluator(cache=cache, executor=SerialExecutor(), shard_size=64)
        unsharded.evaluate_one(graph, flow_request())
        result = sharded.evaluate_one(graph, flow_request())
        assert cache.hits == 0 and len(cache) == 2
        assert not result.from_cache


class TestInvalidation:
    def test_graph_mutation_moves_the_key(self, graph):
        cache = WorldCache()
        evaluator = BatchEvaluator(cache=cache)
        first = evaluator.evaluate_one(graph, flow_request())
        mutated = graph.copy()
        edge = next(iter(mutated.edges()))
        mutated.set_probability(edge.u, edge.v, 0.123)
        second = evaluator.evaluate_one(mutated, flow_request())
        # content addressing: the mutated graph can never hit the stale entry
        assert cache.hits == 0
        assert not second.from_cache
        assert first.flow != second.flow

    def test_invalidate_graph_reclaims_entries(self, graph):
        cache = WorldCache()
        evaluator = BatchEvaluator(cache=cache)
        evaluator.evaluate(graph, [flow_request(seed=1), flow_request(seed=2)])
        assert len(cache) == 2
        dropped = cache.invalidate_graph(graph)
        assert dropped == 2
        assert len(cache) == 0
        assert cache.invalidations == 2
        # and the next evaluation re-samples
        result = evaluator.evaluate_one(graph, flow_request(seed=1))
        assert not result.from_cache

    def test_invalidate_by_pre_mutation_digest(self, graph):
        cache = WorldCache()
        evaluator = BatchEvaluator(cache=cache)
        old_digest = graph_digest(graph)
        evaluator.evaluate_one(graph, flow_request())
        graph.set_weight(0, 5.0)  # mutation moves the digest
        assert cache.invalidate_graph(graph) == 0
        assert cache.invalidate_graph(old_digest) == 1
        assert len(cache) == 0

    def test_clear_resets_counters(self, graph):
        cache = WorldCache()
        evaluator = BatchEvaluator(cache=cache)
        evaluator.evaluate_one(graph, flow_request())
        evaluator.evaluate_one(graph, flow_request())
        assert cache.hits == 1
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses, cache.evictions) == (0, 0, 0)


class TestCachedAnswersEqualFresh:
    def test_cached_equals_freshly_sampled(self, graph):
        cached = BatchEvaluator(cache=WorldCache())
        fresh = BatchEvaluator(cache=0)  # caching disabled
        requests = [
            flow_request(),
            QueryRequest(kind="pair_reachability", source=0, target=9, n_samples=120, seed=7),
        ]
        first = cached.evaluate(graph, requests)
        second = cached.evaluate(graph, requests)  # served from cache
        uncached = fresh.evaluate(graph, requests)
        assert second[0].from_cache and second[1].from_cache
        for a, b, c in zip(first, second, uncached):
            assert a.flow == b.flow == c.flow
            assert a.reachability == b.reachability == c.reachability

    def test_stats_shape(self, graph):
        cache = WorldCache()
        evaluator = BatchEvaluator(cache=cache)
        evaluator.evaluate_one(graph, flow_request())
        stats = cache.stats()
        assert stats["entries"] == 1.0
        assert stats["misses"] == 1.0
        assert stats["cached_worlds"] == 120.0
        assert 0.0 <= stats["hit_rate"] <= 1.0


class TestDefaultCache:
    # (the deprecated set_default_world_cache shim over this store is
    # pinned in tests/test_runtime_deprecations.py)

    def test_default_cache_is_shared_and_restorable(self, graph):
        from repro.runtime import defaults

        replacement = WorldCache(max_entries=4)
        previous = defaults.world_cache
        defaults.world_cache = replacement
        try:
            assert get_default_world_cache() is replacement
            evaluator = BatchEvaluator()  # cache=None -> ambient default
            assert evaluator.cache is replacement
            evaluator.evaluate_one(graph, flow_request())
            assert len(replacement) == 1
        finally:
            defaults.world_cache = previous

    def test_default_cache_is_tracked_lazily(self, graph):
        from repro.runtime import defaults

        # an evaluator built BEFORE the default cache is swapped must
        # follow the swap (and must not pin the old cache alive)
        evaluator = BatchEvaluator()
        replacement = WorldCache(max_entries=4)
        previous = defaults.world_cache
        defaults.world_cache = replacement
        try:
            evaluator.evaluate_one(graph, flow_request())
            assert len(replacement) == 1
        finally:
            defaults.world_cache = previous
        assert evaluator.cache is not replacement

    def test_session_cache_wins_over_the_default(self, graph):
        import repro

        scoped = WorldCache(max_entries=4)
        evaluator = BatchEvaluator()  # cache=None -> ambient default
        with repro.session(world_cache=scoped):
            assert evaluator.cache is scoped
            evaluator.evaluate_one(graph, flow_request())
            assert len(scoped) == 1
        assert evaluator.cache is not scoped

    def test_last_plan_reflects_the_most_recent_call(self, graph):
        evaluator = BatchEvaluator(cache=WorldCache())
        assert evaluator.last_plan is None
        evaluator.evaluate(graph, [flow_request(seed=1), flow_request(seed=2)])
        assert evaluator.last_plan is not None
        assert len(evaluator.last_plan.groups) == 2

    def test_resolve_cache_specs(self):
        assert resolve_cache(0) is None
        sized = resolve_cache(5)
        assert isinstance(sized, WorldCache) and sized.max_entries == 5
        instance = WorldCache()
        assert resolve_cache(instance) is instance
        with pytest.raises(TypeError):
            resolve_cache(True)
        with pytest.raises(ValueError):
            resolve_cache(-1)


class TestConcurrentStats:
    """The statistics surface must stay consistent under contention.

    ``hit_rate`` used to read ``hits`` and ``misses`` in two unlocked
    steps, so a reader interleaving with a writer could see a ratio
    computed from two different moments (e.g. momentarily > 1.0 after a
    hit landed between the two reads).  Both counters are now
    snapshotted under the cache lock.
    """

    def test_hit_rate_snapshot_is_consistent_under_writer_storm(self):
        import threading
        from types import SimpleNamespace

        cache = WorldCache(max_entries=8)
        key = make_key()
        cache.put(key, SimpleNamespace(n_samples=4))
        stop = threading.Event()
        anomalies = []

        def writer():
            miss = make_key(seed=999)
            while not stop.is_set():
                cache.get(key)  # hit
                cache.get(miss)  # miss

        def reader():
            while not stop.is_set():
                rate = cache.hit_rate
                if not (0.0 <= rate <= 1.0):
                    anomalies.append(rate)
                stats = cache.stats()
                total = stats["hits"] + stats["misses"]
                expected = stats["hits"] / total if total else 0.0
                if stats["hit_rate"] != expected:
                    anomalies.append(stats)

        threads = [threading.Thread(target=writer) for _ in range(2)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        import time

        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert anomalies == []

    def test_hit_rate_matches_counters_exactly(self):
        cache = WorldCache(max_entries=4)
        key = make_key()
        assert cache.hit_rate == 0.0
        from types import SimpleNamespace

        cache.get(key)  # miss
        cache.put(key, SimpleNamespace(n_samples=4))
        cache.get(key)  # hit
        cache.get(key)  # hit
        assert cache.hit_rate == pytest.approx(2 / 3)
        assert cache.stats()["hit_rate"] == pytest.approx(2 / 3)

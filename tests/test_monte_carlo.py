"""Tests for Monte-Carlo flow and reachability estimation."""

import pytest

from repro.exceptions import SampleSizeError, VertexNotFoundError
from repro.reachability.exact import exact_expected_flow, exact_reachability
from repro.reachability.monte_carlo import (
    MonteCarloFlowEstimator,
    monte_carlo_component_reachability,
    monte_carlo_expected_flow,
    monte_carlo_reachability,
)
from repro.types import Edge


class TestExpectedFlow:
    def test_converges_to_exact_value(self, triangle_graph):
        exact = exact_expected_flow(triangle_graph, 0).expected_flow
        estimate = monte_carlo_expected_flow(triangle_graph, 0, n_samples=4000, seed=0)
        assert estimate.expected_flow == pytest.approx(exact, abs=0.1)

    def test_restricted_edges(self, triangle_graph):
        estimate = monte_carlo_expected_flow(
            triangle_graph, 0, n_samples=3000, seed=1, edges=[Edge(0, 1)]
        )
        assert estimate.expected_flow == pytest.approx(0.5, abs=0.05)

    def test_include_query_adds_weight(self, triangle_graph):
        with_query = monte_carlo_expected_flow(
            triangle_graph, 0, n_samples=200, seed=2, include_query=True
        )
        without_query = monte_carlo_expected_flow(
            triangle_graph, 0, n_samples=200, seed=2, include_query=False
        )
        assert with_query.expected_flow == pytest.approx(
            without_query.expected_flow + 1.0
        )

    def test_reachability_frequencies_reported(self, triangle_graph):
        estimate = monte_carlo_expected_flow(triangle_graph, 0, n_samples=500, seed=3)
        assert set(estimate.reachability) <= {1, 2}
        assert all(0.0 <= p <= 1.0 for p in estimate.reachability.values())

    def test_no_edges_gives_zero_flow(self, triangle_graph):
        estimate = monte_carlo_expected_flow(triangle_graph, 0, n_samples=50, seed=4, edges=[])
        assert estimate.expected_flow == 0.0
        assert estimate.variance == 0.0

    def test_invalid_sample_size(self, triangle_graph):
        with pytest.raises(SampleSizeError):
            monte_carlo_expected_flow(triangle_graph, 0, n_samples=0)

    def test_unknown_query(self, triangle_graph):
        with pytest.raises(VertexNotFoundError):
            monte_carlo_expected_flow(triangle_graph, 42, n_samples=10)

    def test_reproducibility_with_seed(self, triangle_graph):
        a = monte_carlo_expected_flow(triangle_graph, 0, n_samples=100, seed=9)
        b = monte_carlo_expected_flow(triangle_graph, 0, n_samples=100, seed=9)
        assert a.expected_flow == b.expected_flow

    def test_standard_error_available(self, triangle_graph):
        estimate = monte_carlo_expected_flow(triangle_graph, 0, n_samples=100, seed=5)
        assert estimate.standard_error is not None
        assert estimate.standard_error >= 0.0

    def test_estimator_class_wrapper(self, triangle_graph):
        estimator = MonteCarloFlowEstimator(triangle_graph, 0, n_samples=300, seed=0)
        estimate = estimator.estimate()
        assert estimate.n_samples == 300
        with pytest.raises(SampleSizeError):
            MonteCarloFlowEstimator(triangle_graph, 0, n_samples=-1)


class TestReachability:
    def test_two_terminal_converges(self, triangle_graph):
        exact = exact_reachability(triangle_graph, 0, 2).probability
        estimate = monte_carlo_reachability(triangle_graph, 0, 2, n_samples=4000, seed=0)
        assert estimate.probability == pytest.approx(exact, abs=0.05)

    def test_same_vertex_is_certain(self, triangle_graph):
        estimate = monte_carlo_reachability(triangle_graph, 1, 1, n_samples=10, seed=0)
        assert estimate.probability == 1.0

    def test_unknown_vertices(self, triangle_graph):
        with pytest.raises(VertexNotFoundError):
            monte_carlo_reachability(triangle_graph, 0, 99, n_samples=10)

    def test_component_reachability(self, triangle_graph):
        reach = monte_carlo_component_reachability(
            triangle_graph,
            anchor=0,
            vertices=[1, 2],
            edges=triangle_graph.edge_list(),
            n_samples=4000,
            seed=1,
        )
        exact_1 = exact_reachability(triangle_graph, 0, 1).probability
        assert reach[1] == pytest.approx(exact_1, abs=0.05)
        assert set(reach) == {1, 2}

    def test_component_reachability_invalid_samples(self, triangle_graph):
        with pytest.raises(SampleSizeError):
            monte_carlo_component_reachability(
                triangle_graph, 0, [1], triangle_graph.edge_list(), n_samples=0
            )

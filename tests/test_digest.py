"""Tests for the shared content-digest module (`repro.digest`)."""

from repro.digest import (
    combine_digests,
    content_digest,
    edge_sequence_digest,
    graph_digest,
    query_digest,
    stable_digest,
)
from repro.graph.generators import erdos_renyi_graph
from repro.graph.uncertain_graph import UncertainGraph
from repro.types import Edge


class TestStableDigest:
    def test_deterministic_and_distinct(self):
        assert stable_digest(("a", 1)) == stable_digest(("a", 1))
        assert stable_digest(("a", 1)) != stable_digest(("a", 2))

    def test_128_bit_range(self):
        digest = stable_digest("payload")
        assert 0 <= digest < 2**128

    def test_combine_digests_order_sensitive(self):
        assert combine_digests(1, 2) != combine_digests(2, 1)


class TestContentDigest:
    def test_edge_order_is_canonicalised(self):
        edges_a = [Edge(1, 2), Edge(2, 3)]
        edges_b = [Edge(2, 3), Edge(1, 2)]
        assert content_digest(edges_a, 1) == content_digest(edges_b, 1)

    def test_articulation_and_salts_matter(self):
        edges = [Edge(1, 2)]
        assert content_digest(edges, 1) != content_digest(edges, 2)
        assert content_digest(edges, 1, 7) != content_digest(edges, 1, 8)

    def test_reexported_from_ftree_memo(self):
        # the F-tree memo keys and the world cache share one scheme
        from repro.ftree.memo import content_digest as memo_digest

        assert memo_digest is content_digest


class TestEdgeSequenceDigest:
    def test_none_means_full_graph(self):
        assert edge_sequence_digest(None) is None

    def test_order_sensitive(self):
        # flips are drawn in edge order: same set, different order,
        # different worlds — the digests must not collide
        assert edge_sequence_digest([Edge(1, 2), Edge(2, 3)]) != edge_sequence_digest(
            [Edge(2, 3), Edge(1, 2)]
        )

    def test_same_sequence_same_digest(self):
        assert edge_sequence_digest([Edge(1, 2)]) == edge_sequence_digest([Edge(1, 2)])


class TestGraphDigest:
    def test_content_addressed(self):
        a = erdos_renyi_graph(30, average_degree=3, seed=5)
        b = erdos_renyi_graph(30, average_degree=3, seed=5)
        assert graph_digest(a) == graph_digest(b)

    def test_name_is_ignored(self):
        graph = erdos_renyi_graph(20, average_degree=3, seed=1)
        renamed = graph.copy(name="something-else")
        assert graph_digest(graph) == graph_digest(renamed)

    def test_mutations_move_the_digest(self):
        graph = UncertainGraph.from_edges([(1, 2, 0.5), (2, 3, 0.5)])
        base = graph_digest(graph)

        probability_changed = graph.copy()
        probability_changed.set_probability(1, 2, 0.6)
        assert graph_digest(probability_changed) != base

        weight_changed = graph.copy()
        weight_changed.set_weight(3, 2.0)
        assert graph_digest(weight_changed) != base

        edge_added = graph.copy()
        edge_added.add_edge(1, 3, 0.5)
        assert graph_digest(edge_added) != base

        vertex_added = graph.copy()
        vertex_added.add_vertex(99)
        assert graph_digest(vertex_added) != base

    def test_vertex_insertion_order_is_ignored(self):
        a = UncertainGraph()
        for vertex in (1, 2, 3):
            a.add_vertex(vertex)
        a.add_edge(1, 2, 0.5)
        b = UncertainGraph()
        for vertex in (3, 2, 1):
            b.add_vertex(vertex)
        b.add_edge(1, 2, 0.5)
        assert graph_digest(a) == graph_digest(b)


class TestQueryDigest:
    def test_kind_and_source_matter(self):
        assert query_digest("flow", 1) != query_digest("flow", 2)
        assert query_digest("flow", 1) != query_digest("pair", 1)
        assert query_digest("flow", 1, 100) != query_digest("flow", 1, 200)

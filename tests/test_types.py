"""Tests for repro.types (Edge canonicalisation and helpers)."""

import pytest

from repro.types import Edge, as_edge, as_edges


class TestEdge:
    def test_orientation_is_irrelevant_for_equality(self):
        assert Edge(1, 2) == Edge(2, 1)

    def test_orientation_is_irrelevant_for_hash(self):
        assert hash(Edge(1, 2)) == hash(Edge(2, 1))

    def test_set_membership_is_orientation_insensitive(self):
        assert Edge(2, 1) in {Edge(1, 2)}

    def test_self_loop_is_rejected(self):
        with pytest.raises(ValueError):
            Edge(3, 3)

    def test_other_returns_opposite_endpoint(self):
        edge = Edge(1, 2)
        assert edge.other(1) == 2
        assert edge.other(2) == 1

    def test_other_rejects_non_endpoint(self):
        with pytest.raises(ValueError):
            Edge(1, 2).other(5)

    def test_is_incident_to(self):
        edge = Edge("a", "b")
        assert edge.is_incident_to("a")
        assert edge.is_incident_to("b")
        assert not edge.is_incident_to("c")

    def test_endpoints_returns_canonical_pair(self):
        assert Edge(5, 2).endpoints() == (2, 5)

    def test_iteration_yields_endpoints(self):
        assert set(Edge(7, 3)) == {3, 7}

    def test_string_vertices_are_supported(self):
        assert Edge("z", "a") == Edge("a", "z")

    def test_mixed_type_vertices_are_supported(self):
        edge_a = Edge("x", 1)
        edge_b = Edge(1, "x")
        assert edge_a == edge_b
        assert hash(edge_a) == hash(edge_b)

    def test_edges_are_orderable(self):
        assert sorted([Edge(3, 4), Edge(1, 2)]) == [Edge(1, 2), Edge(3, 4)]


class TestCoercion:
    def test_as_edge_passes_through_edges(self):
        edge = Edge(1, 2)
        assert as_edge(edge) is edge

    def test_as_edge_converts_tuples(self):
        assert as_edge((2, 1)) == Edge(1, 2)

    def test_as_edges_converts_mixed_iterables(self):
        result = as_edges([(1, 2), Edge(3, 4)])
        assert result == [Edge(1, 2), Edge(3, 4)]

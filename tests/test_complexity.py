"""Tests for the Theorem-1 knapsack reduction."""

import pytest

from repro.complexity import (
    REDUCTION_QUERY,
    KnapsackInstance,
    KnapsackItem,
    knapsack_to_maxflow,
    selection_to_items,
    solve_knapsack_dynamic_programming,
    solve_knapsack_via_maxflow,
)
from repro.graph.validation import validate_graph
from repro.types import Edge


@pytest.fixture
def paper_instance() -> KnapsackInstance:
    """The instance of Figure 2: items (w=2, v=4), (w=4, v=3), (w=1, v=2), W=5."""
    return KnapsackInstance.from_tuples(
        [("i1", 2, 4.0), ("i2", 4, 3.0), ("i3", 1, 2.0)], capacity=5
    )


class TestInstanceValidation:
    def test_invalid_item_weight(self):
        with pytest.raises(ValueError):
            KnapsackItem("x", 0, 1.0)

    def test_invalid_item_value(self):
        with pytest.raises(ValueError):
            KnapsackItem("x", 1, -1.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            KnapsackInstance((), capacity=-1)


class TestReductionGraph:
    def test_gadget_structure(self, paper_instance):
        graph, budget = knapsack_to_maxflow(paper_instance)
        validate_graph(graph)
        assert budget == 5
        # one chain vertex per unit of weight, plus the query vertex
        assert graph.n_vertices == 1 + 2 + 4 + 1
        assert graph.n_edges == 2 + 4 + 1
        # only terminal vertices carry value
        assert graph.weight("i1/2") == 4.0
        assert graph.weight("i1/1") == 0.0
        assert graph.weight("i3/1") == 2.0
        # all edges are certain
        assert all(graph.probability(e) == 1.0 for e in graph.edges())

    def test_selection_decoding(self, paper_instance):
        graph, _ = knapsack_to_maxflow(paper_instance)
        # select the full chain of i1 and of i3
        edges = [Edge(REDUCTION_QUERY, "i1/1"), Edge("i1/1", "i1/2"), Edge(REDUCTION_QUERY, "i3/1")]
        packed = selection_to_items(paper_instance, edges)
        assert {item.name for item in packed} == {"i1", "i3"}

    def test_partial_chain_does_not_pack_the_item(self, paper_instance):
        edges = [Edge(REDUCTION_QUERY, "i2/1"), Edge("i2/1", "i2/2")]
        packed = selection_to_items(paper_instance, edges)
        assert packed == []


class TestReductionSolvesKnapsack:
    def test_paper_instance(self, paper_instance):
        """Figure 2: the optimum packs i1 and i3 (value 6) within capacity 5."""
        packed, value = solve_knapsack_via_maxflow(paper_instance)
        assert {item.name for item in packed} == {"i1", "i3"}
        assert value == pytest.approx(6.0)

    def test_agrees_with_dynamic_programming(self, paper_instance):
        _, via_maxflow = solve_knapsack_via_maxflow(paper_instance)
        _, via_dp = solve_knapsack_dynamic_programming(paper_instance)
        assert via_maxflow == pytest.approx(via_dp)

    @pytest.mark.parametrize(
        "items,capacity",
        [
            ([("a", 1, 1.0), ("b", 2, 3.0), ("c", 3, 4.0)], 4),
            ([("a", 2, 5.0), ("b", 2, 5.0), ("c", 2, 5.0)], 3),
            ([("a", 1, 0.0), ("b", 1, 2.0)], 1),
            ([("a", 3, 7.0)], 2),
        ],
    )
    def test_random_small_instances(self, items, capacity):
        instance = KnapsackInstance.from_tuples(items, capacity)
        _, via_maxflow = solve_knapsack_via_maxflow(instance)
        _, via_dp = solve_knapsack_dynamic_programming(instance)
        assert via_maxflow == pytest.approx(via_dp)

    def test_zero_capacity(self):
        instance = KnapsackInstance.from_tuples([("a", 1, 5.0)], 0)
        packed, value = solve_knapsack_via_maxflow(instance)
        assert packed == []
        assert value == 0.0

"""The distributed tier: wire codecs, hash ring, executor, cache ring.

The load-bearing assertions are bit-for-bit: everything a shard result
is a function of must round-trip the wire exactly (arrays, seeds,
problems), and a loopback fleet must reproduce
:class:`~repro.parallel.SerialExecutor`'s arrays byte for byte on both
the reachability and the raw-flip paths.  Fault injection lives in
``test_distributed_robustness.py``.
"""

import numpy as np
import pytest

import repro
from repro.distributed import HashRing, RemoteExecutor, local_fleet
from repro.distributed import wire
from repro.digest import stable_digest
from repro.distributed.cache import RING_SPACE
from repro.exceptions import (
    DistributedError,
    ExecutorError,
    NoWorkersError,
    WireFormatError,
)
from repro.parallel import SerialExecutor, ShardTask, make_executor, parse_remote_spec
from repro.reachability.backends import make_backend
from repro.reachability.backends.base import SamplingProblem
from repro.reachability.engine import FlipBatch, WorldBatch
from repro.rng import split_seed_sequences
from repro.service.cache import WorldKey
from repro.types import Edge


def _problem(n_edges: int = 6) -> SamplingProblem:
    edges = [(Edge(i, i + 1), 0.25 + 0.5 * (i % 2)) for i in range(n_edges)]
    return SamplingProblem.from_edges(edges, source=0)


def _tasks(n_shards: int, seed: int = 3, n_samples: int = 16, backend=None):
    problem = _problem()
    return [
        ShardTask(problem=problem, n_samples=n_samples, seed=child, backend=backend)
        for child in split_seed_sequences(seed, n_shards)
    ]


@pytest.fixture(scope="module")
def fleet():
    """One two-worker loopback fleet shared by the module's fast tests."""
    with local_fleet(2) as running:
        yield running


class TestWireCodecs:
    @pytest.mark.parametrize(
        "array",
        [
            np.zeros((0, 4), dtype=bool),
            np.random.default_rng(0).random((7, 5)) < 0.4,
            np.arange(12, dtype=np.int64).reshape(3, 4),
            np.linspace(0.0, 1.0, 9),
        ],
        ids=["empty-bool", "bool-matrix", "int64", "float64"],
    )
    def test_array_roundtrip_is_exact(self, array):
        decoded = wire.decode_array(wire.encode_array(array))
        assert decoded.dtype == array.dtype
        assert decoded.shape == array.shape
        assert np.array_equal(decoded, array)

    def test_array_payload_garbage_is_typed(self):
        with pytest.raises(WireFormatError):
            wire.decode_array("not base64!!")

    @pytest.mark.parametrize("entropy", [7, None, 2**80 + 17])
    def test_seed_sequence_roundtrip_reproduces_stream(self, entropy):
        seed = np.random.SeedSequence(entropy).spawn(3)[2]
        decoded = wire.decode_seed_sequence(wire.encode_seed_sequence(seed))
        ours = np.random.default_rng(seed).random(16)
        theirs = np.random.default_rng(decoded).random(16)
        assert np.array_equal(ours, theirs)

    def test_problem_roundtrip_and_stable_digest(self):
        problem = _problem()
        decoded = wire.decode_problem(wire.encode_problem(problem))
        assert decoded.vertex_ids == problem.vertex_ids
        assert np.array_equal(decoded.edge_u, problem.edge_u)
        assert np.array_equal(decoded.edge_v, problem.edge_v)
        assert np.array_equal(decoded.probabilities, problem.probabilities)
        assert decoded.source == problem.source
        assert wire.problem_digest(decoded) == wire.problem_digest(problem)

    def test_problem_digest_distinguishes_content(self):
        base = _problem()
        other = SamplingProblem(
            vertex_ids=base.vertex_ids,
            edge_u=base.edge_u,
            edge_v=base.edge_v,
            probabilities=base.probabilities * 0.5,
            source=base.source,
        )
        assert wire.problem_digest(base) != wire.problem_digest(other)

    def test_world_and_flip_batches_roundtrip(self):
        problem = _problem()
        reached = np.random.default_rng(1).random((8, problem.n_vertices)) < 0.5
        flips = np.random.default_rng(2).random((8, problem.n_edges)) < 0.5
        world = wire.decode_world_batch(wire.encode_world_batch(WorldBatch(problem, reached)))
        flip = wire.decode_flip_batch(wire.encode_flip_batch(FlipBatch(problem, flips)))
        assert np.array_equal(world.reached, reached)
        assert np.array_equal(flip.flips, flips)

    def test_unnamed_backend_cannot_cross_the_wire(self):
        class Anonymous:
            def sample_reachability(self, problem, n_samples, rng):  # pragma: no cover
                raise AssertionError

        with pytest.raises(WireFormatError, match="registry name"):
            wire.encode_backend(Anonymous())

    def test_named_backend_crosses_as_its_name(self):
        assert wire.encode_backend(make_backend("naive")) == "naive"
        assert wire.encode_backend(None) is None


class TestHashRing:
    def test_empty_ring_owns_nothing(self):
        assert HashRing().node_for(12345) is None

    def test_ownership_is_stable_and_total(self):
        ring = HashRing(replicas=16)
        for index in range(3):
            ring.add(index, f"node-{index}")
        keys = [stable_digest(("ring-test-key", k)) for k in range(200)]
        assert all(0 <= key < RING_SPACE for key in keys)
        first = [ring.node_for(key) for key in keys]
        second = [ring.node_for(key) for key in keys]
        assert first == second
        assert all(owner is not None for owner in first)
        assert len(set(first)) == 3  # every node owns some arc

    def test_removal_remaps_only_the_removed_nodes_keys(self):
        ring = HashRing(replicas=32)
        for index in range(4):
            ring.add(index, f"node-{index}")
        keys = list(range(0, 500))
        before = {key: ring.node_for(key) for key in keys}
        ring.remove(2)
        after = {key: ring.node_for(key) for key in keys}
        moved = [key for key in keys if before[key] != after[key]]
        # every moved key belonged to the removed node; nothing else moved
        assert all(before[key] == "node-2" for key in moved)
        assert all(after[key] != "node-2" for key in keys)

    def test_add_is_idempotent(self):
        ring = HashRing(replicas=8)
        ring.add("a", 1)
        points = len(ring._points)
        ring.add("a", 2)  # refresh the node object, no new points
        assert len(ring._points) == points
        assert ring.node_for(0) in (1, 2)
        assert len(ring) == 1


class TestRemoteSpecs:
    def test_parse_remote_spec(self):
        assert parse_remote_spec("remote:127.0.0.1:7500") == ("127.0.0.1", 7500)
        assert parse_remote_spec("remote:host.example:0") == ("host.example", 0)

    @pytest.mark.parametrize(
        "spec",
        ["remote:", "remote:justhost", "remote::7500", "remote:h:port", "remote:h:99999"],
    )
    def test_bad_specs_are_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_remote_spec(spec)

    def test_make_executor_builds_a_coordinator(self):
        executor = make_executor("remote:127.0.0.1:0")
        try:
            assert isinstance(executor, RemoteExecutor)
            assert executor.address[1] > 0  # ephemeral port resolved
            assert executor.workers == 1  # empty fleet floors at 1
        finally:
            executor.close()
        assert executor.closed is True

    def test_runtime_config_validates_remote_specs(self):
        config = repro.RuntimeConfig(workers="remote:127.0.0.1:0")
        assert config.as_dict()["workers"] == "remote:127.0.0.1:0"
        with pytest.raises(ValueError):
            repro.RuntimeConfig(workers="remote:missing-a-port")
        with pytest.raises(ValueError):
            repro.RuntimeConfig(workers="not-a-spec")


class TestRemoteExecutor:
    def test_empty_task_list(self, fleet):
        assert fleet.executor.map_shards([]) == []

    def test_backend_shards_match_serial_bit_for_bit(self, fleet):
        tasks = _tasks(6, backend=make_backend("vectorized"))
        serial = SerialExecutor().map_shards(tasks)
        remote = fleet.executor.map_shards(tasks)
        assert len(remote) == len(serial)
        for ours, theirs in zip(remote, serial):
            assert ours.dtype == theirs.dtype
            assert np.array_equal(ours, theirs)

    def test_flip_shards_match_serial_bit_for_bit(self, fleet):
        tasks = _tasks(5, seed=11, backend=None)
        serial = SerialExecutor().map_shards(tasks)
        remote = fleet.executor.map_shards(tasks)
        for ours, theirs in zip(remote, serial):
            assert np.array_equal(ours, theirs)

    def test_naive_and_csr_backends_agree_remotely(self, fleet):
        for backend_name in ("naive", "csr"):
            tasks = _tasks(3, seed=5, backend=make_backend(backend_name))
            serial = SerialExecutor().map_shards(tasks)
            remote = fleet.executor.map_shards(tasks)
            for ours, theirs in zip(remote, serial):
                assert np.array_equal(ours, theirs)

    def test_workers_property_tracks_fleet(self, fleet):
        assert fleet.executor.workers == 2
        assert sorted(fleet.executor.worker_names()) == sorted(fleet.executor.worker_names())

    def test_closed_executor_rejects_work(self):
        executor = RemoteExecutor(port=0)
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.map_shards(_tasks(1))

    def test_no_workers_raises_typed_error(self):
        with RemoteExecutor(port=0, worker_wait_timeout=0.2) as executor:
            with pytest.raises(NoWorkersError) as excinfo:
                executor.map_shards(_tasks(2))
        assert isinstance(excinfo.value, DistributedError)
        assert isinstance(excinfo.value, ExecutorError)
        assert "repro-flow worker --connect" in str(excinfo.value)

    def test_session_owns_and_closes_a_spec_built_coordinator(self):
        with repro.session(workers="remote:127.0.0.1:0") as s:
            executor = s._executor
            assert isinstance(executor, RemoteExecutor)
        assert executor.closed is True


class TestRingWorldCache:
    def _key(self, seed: int = 7) -> WorldKey:
        return WorldKey(
            graph_digest=4242,
            edges_digest=None,
            source_repr="0",
            backend="vectorized",
            seed=seed,
            n_samples=8,
            shard_size=None,
        )

    def _batch(self) -> WorldBatch:
        problem = _problem()
        reached = np.random.default_rng(3).random((8, problem.n_vertices)) < 0.5
        return WorldBatch(problem=problem, reached=reached)

    def _await_remote(self, cache, key, attempts: int = 50):
        """cache_put is fire-and-forget; poll until the entry lands."""
        import time

        for _ in range(attempts):
            batch = cache.get(key)
            if batch is not None:
                return batch
            time.sleep(0.05)
        return None

    def test_put_get_roundtrip_is_bit_identical(self, fleet):
        cache = fleet.executor.world_cache()
        key, batch = self._key(), self._batch()
        assert cache.get(key) is None
        cache.put(key, batch)
        fetched = self._await_remote(cache, key)
        assert fetched is not None
        assert np.array_equal(fetched.reached, batch.reached)
        assert fetched.problem.vertex_ids == batch.problem.vertex_ids
        assert cache.hits >= 1
        assert len(cache) == 0  # the entry lives on a worker, not locally

    def test_invalidate_graph_fans_out(self, fleet):
        import time

        cache = fleet.executor.world_cache()
        key, batch = self._key(seed=8), self._batch()
        cache.put(key, batch)
        assert self._await_remote(cache, key) is not None
        cache.invalidate_graph(key.graph_digest)
        time.sleep(0.3)  # fan-out is fire-and-forget
        assert cache.get(key) is None

    def test_local_fallback_without_workers(self):
        with RemoteExecutor(port=0) as executor:
            cache = executor.world_cache()
            key, batch = self._key(seed=9), self._batch()
            cache.put(key, batch)
            assert len(cache) == 1  # stored locally: the ring is empty
            fetched = cache.get(key)
            assert fetched is not None
            assert np.array_equal(fetched.reached, batch.reached)

    def test_is_a_world_cache_everywhere(self, fleet):
        from repro.service.cache import WorldCache, resolve_cache

        cache = fleet.executor.world_cache()
        assert isinstance(cache, WorldCache)
        assert resolve_cache(cache) is cache
        stats = cache.stats()
        assert {"hits", "misses", "entries"} <= set(stats)

"""Tests for Dijkstra, most probable paths and the spanning-tree baseline."""

import math

import networkx as nx
import pytest

from repro.algorithms.shortest_path import (
    dijkstra,
    most_probable_path,
    most_probable_paths,
    probability_cost,
)
from repro.algorithms.spanning import dijkstra_spanning_edges, maximum_probability_spanning_tree
from repro.exceptions import VertexNotFoundError
from repro.graph.generators import erdos_renyi_graph, path_graph
from repro.graph.uncertain_graph import UncertainGraph
from repro.types import Edge


@pytest.fixture
def diamond() -> UncertainGraph:
    """Two parallel routes from 0 to 3: 0-1-3 (0.9*0.9) and 0-2-3 (0.5*0.5)."""
    graph = UncertainGraph()
    for v in range(4):
        graph.add_vertex(v)
    graph.add_edge(0, 1, 0.9)
    graph.add_edge(1, 3, 0.9)
    graph.add_edge(0, 2, 0.5)
    graph.add_edge(2, 3, 0.5)
    return graph


class TestDijkstra:
    def test_distances_on_path(self, small_path):
        result = dijkstra(small_path, 0)
        expected = -math.log(0.5)
        assert result.distance[1] == pytest.approx(expected)
        assert result.distance[3] == pytest.approx(3 * expected)

    def test_path_reconstruction(self, diamond):
        result = dijkstra(diamond, 0)
        assert result.path_to(3) == [0, 1, 3]
        assert result.path_to(0) == [0]

    def test_unreachable_vertex(self):
        graph = path_graph(3)
        graph.add_vertex(9)
        result = dijkstra(graph, 0)
        assert 9 not in result.distance
        assert result.path_to(9) is None

    def test_settle_order_is_nondecreasing(self, random_graph):
        result = dijkstra(random_graph, 0)
        distances = [result.distance[v] for v in result.settle_order]
        assert distances == sorted(distances)

    def test_custom_costs(self, diamond):
        cost = {edge: 1.0 for edge in diamond.edges()}
        result = dijkstra(diamond, 0, cost=cost)
        assert result.distance[3] == pytest.approx(2.0)

    def test_negative_cost_rejected(self, diamond):
        cost = {edge: -1.0 for edge in diamond.edges()}
        with pytest.raises(ValueError):
            dijkstra(diamond, 0, cost=cost)

    def test_missing_source(self, diamond):
        with pytest.raises(VertexNotFoundError):
            dijkstra(diamond, 77)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_against_networkx(self, seed):
        graph = erdos_renyi_graph(50, average_degree=4, seed=seed)
        nx_graph = nx.Graph()
        for edge in graph.edges():
            nx_graph.add_edge(edge.u, edge.v, weight=probability_cost(graph.probability(edge)))
        ours = dijkstra(graph, 0).distance
        theirs = nx.single_source_dijkstra_path_length(nx_graph, 0)
        assert set(ours) == set(theirs) | {0}
        for vertex, distance in theirs.items():
            assert ours[vertex] == pytest.approx(distance)


class TestMostProbablePaths:
    def test_probability_cost_bounds(self):
        assert probability_cost(1.0) == 0.0
        with pytest.raises(ValueError):
            probability_cost(0.0)
        with pytest.raises(ValueError):
            probability_cost(1.5)

    def test_most_probable_path_prefers_reliable_route(self, diamond):
        path, probability = most_probable_path(diamond, 0, 3)
        assert path == [0, 1, 3]
        assert probability == pytest.approx(0.81)

    def test_most_probable_paths_all_vertices(self, diamond):
        probabilities = most_probable_paths(diamond, 0)
        assert probabilities[0] == pytest.approx(1.0)
        assert probabilities[1] == pytest.approx(0.9)
        assert probabilities[3] == pytest.approx(0.81)

    def test_disconnected_pair(self):
        graph = path_graph(3)
        graph.add_vertex(9)
        path, probability = most_probable_path(graph, 0, 9)
        assert path is None
        assert probability == 0.0


class TestSpanningTree:
    def test_spanning_edges_form_a_tree(self, random_graph):
        edges = dijkstra_spanning_edges(random_graph, 0)
        assert len(edges) == random_graph.n_vertices - 1
        assert len(set(edges)) == len(edges)

    def test_limit_is_respected(self, random_graph):
        edges = dijkstra_spanning_edges(random_graph, 0, limit=5)
        assert len(edges) == 5

    def test_edges_are_added_in_settle_order(self, diamond):
        edges = dijkstra_spanning_edges(diamond, 0)
        assert edges[0] == Edge(0, 1)

    def test_maximum_probability_spanning_tree_graph(self, random_graph):
        tree = maximum_probability_spanning_tree(random_graph, 0)
        assert tree.n_edges == random_graph.n_vertices - 1
        assert tree.n_vertices == random_graph.n_vertices

"""Tests for the component sampler (local Monte-Carlo with exact fallback)."""

import pytest

from repro.exceptions import SampleSizeError
from repro.ftree.memo import MemoCache
from repro.ftree.sampler import ComponentSampler
from repro.graph.generators import cycle_graph
from repro.reachability.exact import exact_reachability_all
from repro.types import Edge


class TestExactPath:
    def test_small_component_is_exact(self, triangle_graph):
        sampler = ComponentSampler(n_samples=5, exact_threshold=10, seed=0)
        estimate = sampler.reachability(
            triangle_graph, 0, [1, 2], triangle_graph.edge_list()
        )
        exact = exact_reachability_all(triangle_graph, 0)
        assert estimate.exact
        assert estimate.probabilities[1] == pytest.approx(exact[1])
        assert estimate.probabilities[2] == pytest.approx(exact[2])
        assert sampler.exact_components == 1
        assert sampler.sampled_components == 0

    def test_isolated_articulation(self, triangle_graph):
        sampler = ComponentSampler(n_samples=5, exact_threshold=10, seed=0)
        # component that does not actually touch the articulation vertex
        estimate = sampler.reachability(triangle_graph, "phantom", [1, 2], [Edge(1, 2)])
        assert estimate.probabilities == {1: 0.0, 2: 0.0}


class TestSampledPath:
    def test_large_component_is_sampled(self):
        graph = cycle_graph(8, probability=0.5)
        sampler = ComponentSampler(n_samples=2000, exact_threshold=3, seed=1)
        estimate = sampler.reachability(
            graph, 0, [v for v in graph.vertices() if v != 0], graph.edge_list()
        )
        assert not estimate.exact
        assert estimate.n_samples == 2000
        exact = exact_reachability_all(graph, 0)
        for vertex, probability in exact.items():
            if vertex == 0:
                continue
            assert estimate.probabilities[vertex] == pytest.approx(probability, abs=0.06)
        assert sampler.sampled_components == 1
        assert sampler.sampled_edges == graph.n_edges

    def test_exact_threshold_zero_forces_sampling(self, triangle_graph):
        sampler = ComponentSampler(n_samples=500, exact_threshold=0, seed=2)
        estimate = sampler.reachability(
            triangle_graph, 0, [1, 2], triangle_graph.edge_list()
        )
        assert not estimate.exact

    def test_invalid_parameters(self):
        with pytest.raises(SampleSizeError):
            ComponentSampler(n_samples=0)
        with pytest.raises(ValueError):
            ComponentSampler(exact_threshold=-1)


class TestMemoization:
    def test_second_lookup_hits_cache(self, triangle_graph):
        memo = MemoCache()
        sampler = ComponentSampler(n_samples=10, exact_threshold=10, seed=0, memo=memo)
        first = sampler.reachability(triangle_graph, 0, [1, 2], triangle_graph.edge_list())
        second = sampler.reachability(triangle_graph, 0, [1, 2], triangle_graph.edge_list())
        assert not first.from_cache
        assert second.from_cache
        assert memo.hits == 1

    def test_estimation_cost_zero_when_memoized(self, triangle_graph):
        memo = MemoCache()
        sampler = ComponentSampler(n_samples=10, exact_threshold=10, seed=0, memo=memo)
        edges = triangle_graph.edge_list()
        assert sampler.estimation_cost(edges, 0) == len(edges)
        sampler.reachability(triangle_graph, 0, [1, 2], edges)
        assert sampler.estimation_cost(edges, 0) == 0

    def test_no_memo_cost_is_edge_count(self, triangle_graph):
        sampler = ComponentSampler(n_samples=10, exact_threshold=10, seed=0)
        assert sampler.estimation_cost(triangle_graph.edge_list(), 0) == 3

    def test_different_articulation_is_different_key(self, triangle_graph):
        memo = MemoCache()
        sampler = ComponentSampler(n_samples=10, exact_threshold=10, seed=0, memo=memo)
        edges = triangle_graph.edge_list()
        sampler.reachability(triangle_graph, 0, [1, 2], edges)
        estimate = sampler.reachability(triangle_graph, 1, [0, 2], edges)
        assert not estimate.from_cache

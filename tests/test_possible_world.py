"""Tests for possible-world semantics."""

import pytest

from repro.exceptions import ExactEnumerationError, VertexNotFoundError
from repro.graph.possible_world import (
    PossibleWorld,
    enumerate_worlds,
    sample_world,
    sample_worlds,
    world_probability,
)
from repro.graph.uncertain_graph import UncertainGraph
from repro.types import Edge


class TestPossibleWorld:
    def test_reachability_within_world(self, small_path):
        world = PossibleWorld(small_path.vertices(), [Edge(0, 1), Edge(1, 2)])
        assert world.is_reachable(0, 2)
        assert not world.is_reachable(0, 3)
        assert world.reachable_from(0) == {0, 1, 2}

    def test_self_reachability(self, small_path):
        world = PossibleWorld(small_path.vertices(), [])
        assert world.is_reachable(2, 2)

    def test_flow_to_excludes_query_by_default(self, small_path):
        world = PossibleWorld(small_path.vertices(), [Edge(0, 1)])
        weights = small_path.weights()
        assert world.flow_to(0, weights) == 1.0
        assert world.flow_to(0, weights, include_query=True) == 2.0

    def test_add_edge_requires_vertices(self):
        world = PossibleWorld([0, 1], [])
        with pytest.raises(VertexNotFoundError):
            world.add_edge(Edge(0, 5))

    def test_unknown_vertex_queries_raise(self):
        world = PossibleWorld([0, 1], [])
        with pytest.raises(VertexNotFoundError):
            world.reachable_from(7)
        with pytest.raises(VertexNotFoundError):
            world.neighbors(7)

    def test_has_edge_and_counts(self):
        world = PossibleWorld([0, 1, 2], [Edge(0, 1)])
        assert world.has_edge(0, 1)
        assert not world.has_edge(1, 2)
        assert world.n_edges == 1


class TestEnumeration:
    def test_world_probabilities_sum_to_one(self, triangle_graph):
        total = sum(probability for _, probability in enumerate_worlds(triangle_graph))
        assert total == pytest.approx(1.0)

    def test_number_of_worlds(self, triangle_graph):
        worlds = list(enumerate_worlds(triangle_graph))
        assert len(worlds) == 2 ** 3

    def test_certain_edges_do_not_multiply_the_space(self, triangle_graph):
        triangle_graph.set_probability(0, 1, 1.0)
        worlds = list(enumerate_worlds(triangle_graph))
        assert len(worlds) == 2 ** 2
        assert all(world.has_edge(0, 1) for world, _ in worlds)

    def test_world_probability_matches_equation_1(self, triangle_graph):
        for world, probability in enumerate_worlds(triangle_graph):
            assert world_probability(triangle_graph, world) == pytest.approx(probability)

    def test_limit_is_enforced(self):
        graph = UncertainGraph()
        for v in range(30):
            graph.add_vertex(v)
        for v in range(29):
            graph.add_edge(v, v + 1, 0.5)
        with pytest.raises(ExactEnumerationError):
            list(enumerate_worlds(graph, limit=10))

    def test_empty_graph_has_single_world(self):
        graph = UncertainGraph()
        graph.add_vertex(0)
        worlds = list(enumerate_worlds(graph))
        assert len(worlds) == 1
        assert worlds[0][1] == pytest.approx(1.0)


class TestSampling:
    def test_sample_world_is_reproducible(self, triangle_graph):
        a = sample_world(triangle_graph, seed=5)
        b = sample_world(triangle_graph, seed=5)
        assert a.edges() == b.edges()

    def test_sample_worlds_count(self, triangle_graph):
        worlds = list(sample_worlds(triangle_graph, 7, seed=1))
        assert len(worlds) == 7

    def test_sampled_edge_frequency_is_close_to_probability(self, triangle_graph):
        n = 3000
        count = sum(
            1 for world in sample_worlds(triangle_graph, n, seed=3) if world.has_edge(0, 1)
        )
        assert count / n == pytest.approx(0.5, abs=0.05)

"""Property-based cross-backend tests for the possible-world sampling engine.

The vectorized backend is pinned against two references on random small
graphs from :mod:`repro.graph.generators`:

* the naive (per-world BFS) backend — *bit-for-bit* for the same seed,
  because both backends share one random-stream contract and the engine
  aggregates their identical world batches identically;
* :func:`repro.graph.possible_world.enumerate_worlds` ground truth (via
  the exact estimators) — within a CLT tolerance, because a Monte-Carlo
  average over ``n`` worlds deviates from the true expectation by a few
  standard errors at most.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.generators import erdos_renyi_graph
from repro.reachability.backends import BACKEND_NAMES, make_backend
from repro.reachability.backends.csr import CSRSamplingBackend, numba_unavailable_reason
from repro.reachability.engine import SamplingEngine
from repro.reachability.exact import (
    exact_expected_flow,
    exact_reachability,
    exact_reachability_all,
)
from repro.reachability.monte_carlo import (
    monte_carlo_component_reachability,
    monte_carlo_expected_flow,
    monte_carlo_reachability,
)

#: Shared hypothesis settings: deterministic examples, no deadline (the
#: CLT comparisons enumerate up to 2^10 possible worlds per example).
PROPERTY_SETTINGS = dict(max_examples=20, deadline=None, derandomize=True)

#: Sigma multiplier for CLT tolerances; 6 standard errors plus a small
#: absolute floor keeps the statistical assertions flake-free while still
#: catching any systematic bias.
SIGMA = 6.0
FLOOR = 0.05

small_graphs = st.builds(
    erdos_renyi_graph,
    n_vertices=st.integers(min_value=3, max_value=8),
    average_degree=st.floats(min_value=1.0, max_value=2.5),
    seed=st.integers(min_value=0, max_value=10_000),
)


def _query(graph):
    """A deterministic query vertex: vertex 0 always exists in generators."""
    return 0


# ----------------------------------------------------------------------
# backend-vs-backend: exact agreement for the same seed
# ----------------------------------------------------------------------
@settings(**PROPERTY_SETTINGS)
@given(graph=small_graphs, seed=st.integers(min_value=0, max_value=10_000))
def test_flow_estimates_bitwise_equal_across_backends(graph, seed):
    naive = monte_carlo_expected_flow(graph, _query(graph), n_samples=64, seed=seed, backend="naive")
    fast = monte_carlo_expected_flow(
        graph, _query(graph), n_samples=64, seed=seed, backend="vectorized"
    )
    assert naive.expected_flow == fast.expected_flow
    assert naive.reachability == fast.reachability
    assert naive.variance == fast.variance
    assert naive.n_samples == fast.n_samples


@settings(**PROPERTY_SETTINGS)
@given(graph=small_graphs, seed=st.integers(min_value=0, max_value=10_000))
def test_world_batches_identical_across_backends(graph, seed):
    """The per-world reachability matrices themselves must match exactly."""
    batches = [
        SamplingEngine(name).sample_worlds(graph, _query(graph), n_samples=32, seed=seed)
        for name in BACKEND_NAMES
    ]
    reference = batches[0]
    for batch in batches[1:]:
        assert batch.problem.vertex_ids == reference.problem.vertex_ids
        assert np.array_equal(batch.reached, reference.reached)


@settings(**PROPERTY_SETTINGS)
@given(
    graph=small_graphs,
    seed=st.integers(min_value=0, max_value=10_000),
    keep=st.integers(min_value=0, max_value=100),
)
def test_restricted_edge_sets_agree_across_backends(graph, seed, keep):
    """Candidate-subgraph restriction (the selection hot path) stays pinned."""
    edges = graph.edge_list()[: keep % (graph.n_edges + 1)]
    naive = monte_carlo_expected_flow(
        graph, _query(graph), n_samples=48, seed=seed, edges=edges, backend="naive"
    )
    fast = monte_carlo_expected_flow(
        graph, _query(graph), n_samples=48, seed=seed, edges=edges, backend="vectorized"
    )
    assert naive.expected_flow == fast.expected_flow
    assert naive.reachability == fast.reachability


@settings(**PROPERTY_SETTINGS)
@given(graph=small_graphs, seed_a=st.integers(0, 10_000), seed_b=st.integers(0, 10_000))
def test_backends_agree_within_clt_for_independent_seeds(graph, seed_a, seed_b):
    """Two independent streams must still estimate the same quantity."""
    naive = monte_carlo_expected_flow(
        graph, _query(graph), n_samples=1200, seed=seed_a, backend="naive"
    )
    fast = monte_carlo_expected_flow(
        graph, _query(graph), n_samples=1200, seed=seed_b, backend="vectorized"
    )
    tolerance = SIGMA * ((naive.standard_error or 0.0) + (fast.standard_error or 0.0)) + FLOOR
    assert naive.expected_flow == pytest.approx(fast.expected_flow, abs=tolerance)


# ----------------------------------------------------------------------
# backend-vs-enumeration: CLT agreement with exact ground truth
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKEND_NAMES)
@settings(max_examples=10, deadline=None, derandomize=True)
@given(graph=small_graphs, seed=st.integers(min_value=0, max_value=10_000))
def test_expected_flow_matches_enumeration(backend, graph, seed):
    exact = exact_expected_flow(graph, _query(graph)).expected_flow
    estimate = monte_carlo_expected_flow(
        graph, _query(graph), n_samples=1500, seed=seed, backend=backend
    )
    tolerance = SIGMA * (estimate.standard_error or 0.0) + FLOOR
    assert estimate.expected_flow == pytest.approx(exact, abs=tolerance)


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@settings(max_examples=10, deadline=None, derandomize=True)
@given(graph=small_graphs, seed=st.integers(min_value=0, max_value=10_000))
def test_pair_reachability_matches_enumeration(backend, graph, seed):
    target = graph.n_vertices - 1
    exact = exact_reachability(graph, _query(graph), target).probability
    estimate = monte_carlo_reachability(
        graph, _query(graph), target, n_samples=1500, seed=seed, backend=backend
    )
    standard_error = (exact * (1.0 - exact) / estimate.n_samples) ** 0.5
    assert estimate.probability == pytest.approx(exact, abs=SIGMA * standard_error + FLOOR)


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@settings(max_examples=10, deadline=None, derandomize=True)
@given(graph=small_graphs, seed=st.integers(min_value=0, max_value=10_000))
def test_component_reachability_matches_enumeration(backend, graph, seed):
    anchor = _query(graph)
    vertices = list(graph.vertices())
    estimate = monte_carlo_component_reachability(
        graph, anchor, vertices, graph.edge_list(), n_samples=1500, seed=seed, backend=backend
    )
    exact = exact_reachability_all(graph, anchor)
    for vertex, probability in estimate.items():
        truth = exact.get(vertex, 0.0)
        standard_error = (truth * (1.0 - truth) / 1500) ** 0.5
        assert probability == pytest.approx(truth, abs=SIGMA * standard_error + FLOOR)


# ----------------------------------------------------------------------
# csr backend: the propagate primitive (including the CRN incremental
# path via base_reached) is pinned bit-for-bit against the naive BFS
# ----------------------------------------------------------------------
NUMBA_REASON = numba_unavailable_reason()


def _csr_propagate_against_naive(csr_backend, graph, seed, split):
    """Shared body: closure + incremental closure must equal the BFS reference."""
    batch = SamplingEngine("naive").sample_flips(graph, _query(graph), 32, seed=seed)
    problem, flips = batch.problem, batch.flips
    naive = make_backend("naive")
    n_edges = problem.n_edges
    base_indices = np.arange(split % (n_edges + 1))
    base_naive = naive.propagate_reachability(problem, flips, base_indices)
    base_csr = csr_backend.propagate_reachability(problem, flips, base_indices)
    assert np.array_equal(base_naive, base_csr)

    all_edges = np.arange(n_edges)
    incremental_naive = naive.propagate_reachability(
        problem, flips, all_edges, base_reached=base_naive
    )
    incremental_csr = csr_backend.propagate_reachability(
        problem, flips, all_edges, base_reached=base_csr
    )
    assert np.array_equal(incremental_naive, incremental_csr)
    # the incremental answer equals the from-scratch closure (monotonicity)
    assert np.array_equal(
        incremental_csr, csr_backend.propagate_reachability(problem, flips, all_edges)
    )


@settings(**PROPERTY_SETTINGS)
@given(
    graph=small_graphs,
    seed=st.integers(min_value=0, max_value=10_000),
    split=st.integers(min_value=0, max_value=100),
)
def test_csr_numpy_propagate_matches_naive_including_base_reached(graph, seed, split):
    _csr_propagate_against_naive(CSRSamplingBackend(use_numba=False), graph, seed, split)


@pytest.mark.skipif(NUMBA_REASON is not None, reason=NUMBA_REASON or "numba available")
@settings(**PROPERTY_SETTINGS)
@given(
    graph=small_graphs,
    seed=st.integers(min_value=0, max_value=10_000),
    split=st.integers(min_value=0, max_value=100),
)
def test_csr_numba_propagate_matches_naive_including_base_reached(graph, seed, split):
    backend = CSRSamplingBackend(use_numba=True)
    assert backend.numba_active
    _csr_propagate_against_naive(backend, graph, seed, split)


@pytest.mark.skipif(NUMBA_REASON is None, reason="numba is importable here")
def test_forcing_the_numba_kernel_without_numba_raises():
    with pytest.raises(RuntimeError, match="numba"):
        CSRSamplingBackend(use_numba=True)


# ----------------------------------------------------------------------
# per-world sanity: the reachability matrix is a valid BFS closure
# ----------------------------------------------------------------------
@settings(**PROPERTY_SETTINGS)
@given(graph=small_graphs, seed=st.integers(min_value=0, max_value=10_000))
def test_reached_matrix_source_column_and_bounds(graph, seed):
    batch = SamplingEngine("vectorized").sample_worlds(graph, _query(graph), 16, seed=seed)
    assert batch.reached.dtype == np.bool_
    assert batch.reached.shape == (16, batch.problem.n_vertices)
    assert batch.reached[:, batch.problem.source].all()

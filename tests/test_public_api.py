"""Snapshot of the public API surface.

``repro.__all__`` is the library's contract: names appearing there are
what downstream code imports and what the docs promise.  This snapshot
makes every accidental addition, removal or rename a loud CI failure —
changing the surface requires changing this file in the same commit,
which is exactly the review trigger we want.
"""

import repro

#: The exact public surface of ``repro`` (keep sorted; update only as a
#: deliberate, reviewed API change).
EXPECTED_PUBLIC_API = sorted(
    [
        # version
        "__version__",
        # core types
        "Edge",
        "VertexId",
        # graph model and generators
        "UncertainGraph",
        "PossibleWorld",
        "enumerate_worlds",
        "erdos_renyi_graph",
        "partitioned_graph",
        "wsn_graph",
        "grid_road_graph",
        "social_circle_graph",
        "collaboration_graph",
        "preferential_attachment_graph",
        # estimators
        "monte_carlo_expected_flow",
        "exact_expected_flow",
        "mono_connected_expected_flow",
        # parallel sharded sampling
        "AdaptiveSettings",
        "ProcessExecutor",
        "SerialExecutor",
        "make_executor",
        # batched query service
        "BatchEvaluator",
        "QueryRequest",
        "QueryResult",
        "WorldCache",
        # async serving tier
        "ReproServer",
        "ServerClient",
        "ServerConfig",
        # distributed execution tier
        "RemoteExecutor",
        # F-tree
        "FTree",
        "ComponentSampler",
        "MemoCache",
        "build_ftree",
        # selection
        "DijkstraSelector",
        "NaiveGreedySelector",
        "FTreeGreedySelector",
        "RandomSelector",
        "exhaustive_optimal_selection",
        "make_selector",
        "ALGORITHM_NAMES",
        "SelectionResult",
        # unified telemetry layer
        "MetricsRegistry",
        "Telemetry",
        "current_telemetry",
        "traced",
        # unified runtime / session API
        "runtime",
        "RuntimeConfig",
        "Session",
        "current_config",
        "session",
    ]
)

#: The runtime module's own surface.
EXPECTED_RUNTIME_API = sorted(
    [
        "RuntimeConfig",
        "RuntimeDefaults",
        "Session",
        "current_config",
        "current_session",
        "defaults",
        "session",
    ]
)


class TestPublicSurface:
    def test_all_matches_snapshot(self):
        assert sorted(repro.__all__) == EXPECTED_PUBLIC_API

    def test_no_duplicates(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_every_exported_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, f"{name} does not resolve"

    def test_runtime_surface_matches_snapshot(self):
        assert sorted(repro.runtime.__all__) == EXPECTED_RUNTIME_API

    def test_every_runtime_name_resolves(self):
        for name in repro.runtime.__all__:
            assert getattr(repro.runtime, name, None) is not None

    def test_session_entry_points_are_the_same_object(self):
        assert repro.session is repro.runtime.session
        assert repro.Session is repro.runtime.Session
        assert repro.RuntimeConfig is repro.runtime.RuntimeConfig


class TestStarImport:
    def test_star_import_exports_exactly_all(self):
        namespace = {}
        exec("from repro import *", namespace)
        imported = {name for name in namespace if name != "__builtins__"}
        assert imported == set(repro.__all__)

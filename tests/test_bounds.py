"""Tests for the cheap reachability bounds (related-work baselines)."""

import pytest

from repro.graph.generators import path_graph
from repro.reachability.bounds import (
    cut_upper_bound,
    most_probable_path_lower_bound,
    reachability_bounds,
)
from repro.reachability.exact import exact_reachability
from repro.graph.generators import erdos_renyi_graph


class TestLowerBound:
    def test_path_graph_bound_is_exact(self):
        graph = path_graph(4, probability=0.5)
        assert most_probable_path_lower_bound(graph, 0, 3) == pytest.approx(0.125)

    def test_is_a_lower_bound(self, triangle_graph):
        exact = exact_reachability(triangle_graph, 0, 1).probability
        assert most_probable_path_lower_bound(triangle_graph, 0, 1) <= exact + 1e-12

    def test_same_vertex(self, triangle_graph):
        assert most_probable_path_lower_bound(triangle_graph, 0, 0) == 1.0

    def test_disconnected(self):
        graph = path_graph(2, probability=0.5)
        graph.add_vertex(9)
        assert most_probable_path_lower_bound(graph, 0, 9) == 0.0


class TestUpperBound:
    def test_is_an_upper_bound(self, triangle_graph):
        exact = exact_reachability(triangle_graph, 0, 1).probability
        assert cut_upper_bound(triangle_graph, 0, 1) >= exact - 1e-12

    def test_single_edge_is_exact(self):
        graph = path_graph(2, probability=0.4)
        assert cut_upper_bound(graph, 0, 1) == pytest.approx(0.4)

    def test_certain_edge_gives_one(self):
        graph = path_graph(2, probability=1.0)
        assert cut_upper_bound(graph, 0, 1) == 1.0

    def test_isolated_target(self):
        graph = path_graph(2, probability=0.5)
        graph.add_vertex(9)
        assert cut_upper_bound(graph, 0, 9) == 0.0

    def test_same_vertex(self, triangle_graph):
        assert cut_upper_bound(triangle_graph, 2, 2) == 1.0


class TestCombinedBounds:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bounds_bracket_exact_probability(self, seed):
        graph = erdos_renyi_graph(10, average_degree=2.5, seed=seed)
        exact = exact_reachability(graph, 0, 5).probability
        lower, upper = reachability_bounds(graph, 0, 5)
        assert lower <= exact + 1e-9
        assert upper >= exact - 1e-9

    def test_ordering(self, triangle_graph):
        lower, upper = reachability_bounds(triangle_graph, 0, 2)
        assert lower <= upper

"""Tests for the common-random-numbers evaluation context.

The contract under test (see :mod:`repro.reachability.context`):

* every candidate score equals a from-scratch propagation of the same
  shared flip matrix over ``base + candidate`` — the attach-column fast
  path and the incremental delta re-propagation are pure optimizations;
* scores, and therefore greedy selections, are bit-for-bit identical
  across the ``naive`` and ``vectorized`` backends for the same seed
  (the acceptance criterion of the CRN refactor);
* candidate gains over the round's base flow are nonnegative by
  construction (monotone reachability on shared worlds).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SampleSizeError, VertexNotFoundError
from repro.graph.generators import erdos_renyi_graph, star_graph
from repro.graph.uncertain_graph import UncertainGraph
from repro.reachability.backends import BACKEND_NAMES
from repro.reachability.context import EvaluationContext
from repro.reachability.engine import SamplingEngine
from repro.selection.candidates import CandidateManager
from repro.selection.greedy_naive import NaiveGreedySelector
from repro.selection.lazy_greedy import LazyGreedySelector
from repro.types import Edge


@pytest.fixture
def dense_random_graph():
    """Dense enough that greedy rounds contain cycle-closing candidates."""
    return erdos_renyi_graph(25, average_degree=5.0, seed=3)


def _reference_scores(graph, query, base_edges, candidates, batch, engine, include_query=False):
    """Score candidates by full from-scratch propagation of the shared flips."""
    problem, flips = batch.problem, batch.flips
    weights = graph.weights()
    weight_vector = np.array(
        [weights.get(vertex, 0.0) for vertex in problem.vertex_ids], dtype=np.float64
    )
    if not include_query:
        weight_vector[problem.source] = 0.0
    n_base = len(base_edges)
    scores = []
    for position in range(len(candidates)):
        active = np.append(np.arange(n_base), n_base + position)
        reached = engine.propagate(problem, flips, active)
        scores.append(float((reached.astype(np.float64) @ weight_vector).mean()))
    return np.array(scores)


@pytest.mark.parametrize("backend", BACKEND_NAMES)
class TestScoreCorrectness:
    def test_scores_equal_full_propagation_of_shared_worlds(
        self, dense_random_graph, backend
    ):
        """Fast-path and delta-path scores match a from-scratch closure."""
        graph = dense_random_graph
        engine = SamplingEngine(backend)
        manager = CandidateManager(graph, 0)
        base = []
        # walk three greedy rounds so later rounds mix attach candidates
        # with cycle-closing ones
        for _ in range(3):
            frontier = manager.candidates()
            context = EvaluationContext(graph, 0, n_samples=200, seed=17, backend=backend)
            scores = context.score_candidates(base, frontier)
            batch = engine.sample_flips(
                graph, 0, 200, seed=17, edges=list(base) + frontier
            )
            reference = _reference_scores(graph, 0, base, frontier, batch, engine)
            np.testing.assert_array_equal(scores.scores, reference)
            _, edge, _ = scores.best()
            manager.mark_selected(edge)
            base.append(edge)

    def test_gains_are_nonnegative(self, dense_random_graph, backend):
        context = EvaluationContext(dense_random_graph, 0, n_samples=150, seed=5, backend=backend)
        manager = CandidateManager(dense_random_graph, 0)
        base = []
        for _ in range(4):
            scores = context.score_candidates(base, manager.candidates())
            assert (scores.gains() >= 0.0).all()
            assert (scores.scores >= scores.base_flow).all()
            _, edge, _ = scores.best()
            manager.mark_selected(edge)
            base.append(edge)

    def test_delta_path_is_exercised(self, backend):
        """A cycle-closing candidate goes through incremental re-propagation."""
        graph = UncertainGraph(name="triangle-plus-leaf")
        for vertex in range(4):
            graph.add_vertex(vertex, weight=1.0)
        for u, v in [(0, 1), (0, 2), (1, 2), (1, 3)]:
            graph.add_edge(u, v, 0.5)
        context = EvaluationContext(graph, 0, n_samples=200, seed=2, backend=backend)
        base = [Edge(0, 1), Edge(0, 2)]
        # (1, 2) closes a cycle (both endpoints touched); (1, 3) attaches
        scores = context.score_candidates(base, [Edge(1, 2), Edge(1, 3)])
        assert scores.delta_evaluations == 1
        assert scores.fast_evaluations == 1
        assert (scores.gains() >= 0.0).all()

    def test_rounds_consume_fresh_worlds(self, dense_random_graph, backend):
        """Two rounds with identical inputs draw different worlds."""
        context = EvaluationContext(dense_random_graph, 0, n_samples=100, seed=9, backend=backend)
        frontier = CandidateManager(dense_random_graph, 0).candidates()
        first = context.score_candidates([], frontier)
        second = context.score_candidates([], frontier)
        assert context.rounds == 2
        assert not np.array_equal(first.scores, second.scores)


class TestCrossBackendSelections:
    """Acceptance: CRN selections identical across backends per seed."""

    def test_candidate_scores_bitwise_identical_across_backends(self, dense_random_graph):
        frontier = CandidateManager(dense_random_graph, 0).candidates()
        per_backend = [
            EvaluationContext(
                dense_random_graph, 0, n_samples=300, seed=23, backend=backend
            ).score_candidates([], frontier)
            for backend in BACKEND_NAMES
        ]
        reference = per_backend[0]
        for scores in per_backend[1:]:
            np.testing.assert_array_equal(scores.scores, reference.scores)
            assert scores.base_flow == reference.base_flow

    def test_naive_selector_selections_identical_across_backends(self):
        graph = erdos_renyi_graph(40, average_degree=5.0, seed=8)
        results = [
            NaiveGreedySelector(n_samples=200, seed=13, crn=True, backend=backend).select(
                graph, 0, 8
            )
            for backend in BACKEND_NAMES
        ]
        reference = results[0]
        for result in results[1:]:
            assert result.selected_edges == reference.selected_edges
            assert result.expected_flow == reference.expected_flow

    def test_lazy_selector_selections_identical_across_backends(self):
        graph = erdos_renyi_graph(30, average_degree=4.0, seed=4)
        results = [
            LazyGreedySelector(n_samples=150, seed=6, crn=True, backend=backend).select(
                graph, 0, 6
            )
            for backend in BACKEND_NAMES
        ]
        reference = results[0]
        for result in results[1:]:
            assert result.selected_edges == reference.selected_edges


class TestBestAndValidation:
    def test_best_breaks_ties_towards_first_candidate(self):
        graph = star_graph(3, probability=0.5)
        context = EvaluationContext(graph, 0, n_samples=50, seed=1)
        scores = context.score_candidates([], [Edge(0, 1), Edge(0, 2), Edge(0, 3)])
        index, edge, _ = scores.best()
        # unit weights and one shared batch: identical columns tie, and
        # argmax must resolve to the earliest candidate
        first_best = int(np.flatnonzero(scores.scores == scores.scores.max())[0])
        assert index == first_best
        assert edge == scores.candidates[index]

    def test_empty_candidate_list_rejected_by_best(self, dense_random_graph):
        context = EvaluationContext(dense_random_graph, 0, n_samples=20, seed=0)
        scores = context.score_candidates([], [])
        assert scores.scores.size == 0
        with pytest.raises(ValueError, match="no candidates"):
            scores.best()

    def test_unknown_source_rejected(self, dense_random_graph):
        with pytest.raises(VertexNotFoundError):
            EvaluationContext(dense_random_graph, "missing", n_samples=10)

    def test_non_positive_samples_rejected(self, dense_random_graph):
        with pytest.raises(SampleSizeError):
            EvaluationContext(dense_random_graph, 0, n_samples=0)

    def test_duplicate_candidates_rejected(self, dense_random_graph):
        context = EvaluationContext(dense_random_graph, 0, n_samples=20, seed=0)
        frontier = CandidateManager(dense_random_graph, 0).candidates()
        with pytest.raises(ValueError, match="duplicates"):
            context.score_candidates([frontier[0]], [frontier[0]])
        with pytest.raises(ValueError, match="duplicates"):
            context.score_candidates([], [frontier[0], frontier[0]])

    def test_core_only_backend_scores_via_fallback(self, dense_random_graph):
        """A pre-CRN backend (no propagate_reachability) still works."""
        from repro.reachability.backends import NaiveSamplingBackend

        class LegacyBackend:
            name = "legacy"

            def sample_reachability(self, problem, n_samples, rng):
                return NaiveSamplingBackend().sample_reachability(problem, n_samples, rng)

        frontier = CandidateManager(dense_random_graph, 0).candidates()
        legacy = EvaluationContext(
            dense_random_graph, 0, n_samples=100, seed=19, backend=LegacyBackend()
        ).score_candidates([], frontier)
        native = EvaluationContext(
            dense_random_graph, 0, n_samples=100, seed=19, backend="naive"
        ).score_candidates([], frontier)
        np.testing.assert_array_equal(legacy.scores, native.scores)

    def test_seeded_contexts_reproducible(self, dense_random_graph):
        frontier = CandidateManager(dense_random_graph, 0).candidates()
        first = EvaluationContext(dense_random_graph, 0, n_samples=80, seed=31).score_candidates(
            [], frontier
        )
        second = EvaluationContext(dense_random_graph, 0, n_samples=80, seed=31).score_candidates(
            [], frontier
        )
        np.testing.assert_array_equal(first.scores, second.scores)

"""Tests for articulation points, biconnected components and the block-cut tree.

NetworkX is used as an independent oracle for randomly generated graphs.
"""

import networkx as nx
import pytest

from repro.algorithms.biconnected import (
    articulation_points,
    biconnected_components,
    biconnected_edge_components,
    block_cut_tree,
    bridges,
)
from repro.exceptions import VertexNotFoundError
from repro.graph.generators import erdos_renyi_graph, path_graph
from repro.graph.uncertain_graph import UncertainGraph
from repro.types import Edge


def _to_networkx(graph: UncertainGraph) -> nx.Graph:
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.vertices())
    nx_graph.add_edges_from((edge.u, edge.v) for edge in graph.edges())
    return nx_graph


class TestSmallGraphs:
    def test_path_has_only_bridges(self, small_path):
        components = biconnected_edge_components(small_path)
        assert all(len(component) == 1 for component in components)
        assert bridges(small_path) == set(small_path.edges())

    def test_cycle_is_one_block(self, five_cycle):
        components = biconnected_edge_components(five_cycle)
        assert len(components) == 1
        assert len(components[0]) == 5
        assert articulation_points(five_cycle) == set()
        assert bridges(five_cycle) == set()

    def test_lollipop_articulation_point(self, lollipop_graph):
        assert articulation_points(lollipop_graph) == {2, 3}
        assert bridges(lollipop_graph) == {Edge(2, 3), Edge(3, 4)}

    def test_every_edge_in_exactly_one_component(self, lollipop_graph):
        components = biconnected_edge_components(lollipop_graph)
        all_edges = [edge for component in components for edge in component]
        assert len(all_edges) == len(set(all_edges)) == lollipop_graph.n_edges

    def test_edge_restriction(self, lollipop_graph):
        restricted = [Edge(0, 1), Edge(1, 2)]
        components = biconnected_edge_components(lollipop_graph, edges=restricted)
        assert all(len(component) == 1 for component in components)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_biconnected_components_match(self, seed):
        graph = erdos_renyi_graph(40, average_degree=3.5, seed=seed, connect=False)
        ours = {frozenset(component) for component in biconnected_components(graph)}
        theirs = {
            frozenset(component)
            for component in nx.biconnected_components(_to_networkx(graph))
        }
        assert ours == theirs

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_articulation_points_match(self, seed):
        graph = erdos_renyi_graph(40, average_degree=3.5, seed=seed, connect=False)
        assert articulation_points(graph) == set(
            nx.articulation_points(_to_networkx(graph))
        )

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_bridges_match(self, seed):
        graph = erdos_renyi_graph(50, average_degree=3.0, seed=seed, connect=False)
        assert bridges(graph) == {Edge(u, v) for u, v in nx.bridges(_to_networkx(graph))}


class TestBlockCutTree:
    def test_tree_rooted_at_query(self, lollipop_graph):
        tree = block_cut_tree(lollipop_graph, 0)
        assert tree.root == 0
        assert len(tree.blocks) == 3  # triangle + two bridges
        # the triangle block contains the root and attaches through it
        triangle_index = next(
            i for i, block in enumerate(tree.blocks) if len(block) == 3
        )
        assert tree.block_parent_vertex[triangle_index] == 0

    def test_depths_increase_away_from_root(self, lollipop_graph):
        tree = block_cut_tree(lollipop_graph, 0)
        bridge_depths = sorted(
            tree.block_depth[i] for i, block in enumerate(tree.blocks) if len(block) == 1
        )
        triangle_depth = next(
            tree.block_depth[i] for i, block in enumerate(tree.blocks) if len(block) == 3
        )
        assert triangle_depth == 0
        assert bridge_depths == [1, 2]

    def test_isolated_root_gives_empty_tree(self):
        graph = path_graph(3)
        graph.add_vertex(99)
        tree = block_cut_tree(graph, 99)
        assert tree.blocks == []

    def test_unknown_root_rejected(self, small_path):
        with pytest.raises(VertexNotFoundError):
            block_cut_tree(small_path, 123)

    def test_restriction_to_edges(self, lollipop_graph):
        tree = block_cut_tree(lollipop_graph, 0, edges=[Edge(0, 1)])
        assert len(tree.blocks) == 1
        assert tree.block_vertices[0] == frozenset({0, 1})

    def test_block_order_is_root_outwards(self, lollipop_graph):
        tree = block_cut_tree(lollipop_graph, 4)
        order = tree.block_order()
        depths = [tree.block_depth[i] for i in order]
        assert depths == sorted(depths)

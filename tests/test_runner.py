"""Tests for the batch figure runner."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import FigureArtifacts, run_all_figures, summary_table

TINY = ExperimentConfig(
    n_vertices=36,
    degree=4,
    budget=3,
    n_samples=30,
    naive_samples=15,
    algorithms=("Dijkstra", "FT+M"),
    seed=1,
)


class TestRunAllFigures:
    def test_single_figure_to_disk(self, tmp_path):
        artifacts = run_all_figures(output_dir=tmp_path, figures=["7a"], config=TINY)
        assert len(artifacts) == 1
        artifact = artifacts[0]
        assert artifact.figure == "7a"
        assert artifact.csv_path is not None and artifact.csv_path.exists()
        content = artifact.csv_path.read_text()
        assert "algorithm" in content.splitlines()[0]
        assert (tmp_path / "SUMMARY.md").exists()

    def test_multi_panel_figure(self, tmp_path):
        artifacts = run_all_figures(output_dir=tmp_path, figures=["variance"])
        assert len(artifacts) == 1
        assert artifacts[0].n_rows == 2

    def test_without_output_dir(self):
        artifacts = run_all_figures(output_dir=None, figures=["variance"])
        assert artifacts[0].csv_path is None

    def test_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            run_all_figures(output_dir=tmp_path, figures=["nope"])

    def test_algorithm_means_recorded(self, tmp_path):
        artifacts = run_all_figures(output_dir=tmp_path, figures=["7a"], config=TINY)
        means = artifacts[0].algorithm_means
        assert set(means) == {"Dijkstra", "FT+M"}
        assert all(value >= 0.0 for value in means.values())


class TestSummaryTable:
    def test_renders_rows(self, tmp_path):
        artifacts = run_all_figures(output_dir=tmp_path, figures=["variance"])
        table = summary_table(artifacts)
        assert "Regenerated figures" in table
        assert "variance-ablation" in table

    def test_handles_memory_only_artifacts(self):
        artifact = FigureArtifacts(
            figure="x", description="demo", csv_path=None, n_rows=0
        )
        assert "demo" in summary_table([artifact])


class TestSharedWorldCache:
    def test_run_all_figures_installs_and_restores_the_cache(self, monkeypatch):
        import repro.experiments.runner as runner_module
        from repro.experiments.config import ExperimentConfig
        from repro.runtime import current_session
        from repro.service.cache import get_default_world_cache

        sentinel = get_default_world_cache()
        seen = {}

        def fake_run(selected, directory, config):
            # the session-scoped, explicitly sized cache is active during
            # the run and resolves ahead of the process default
            seen["cache"] = get_default_world_cache()
            seen["session"] = current_session()
            return []

        monkeypatch.setattr(runner_module, "_run_selected_figures", fake_run)
        from dataclasses import replace

        config = replace(ExperimentConfig.quick(), world_cache_size=16)
        runner_module.run_all_figures(figures=["variance"], config=config)
        assert seen["cache"] is not sentinel
        assert seen["cache"].max_entries == 16
        assert seen["session"] is not None
        # scope exited afterwards: the process default is back
        assert get_default_world_cache() is sentinel
        assert current_session() is None

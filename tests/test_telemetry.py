"""Tests for the unified telemetry layer (:mod:`repro.telemetry`).

Pins the three contracts the instrumentation relies on:

* the :class:`MetricsRegistry` is exact under concurrent updates from
  threads *and* asyncio tasks (no lost increments, no torn reads);
* the disabled path is a true no-op (``NULL_TELEMETRY`` allocates
  nothing, records nothing) and — critically — switching telemetry on
  never changes a sampling result bit-for-bit;
* spans nest correctly per pipeline and round-trip through every
  exporter.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading

import pytest

import repro
from repro.runtime import defaults
from repro.server.metrics import ServerMetrics
from repro.telemetry import (
    NULL_TELEMETRY,
    InMemoryExporter,
    JSONLExporter,
    LoggingExporter,
    MetricsRegistry,
    NullTelemetry,
    Telemetry,
    current_telemetry,
    format_span_tree,
    install_env_telemetry,
    iter_spans,
    resolve_telemetry,
    telemetry_from_spec,
    traced,
)
from repro.telemetry.registry import Counter, Gauge, Histogram
from repro.telemetry.spans import NULL_SPAN

N_SAMPLES = 200
SEED = 7


@pytest.fixture(autouse=True)
def _clean_ambient_telemetry():
    """Pin the ambient default to 'disabled' regardless of REPRO_TELEMETRY.

    The CI telemetry-smoke job runs the tier-1 suites with a process-wide
    pipeline installed; this file tests the resolution chain itself, so
    it needs a known-clean starting point.
    """
    before = defaults.telemetry
    defaults.telemetry = None
    yield
    defaults.telemetry = before


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_get_or_create_and_add(self):
        registry = MetricsRegistry()
        counter = registry.counter("engine.worlds_sampled")
        assert registry.counter("engine.worlds_sampled") is counter
        counter.add()
        counter.add(41)
        assert counter.value == 42
        assert registry.snapshot()["counters"]["engine.worlds_sampled"] == 42

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("cache.world.entries")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5
        assert registry.snapshot()["gauges"]["cache.world.entries"] == 1.5

    def test_histogram_bucketing(self):
        registry = MetricsRegistry()
        hist = registry.histogram("server.batch_size", bounds=(1, 2, 4))
        for value in (0.5, 1.0, 1.5, 100.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(103.0)
        assert summary["min"] == 0.5
        assert summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(103.0 / 4)
        # bounds are inclusive upper bounds; the last bucket is overflow
        by_bound = {bucket["le"]: bucket["count"] for bucket in summary["buckets"]}
        assert by_bound == {1: 2, 2: 1, 4: 0, None: 1}

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2, 1))

    def test_empty_histogram_summary(self):
        summary = Histogram("h", bounds=(1,)).summary()
        assert summary["count"] == 0
        assert summary["mean"] is None
        assert summary["min"] is None and summary["max"] is None

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("engine.sample_calls")
        with pytest.raises(TypeError):
            registry.gauge("engine.sample_calls")
        with pytest.raises(TypeError):
            registry.histogram("engine.sample_calls")

    def test_snapshot_groups_and_sorts(self):
        registry = MetricsRegistry()
        registry.counter("b.counter").add(1)
        registry.counter("a.counter").add(2)
        registry.gauge("a.gauge").set(3.0)
        registry.histogram("a.hist").observe(0.01)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["counters", "gauges", "histograms"]
        assert list(snapshot["counters"]) == ["a.counter", "b.counter"]
        assert snapshot["histograms"]["a.hist"]["count"] == 1

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("x").add(5)
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        # names are reusable, including as a different kind
        registry.gauge("x").set(1.0)
        assert registry.snapshot()["gauges"]["x"] == 1.0


class TestRegistryConcurrency:
    def test_threaded_updates_are_exact(self):
        registry = MetricsRegistry()
        n_threads, n_iterations = 8, 2000

        def hammer():
            for _ in range(n_iterations):
                # get-or-create races against every other thread on purpose
                registry.counter("hammered").add()
                registry.histogram("observed", bounds=(0.5,)).observe(1.0)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = n_threads * n_iterations
        snapshot = registry.snapshot()
        assert snapshot["counters"]["hammered"] == expected
        assert snapshot["histograms"]["observed"]["count"] == expected
        assert snapshot["histograms"]["observed"]["sum"] == pytest.approx(float(expected))

    def test_asyncio_updates_are_exact(self):
        registry = MetricsRegistry()
        n_tasks, n_iterations = 50, 100

        async def hammer():
            for _ in range(n_iterations):
                registry.counter("async.hammered").add()
                await asyncio.sleep(0)  # force interleaving between tasks

        async def main():
            await asyncio.gather(*(hammer() for _ in range(n_tasks)))

        asyncio.run(main())
        assert registry.snapshot()["counters"]["async.hammered"] == n_tasks * n_iterations


# ----------------------------------------------------------------------
# spans and exporters
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_builds_one_tree(self):
        memory = InMemoryExporter()
        tel = Telemetry(exporters=[memory])
        with tel.span("outer", layer="test"):
            with tel.span("inner.first"):
                pass
            with tel.span("inner.second") as span:
                span.set(n=3)
        assert len(memory.spans) == 1
        root = memory.spans[0]
        assert root.name == "outer"
        assert root.attributes == {"layer": "test"}
        assert [child.name for child in root.children] == ["inner.first", "inner.second"]
        assert root.children[1].attributes == {"n": 3}
        # nested intervals: the parent's wall time covers its children
        assert root.duration_s > 0.0
        assert root.duration_s >= sum(child.duration_s for child in root.children)

    def test_current_span_tracks_innermost(self):
        tel = Telemetry()
        assert tel.current_span() is None
        with tel.span("outer"):
            assert tel.current_span().name == "outer"
            with tel.span("inner"):
                assert tel.current_span().name == "inner"
            assert tel.current_span().name == "outer"
        assert tel.current_span() is None

    def test_spans_never_attach_across_pipelines(self):
        memory_a, memory_b = InMemoryExporter(), InMemoryExporter()
        tel_a = Telemetry(exporters=[memory_a])
        tel_b = Telemetry(exporters=[memory_b])
        with tel_a.span("a.outer"):
            with tel_b.span("b.inner"):
                # b's span must not see a's as its parent
                assert tel_b.current_span().name == "b.inner"
        assert [span.name for span in memory_a.spans] == ["a.outer"]
        assert memory_a.spans[0].children == []
        assert [span.name for span in memory_b.spans] == ["b.inner"]

    def test_root_exports_even_when_body_raises(self):
        memory = InMemoryExporter()
        tel = Telemetry(exporters=[memory])
        with pytest.raises(RuntimeError):
            with tel.span("doomed"):
                raise RuntimeError("boom")
        assert [span.name for span in memory.spans] == ["doomed"]

    def test_iter_spans_depth_first(self):
        memory = InMemoryExporter()
        tel = Telemetry(exporters=[memory])
        with tel.span("root"):
            with tel.span("left"):
                with tel.span("left.leaf"):
                    pass
            with tel.span("right"):
                pass
        walk = [(span.name, depth) for span, depth, _ in iter_spans(memory.spans[0])]
        assert walk == [("root", 0), ("left", 1), ("left.leaf", 2), ("right", 1)]

    def test_format_span_tree(self):
        memory = InMemoryExporter()
        tel = Telemetry(exporters=[memory])
        with tel.span("service.evaluate", n_requests=2):
            with tel.span("engine.sample_worlds"):
                pass
        rendered = format_span_tree(memory.spans[0])
        lines = rendered.splitlines()
        assert "service.evaluate" in lines[0]
        assert "n_requests=2" in lines[0]
        assert "engine.sample_worlds" in lines[1]
        assert "ms" in lines[0] and "%" in lines[0]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tel = Telemetry(exporters=[JSONLExporter(path)])
        with tel.span("outer", graph=object()):  # non-JSON attr gets repr()d
            with tel.span("inner"):
                pass
        tel.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [record["name"] for record in records] == ["outer", "inner"]
        outer, inner = records
        assert outer["parent_id"] is None
        assert inner["parent_id"] == outer["span_id"]
        assert isinstance(outer["attributes"]["graph"], str)
        assert inner["duration_s"] >= 0.0

    def test_logging_exporter(self, caplog):
        tel = Telemetry(exporters=[LoggingExporter(logging.getLogger("repro.trace.test"))])
        with caplog.at_level(logging.INFO, logger="repro.trace.test"):
            with tel.span("outer"):
                with tel.span("inner"):
                    pass
        messages = [record.getMessage() for record in caplog.records]
        assert any("outer" in message for message in messages)
        assert any("inner" in message for message in messages)

    def test_in_memory_exporter_clear(self):
        memory = InMemoryExporter()
        tel = Telemetry(exporters=[memory])
        with tel.span("x"):
            pass
        memory.clear()
        assert memory.spans == []

    def test_to_dict_is_json_safe(self):
        memory = InMemoryExporter()
        tel = Telemetry(exporters=[memory])
        with tel.span("root", k=1):
            with tel.span("child"):
                pass
        document = memory.spans[0].to_dict()
        json.dumps(document)  # must not raise
        assert document["name"] == "root"
        assert document["children"][0]["name"] == "child"


# ----------------------------------------------------------------------
# the disabled path
# ----------------------------------------------------------------------
class TestNullTelemetry:
    def test_ambient_default_is_disabled(self):
        tel = current_telemetry()
        assert tel is NULL_TELEMETRY
        assert not tel.enabled

    def test_span_is_the_shared_null_handle(self):
        handle = NULL_TELEMETRY.span("anything", key="value")
        assert handle is NULL_SPAN
        with handle as entered:
            assert entered.set(more="attrs") is NULL_SPAN
        assert NULL_TELEMETRY.current_span() is None

    def test_metric_methods_record_nothing(self):
        NULL_TELEMETRY.count("x", 10)
        NULL_TELEMETRY.gauge("y", 1.0)
        NULL_TELEMETRY.observe("z", 0.5)
        assert NULL_TELEMETRY.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_null_is_a_telemetry_instance(self):
        # RuntimeConfig validation and shared-pipeline plumbing rely on it
        assert isinstance(NULL_TELEMETRY, Telemetry)
        assert isinstance(NULL_TELEMETRY, NullTelemetry)

    def test_disabled_workload_stays_silent(self, random_graph):
        repro.monte_carlo_expected_flow(random_graph, 0, n_samples=50, seed=SEED)
        assert NULL_TELEMETRY.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


# ----------------------------------------------------------------------
# resolution chain
# ----------------------------------------------------------------------
class TestResolutionChain:
    def test_session_shares_an_explicit_instance(self):
        tel = Telemetry()
        with repro.session(telemetry=tel) as active:
            assert current_telemetry() is tel
            assert active.telemetry is tel
        assert current_telemetry() is NULL_TELEMETRY

    def test_session_true_owns_a_fresh_pipeline(self):
        with repro.session(telemetry=True) as active:
            tel = current_telemetry()
            assert tel.enabled and tel is not NULL_TELEMETRY
            assert active.telemetry is tel
        assert current_telemetry() is NULL_TELEMETRY

    def test_session_false_pins_off_inside_enabled_scope(self):
        tel = Telemetry()
        with repro.session(telemetry=tel):
            with repro.session(telemetry=False):
                assert current_telemetry() is NULL_TELEMETRY
            assert current_telemetry() is tel

    def test_session_none_inherits(self):
        tel = Telemetry()
        with repro.session(telemetry=tel):
            with repro.session(n_samples=10):  # telemetry unspecified → inherit
                assert current_telemetry() is tel

    def test_defaults_spec_normalized_once(self):
        defaults.telemetry = True
        first = current_telemetry()
        assert first.enabled
        assert current_telemetry() is first  # normalized in place, not rebuilt

    def test_resolve_telemetry_chain(self):
        tel = Telemetry()
        assert resolve_telemetry(tel) is tel
        assert resolve_telemetry(False) is NULL_TELEMETRY
        assert resolve_telemetry(None) is NULL_TELEMETRY  # ambient is clean here
        with repro.session(telemetry=tel):
            assert resolve_telemetry(None) is tel

    def test_telemetry_from_spec(self, tmp_path):
        assert telemetry_from_spec(True).enabled
        logged = telemetry_from_spec("log")
        assert any(isinstance(e, LoggingExporter) for e in logged.exporters)
        path = tmp_path / "trace.jsonl"
        filed = telemetry_from_spec(str(path))
        assert any(isinstance(e, JSONLExporter) for e in filed.exporters)
        with pytest.raises(TypeError):
            telemetry_from_spec(123)

    def test_runtime_config_rejects_bad_telemetry(self):
        with pytest.raises(TypeError):
            repro.RuntimeConfig(telemetry="not-a-spec-here")

    def test_env_hook_installs_process_default(self):
        install_env_telemetry({"REPRO_TELEMETRY": "1"})
        assert isinstance(defaults.telemetry, Telemetry)
        assert defaults.telemetry.enabled

    def test_env_hook_never_overwrites(self):
        pinned = Telemetry()
        defaults.telemetry = pinned
        install_env_telemetry({"REPRO_TELEMETRY": "1"})
        assert defaults.telemetry is pinned

    def test_env_hook_ignores_off_values(self):
        for value in ("", "0", "false", "off"):
            install_env_telemetry({"REPRO_TELEMETRY": value})
            assert defaults.telemetry is None

    def test_env_hook_path_means_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        install_env_telemetry({"REPRO_TELEMETRY": str(path)})
        assert any(isinstance(e, JSONLExporter) for e in defaults.telemetry.exporters)


class TestTraced:
    def test_traced_opens_a_span_when_enabled(self):
        memory = InMemoryExporter()
        tel = Telemetry(exporters=[memory])

        @traced("test.decorated", flavor="unit")
        def work(x):
            return x * 2

        with repro.session(telemetry=tel):
            assert work(21) == 42
        assert [span.name for span in memory.spans] == ["test.decorated"]
        assert memory.spans[0].attributes == {"flavor": "unit"}

    def test_traced_is_transparent_when_disabled(self):
        @traced("test.decorated")
        def work(x):
            return x + 1

        assert work.__name__ == "work"
        assert work(1) == 2  # ambient disabled → straight through


# ----------------------------------------------------------------------
# end-to-end instrumentation
# ----------------------------------------------------------------------
class TestInstrumentation:
    def test_enabling_telemetry_never_changes_results(self, random_graph):
        baseline = repro.monte_carlo_expected_flow(
            random_graph, 0, n_samples=N_SAMPLES, seed=SEED
        )
        with repro.session(telemetry=True):
            traced_run = repro.monte_carlo_expected_flow(
                random_graph, 0, n_samples=N_SAMPLES, seed=SEED
            )
        assert traced_run.expected_flow == baseline.expected_flow
        assert traced_run.n_samples == baseline.n_samples

    def test_engine_emits_into_the_session_pipeline(self, random_graph):
        memory = InMemoryExporter()
        tel = Telemetry(exporters=[memory])
        with repro.session(telemetry=tel):
            repro.monte_carlo_expected_flow(random_graph, 0, n_samples=N_SAMPLES, seed=SEED)
        counters = tel.snapshot()["counters"]
        assert counters["engine.sample_calls"] == 1
        assert counters["engine.worlds_sampled"] == N_SAMPLES
        assert any(span.name.startswith("engine.") for span in memory.spans)

    def test_service_batch_merges_every_layer(self, random_graph):
        memory = InMemoryExporter()
        tel = Telemetry(exporters=[memory])
        requests = [
            repro.QueryRequest(
                kind="expected_flow", source=0, n_samples=N_SAMPLES, seed=SEED
            ),
            repro.QueryRequest(
                kind="expected_flow", source=1, n_samples=N_SAMPLES, seed=SEED
            ),
        ]
        with repro.session(telemetry=tel, world_cache=8) as active:
            results = active.batch(random_graph, requests)
        assert len(results) == 2
        counters = tel.snapshot()["counters"]
        # one registry shows the whole stack: service planning, engine
        # sampling and the world cache all emitted into the same sink
        assert counters["service.requests"] == 2
        assert counters["service.plan_calls"] == 1
        assert counters["engine.worlds_sampled"] >= N_SAMPLES
        assert any(name.startswith("cache.world.") for name in counters)
        roots = [span.name for span in memory.spans]
        assert "service.evaluate" in roots
        evaluate = memory.spans[roots.index("service.evaluate")]
        assert any(child.name.startswith("engine.") for child in evaluate.children)

    def test_serial_executor_accounts_shards(self, random_graph):
        tel = Telemetry()
        with repro.session(telemetry=tel):
            repro.monte_carlo_expected_flow(
                random_graph,
                0,
                n_samples=N_SAMPLES,
                seed=SEED,
                executor=repro.SerialExecutor(),
                shard_size=50,
            )
        snapshot = tel.snapshot()
        assert snapshot["counters"]["executor.shards_run"] == N_SAMPLES // 50
        assert snapshot["histograms"]["executor.shard_seconds"]["count"] == N_SAMPLES // 50

    def test_server_metrics_forward_into_registry(self):
        tel = Telemetry()
        metrics = ServerMetrics(telemetry=tel)
        metrics.observe_admitted()
        metrics.observe_answered("expected_flow", 0.012)
        metrics.observe_failed()
        metrics.observe_rejected("overloaded")
        metrics.observe_bad_request()
        metrics.observe_control()
        metrics.observe_batch(4)
        snapshot = tel.snapshot()
        assert snapshot["counters"] == {
            "server.admitted": 1,
            "server.answered": 1,
            "server.bad_requests": 1,
            "server.batched_requests": 4,
            "server.batches": 1,
            "server.control": 1,
            "server.failed": 1,
            "server.rejected": 1,
        }
        assert snapshot["histograms"]["server.latency_seconds"]["count"] == 1
        assert snapshot["histograms"]["server.batch_size"]["max"] == 4.0
        # the legacy percentile snapshot is still served
        legacy = metrics.snapshot()
        assert legacy["requests"]["answered"] == 1
        assert legacy["coalescing"]["batches"] == 1

    def test_server_metrics_default_to_disabled(self):
        metrics = ServerMetrics()
        metrics.observe_admitted()  # must not touch the shared null registry
        assert NULL_TELEMETRY.snapshot()["counters"] == {}

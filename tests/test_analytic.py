"""Tests for analytic (mono-connected) reachability and flow (Lemma 2 / Theorem 2)."""

import pytest

from repro.exceptions import GraphError, VertexNotFoundError
from repro.reachability.analytic import (
    is_mono_connected,
    mono_connected_expected_flow,
    mono_connected_reachability,
    path_probability,
)
from repro.reachability.exact import exact_expected_flow
from repro.types import Edge


class TestIsMonoConnected:
    def test_trees_are_mono_connected(self, small_path, star_five):
        assert is_mono_connected(small_path)
        assert is_mono_connected(star_five)

    def test_cycles_are_not(self, five_cycle):
        assert not is_mono_connected(five_cycle)

    def test_edge_restriction_can_break_cycles(self, five_cycle):
        tree_edges = [Edge(0, 1), Edge(1, 2), Edge(2, 3), Edge(3, 4)]
        assert is_mono_connected(five_cycle, edges=tree_edges)

    def test_vertex_restriction(self, lollipop_graph):
        # the triangle {0,1,2} is cyclic, the tail {2,3,4} is not
        assert not is_mono_connected(lollipop_graph, within=[0, 1, 2])
        assert is_mono_connected(lollipop_graph, within=[2, 3, 4])


class TestMonoReachability:
    def test_path_products(self, small_path):
        reach = mono_connected_reachability(small_path, 0)
        assert reach[0] == pytest.approx(1.0)
        assert reach[1] == pytest.approx(0.5)
        assert reach[3] == pytest.approx(0.125)

    def test_matches_exact_enumeration(self, star_five):
        analytic = mono_connected_reachability(star_five, 0)
        from repro.reachability.exact import exact_reachability_all

        exact = exact_reachability_all(star_five, 0)
        for vertex, probability in exact.items():
            assert analytic[vertex] == pytest.approx(probability)

    def test_unreachable_vertices_have_zero(self, small_path):
        small_path.add_vertex(42)
        reach = mono_connected_reachability(small_path, 0)
        assert reach[42] == 0.0

    def test_cycle_raises(self, five_cycle):
        with pytest.raises(GraphError):
            mono_connected_reachability(five_cycle, 0)

    def test_unknown_source(self, small_path):
        with pytest.raises(VertexNotFoundError):
            mono_connected_reachability(small_path, 77)


class TestMonoFlow:
    def test_matches_exact(self, small_path):
        analytic = mono_connected_expected_flow(small_path, 0).expected_flow
        exact = exact_expected_flow(small_path, 0).expected_flow
        assert analytic == pytest.approx(exact)

    def test_include_query(self, small_path):
        included = mono_connected_expected_flow(small_path, 0, include_query=True)
        excluded = mono_connected_expected_flow(small_path, 0, include_query=False)
        assert included.expected_flow == pytest.approx(excluded.expected_flow + 1.0)

    def test_edge_restriction(self, five_cycle):
        tree_edges = [Edge(0, 1), Edge(1, 2)]
        flow = mono_connected_expected_flow(five_cycle, 0, edges=tree_edges)
        assert flow.expected_flow == pytest.approx(0.5 + 0.25)


class TestPathProbability:
    def test_product_along_path(self, small_path):
        assert path_probability(small_path, [0, 1, 2]) == pytest.approx(0.25)

    def test_trivial_paths(self, small_path):
        assert path_probability(small_path, [0]) == 1.0
        assert path_probability(small_path, []) == 1.0

"""Unit tests for the repro.parallel subsystem (plan, executors, adaptive)."""

import numpy as np
import pytest

from repro.parallel import (
    AdaptiveSettings,
    DEFAULT_SHARD_SIZE,
    ProcessExecutor,
    SerialExecutor,
    ShardTask,
    get_default_executor,
    get_default_shard_size,
    make_executor,
    plan_shards,
)
from repro.parallel.adaptive import shard_rounds
from repro.reachability.backends import make_backend
from repro.reachability.backends.base import SamplingProblem
from repro.rng import split_seed_sequences
from repro.types import Edge


def _problem(n_edges: int = 3) -> SamplingProblem:
    edges = [(Edge(i, i + 1), 0.5) for i in range(n_edges)]
    return SamplingProblem.from_edges(edges, source=0)


class TestShardPlan:
    def test_exact_division(self):
        plan = plan_shards(12, 4)
        assert plan.n_shards == 3
        assert plan.shard_sizes == (4, 4, 4)

    def test_remainder_goes_to_last_shard(self):
        plan = plan_shards(10, 4)
        assert plan.n_shards == 3
        assert plan.shard_sizes == (4, 4, 2)
        assert sum(plan.shard_sizes) == 10

    def test_single_shard_when_request_fits(self):
        plan = plan_shards(5, 100)
        assert plan.n_shards == 1
        assert plan.shard_sizes == (5,)

    def test_zero_samples_means_zero_shards(self):
        plan = plan_shards(0, 8)
        assert plan.n_shards == 0
        assert plan.shard_sizes == ()
        assert list(plan.offsets()) == []

    def test_offsets_cover_the_request_contiguously(self):
        plan = plan_shards(10, 4)
        assert list(plan.offsets()) == [(0, 4), (4, 8), (8, 10)]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            plan_shards(10, 0)
        with pytest.raises(ValueError):
            plan_shards(-1, 4)


class TestExecutors:
    def test_serial_runs_tasks_in_order(self):
        problem = _problem()
        children = split_seed_sequences(3, 2)
        tasks = [
            ShardTask(problem=problem, n_samples=4, seed=children[0], backend=None),
            ShardTask(problem=problem, n_samples=2, seed=children[1], backend=None),
        ]
        parts = SerialExecutor().map_shards(tasks)
        assert [part.shape for part in parts] == [(4, 3), (2, 3)]

    def test_empty_task_list(self):
        assert SerialExecutor().map_shards([]) == []
        with ProcessExecutor(2) as pool:
            assert pool.map_shards([]) == []

    def test_process_pool_matches_serial_bit_for_bit(self):
        problem = _problem(5)
        children = split_seed_sequences(11, 4)
        backend = make_backend("naive")
        tasks = [
            ShardTask(problem=problem, n_samples=8, seed=child, backend=backend)
            for child in children
        ]
        reference = SerialExecutor().map_shards(tasks)
        with ProcessExecutor(2) as pool:
            parallel = pool.map_shards(tasks)
        assert len(reference) == len(parallel)
        for ours, theirs in zip(reference, parallel):
            assert np.array_equal(ours, theirs)

    def test_make_executor_resolution(self):
        assert make_executor(None) is None
        assert isinstance(make_executor(1), SerialExecutor)
        pool = make_executor(3)
        assert isinstance(pool, ProcessExecutor)
        assert pool.workers == 3
        serial = SerialExecutor()
        assert make_executor(serial) is serial

    def test_make_executor_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            make_executor(0)
        with pytest.raises(TypeError):
            make_executor(True)
        # strings are remote specs now; anything else is a malformed value
        with pytest.raises(ValueError):
            make_executor("four")
        with pytest.raises(ValueError):
            make_executor("remote:nope")
        with pytest.raises(TypeError):
            make_executor(3.5)

    def test_process_executor_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            ProcessExecutor(0)


class TestDefaults:
    # (the deprecated set_default_executor / set_default_shard_size shims
    # over this store are pinned in tests/test_runtime_deprecations.py)

    def test_default_executor_round_trip(self):
        from repro.runtime import defaults

        assert get_default_executor() is None
        defaults.executor = SerialExecutor()
        try:
            assert isinstance(get_default_executor(), SerialExecutor)
        finally:
            defaults.executor = None
        assert get_default_executor() is None

    def test_default_shard_size_round_trip(self):
        from repro.runtime import defaults

        baseline = get_default_shard_size()
        defaults.shard_size = 64
        try:
            assert get_default_shard_size() == 64
        finally:
            defaults.shard_size = None
        assert get_default_shard_size() == baseline

    def test_session_scope_pins_executor_and_shard_size(self):
        import repro

        with repro.session(workers=1, shard_size=64) as session:
            assert get_default_executor() is session.executor
            assert get_default_shard_size() == 64
        assert get_default_executor() is None
        assert get_default_shard_size() == DEFAULT_SHARD_SIZE


class TestAdaptiveSettings:
    def test_defaults_are_valid(self):
        settings = AdaptiveSettings()
        assert settings.method == "wilson"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_width": 0.0},
            {"alpha": 0.0},
            {"alpha": 1.0},
            {"method": "bayes"},
            {"max_samples": 0},
            {"min_samples": 0},
            {"min_samples": 200, "max_samples": 100},
        ],
    )
    def test_invalid_settings_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveSettings(**kwargs)

    def test_shard_rounds_double_and_cover_the_cap(self):
        settings = AdaptiveSettings(max_samples=1000, min_samples=10)
        rounds = list(shard_rounds(settings, shard_size=100))
        assert rounds == [1, 2, 4, 3]  # 10 shards total, doubling then clipped
        assert sum(rounds) == 10

    def test_shard_rounds_single_round_for_small_caps(self):
        settings = AdaptiveSettings(max_samples=50, min_samples=10)
        assert list(shard_rounds(settings, shard_size=100)) == [1]

    def test_adaptive_methods_match_the_confidence_registry(self):
        from repro.parallel import ADAPTIVE_CI_METHODS
        from repro.reachability.confidence import PROPORTION_INTERVAL_METHODS

        assert set(ADAPTIVE_CI_METHODS) == set(PROPORTION_INTERVAL_METHODS)

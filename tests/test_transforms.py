"""Tests for graph transformations."""

import pytest

from repro.exceptions import VertexNotFoundError
from repro.graph.generators import erdos_renyi_graph, path_graph, star_graph
from repro.graph.transforms import (
    ego_subgraph,
    largest_component_subgraph,
    merge_graphs,
    normalize_weights,
    perturb_probabilities,
    reweight_vertices,
    scale_probabilities,
    set_uniform_weights,
)
from repro.types import Edge


class TestProbabilityTransforms:
    def test_scale_probabilities(self, triangle_graph):
        scaled = scale_probabilities(triangle_graph, 0.5)
        assert scaled.probability(0, 1) == pytest.approx(0.25)
        # original untouched
        assert triangle_graph.probability(0, 1) == 0.5

    def test_scaling_clamps_to_one(self, triangle_graph):
        scaled = scale_probabilities(triangle_graph, 10.0)
        assert all(scaled.probability(e) == 1.0 for e in scaled.edges())

    def test_invalid_factor(self, triangle_graph):
        with pytest.raises(ValueError):
            scale_probabilities(triangle_graph, 0.0)

    def test_perturbation_stays_in_range(self):
        graph = erdos_renyi_graph(40, seed=0)
        noisy = perturb_probabilities(graph, noise=0.2, seed=1)
        assert all(0.0 < noisy.probability(e) <= 1.0 for e in noisy.edges())
        assert noisy.n_edges == graph.n_edges

    def test_zero_noise_is_identity(self, triangle_graph):
        assert perturb_probabilities(triangle_graph, noise=0.0, seed=0) == triangle_graph

    def test_negative_noise_rejected(self, triangle_graph):
        with pytest.raises(ValueError):
            perturb_probabilities(triangle_graph, noise=-0.1)


class TestWeightTransforms:
    def test_uniform_weights(self):
        graph = star_graph(3, weight=5.0)
        uniform = set_uniform_weights(graph, 2.0)
        assert all(uniform.weight(v) == 2.0 for v in uniform.vertices())

    def test_normalize_weights(self):
        graph = path_graph(4, weight=2.0)
        normalized = normalize_weights(graph, total=1.0)
        assert normalized.total_weight() == pytest.approx(1.0)
        assert normalized.weight(0) == pytest.approx(0.25)

    def test_normalize_zero_weights(self):
        graph = path_graph(4, weight=0.0)
        normalized = normalize_weights(graph, total=2.0)
        assert normalized.total_weight() == pytest.approx(2.0)

    def test_reweight_with_function(self):
        graph = path_graph(3)
        reweighted = reweight_vertices(graph, lambda v: v * 10.0)
        assert reweighted.weight(2) == 20.0


class TestStructuralTransforms:
    def test_ego_subgraph_radius(self):
        graph = path_graph(6, probability=0.5)
        ego = ego_subgraph(graph, 0, hops=2)
        assert set(ego.vertices()) == {0, 1, 2}
        assert ego.has_edge(0, 1) and ego.has_edge(1, 2)

    def test_ego_subgraph_zero_hops(self):
        graph = path_graph(4)
        ego = ego_subgraph(graph, 2, hops=0)
        assert set(ego.vertices()) == {2}
        assert ego.n_edges == 0

    def test_ego_subgraph_unknown_center(self, triangle_graph):
        with pytest.raises(VertexNotFoundError):
            ego_subgraph(triangle_graph, 99, 1)
        with pytest.raises(ValueError):
            ego_subgraph(triangle_graph, 0, -1)

    def test_largest_component(self):
        graph = path_graph(4, probability=0.5)
        graph.add_vertex(100)
        graph.add_vertex(101)
        graph.add_edge(100, 101, 0.5)
        largest = largest_component_subgraph(graph)
        assert set(largest.vertices()) == {0, 1, 2, 3}

    def test_merge_graphs(self):
        left = path_graph(3, probability=0.5)
        right = star_graph(2, probability=0.4)
        renamed = reweight_vertices(right, lambda v: 1.0)
        # shift right graph's vertex ids to avoid collision
        shifted = merge_graphs(
            left,
            _shift_ids(renamed, offset=10),
            bridge_edges={Edge(2, 10): 0.9},
        )
        assert shifted.n_vertices == 3 + 3
        assert shifted.has_edge(2, 10)
        assert shifted.probability(2, 10) == 0.9

    def test_merge_rejects_overlapping_ids(self):
        left = path_graph(3)
        right = path_graph(3)
        with pytest.raises(ValueError):
            merge_graphs(left, right)


def _shift_ids(graph, offset):
    from repro.graph.uncertain_graph import UncertainGraph

    shifted = UncertainGraph(name=graph.name)
    for vertex in graph.vertices():
        shifted.add_vertex(vertex + offset, weight=graph.weight(vertex))
    for edge in graph.edges():
        shifted.add_edge(edge.u + offset, edge.v + offset, graph.probability(edge))
    return shifted

"""Tests for the digest-keyed graph layout cache (`repro.reachability.layout`)."""

import numpy as np
import pytest

from repro.digest import graph_digest
from repro.graph.generators import erdos_renyi_graph
from repro.reachability.backends import backend_availability, make_backend
from repro.reachability.engine import SamplingEngine
from repro.reachability.layout import (
    LayoutCache,
    LayoutKey,
    get_default_layout_cache,
    graph_layout,
)
from repro.service.cache import WorldCache


@pytest.fixture
def graph():
    return erdos_renyi_graph(30, average_degree=4, seed=5)


def make_key(**overrides) -> LayoutKey:
    base = dict(graph_digest=1, edges_digest=None)
    base.update(overrides)
    return LayoutKey(**base)


class TestLayoutKey:
    def test_digest_is_stable(self):
        assert make_key().digest == make_key().digest

    def test_every_component_separates_keys(self):
        base = make_key().digest
        assert make_key(graph_digest=2).digest != base
        assert make_key(edges_digest=5).digest != base

    def test_full_graph_differs_from_empty_restriction(self):
        from repro.digest import edge_sequence_digest

        assert make_key(edges_digest=edge_sequence_digest([])).digest != make_key().digest


class TestGraphContentDigest:
    def test_matches_the_pure_function(self, graph):
        assert graph.content_digest() == graph_digest(graph)

    def test_memo_survives_repeated_calls(self, graph):
        assert graph.content_digest() == graph.content_digest()

    def test_every_mutator_moves_the_digest(self, graph):
        before = graph.content_digest()
        graph.set_weight(0, 123.0)
        assert graph.content_digest() != before

        before = graph.content_digest()
        edge = next(iter(graph.edges()))
        graph.set_probability(edge.u, edge.v, 0.123)
        assert graph.content_digest() != before

        before = graph.content_digest()
        graph.add_vertex("new-vertex")
        assert graph.content_digest() != before

        before = graph.content_digest()
        graph.add_edge(0, "new-vertex", 0.5)
        assert graph.content_digest() != before

        before = graph.content_digest()
        graph.remove_edge(0, "new-vertex")
        assert graph.content_digest() != before

        before = graph.content_digest()
        graph.remove_vertex("new-vertex")
        assert graph.content_digest() != before

    def test_copy_shares_the_memo_and_content(self, graph):
        original = graph.content_digest()
        clone = graph.copy()
        assert clone.content_digest() == original
        # mutating the clone must not disturb the original's digest
        clone.set_weight(0, 99.0)
        assert clone.content_digest() != original
        assert graph.content_digest() == original


class TestLayoutCaching:
    def test_same_content_returns_the_same_layout_object(self, graph):
        cache = LayoutCache()
        first = graph_layout(graph, cache=cache)
        second = graph_layout(graph, cache=cache)
        assert first is second
        assert cache.stats()["hits"] == 1.0

    def test_equal_content_hits_across_instances(self, graph):
        cache = LayoutCache()
        first = graph_layout(graph, cache=cache)
        second = graph_layout(graph.copy(), cache=cache)
        assert first is second

    def test_restriction_is_keyed_separately_and_in_order(self, graph):
        cache = LayoutCache()
        edges = graph.edge_list()
        full = graph_layout(graph, cache=cache)
        head = graph_layout(graph, edges=edges[:5], cache=cache)
        reordered = graph_layout(graph, edges=list(reversed(edges[:5])), cache=cache)
        assert head is not full
        assert reordered is not head  # flip order = stream order
        assert len(cache) == 3

    def test_mutation_moves_the_key(self, graph):
        cache = LayoutCache()
        before = graph_layout(graph, cache=cache)
        edge = next(iter(graph.edges()))
        graph.set_probability(edge.u, edge.v, 0.123)
        after = graph_layout(graph, cache=cache)
        assert after is not before
        assert float(after.probabilities.sum()) != float(before.probabilities.sum())

    def test_eviction_order_is_least_recently_used(self, graph):
        cache = LayoutCache(max_entries=2)
        graphs = [erdos_renyi_graph(10, average_degree=3, seed=s) for s in (1, 2, 3)]
        first = graph_layout(graphs[0], cache=cache)
        graph_layout(graphs[1], cache=cache)
        # touch the first entry so the second becomes LRU, then overflow
        assert graph_layout(graphs[0], cache=cache) is first
        graph_layout(graphs[2], cache=cache)
        assert len(cache) == 2
        assert cache.evictions == 1
        kept = [key.graph_digest for key in cache.keys()]
        assert graphs[1].content_digest() not in kept
        assert graphs[0].content_digest() in kept

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            LayoutCache(max_entries=0)

    def test_invalidate_graph_reclaims_entries(self, graph):
        cache = LayoutCache()
        graph_layout(graph, cache=cache)
        graph_layout(graph, edges=graph.edge_list()[:3], cache=cache)
        assert len(cache) == 2
        assert cache.invalidate_graph(graph) == 2
        assert len(cache) == 0
        assert cache.invalidations == 2

    def test_invalidate_by_pre_mutation_digest(self, graph):
        cache = LayoutCache()
        old_digest = graph.content_digest()
        graph_layout(graph, cache=cache)
        graph.set_weight(0, 5.0)
        assert cache.invalidate_graph(graph) == 0
        assert cache.invalidate_graph(old_digest) == 1
        assert len(cache) == 0

    def test_world_cache_invalidation_reaches_the_default_layout_cache(self, graph):
        layout_cache = get_default_layout_cache()
        graph_layout(graph)  # populate the process-wide default
        key = LayoutKey(graph_digest=graph.content_digest(), edges_digest=None)
        assert key in layout_cache
        WorldCache().invalidate_graph(graph)
        assert key not in layout_cache

    def test_engine_reuses_one_layout_across_calls(self, graph):
        cache = get_default_layout_cache()
        engine = SamplingEngine("csr")
        first = engine.sample_worlds(graph, 0, 16, seed=1)
        misses = cache.misses
        second = engine.sample_worlds(graph, 1, 16, seed=2)
        assert cache.misses == misses  # second call re-used the interned layout
        assert first.problem.layout is second.problem.layout


class TestProblemView:
    def test_view_shares_arrays_and_interning(self, graph):
        layout = graph_layout(graph, cache=LayoutCache())
        problem = layout.problem(0)
        assert problem.layout is layout
        assert problem.vertex_ids == layout.vertex_ids
        assert problem.edge_u is layout.edge_u
        assert problem.edge_v is layout.edge_v
        assert problem.probabilities is layout.probabilities
        assert problem.vertex_ids[problem.source] == 0

    def test_unknown_source_and_extras_are_appended(self):
        graph = erdos_renyi_graph(8, average_degree=2, seed=3)
        graph.add_vertex("isolated")
        layout = graph_layout(graph, cache=LayoutCache())
        problem = layout.problem("isolated", extra_vertices=("extra-a", "extra-b"))
        assert problem.vertex_ids[problem.source] == "isolated"
        assert problem.vertex_ids[: layout.n_vertices] == layout.vertex_ids
        assert problem.vertex_ids[layout.n_vertices :] == ("isolated", "extra-a", "extra-b")
        # the layout itself is untouched by the extension
        assert "isolated" not in layout.vertex_ids

    def test_csr_adjacency_is_shared_and_padded(self, graph):
        layout = graph_layout(graph, cache=LayoutCache())
        plain = layout.problem(0)
        assert plain.csr_adjacency() is layout.csr_adjacency()
        extended = layout.problem(0, extra_vertices=("pad",))
        padded = extended.csr_adjacency()
        assert padded.n_vertices == extended.n_vertices
        # appended vertices have empty adjacency rows
        assert padded.indptr[-1] == padded.indptr[layout.n_vertices]
        assert padded.neighbors is layout.csr_adjacency().neighbors

    def test_view_equals_direct_problem_construction(self, graph):
        from repro.reachability.backends.base import SamplingProblem

        pairs = list(graph.probabilities().items())
        direct = SamplingProblem.from_edges(pairs, 0)
        view = graph_layout(graph, cache=LayoutCache()).problem(0)
        assert set(direct.vertex_ids) == set(view.vertex_ids)
        # same edges, same probabilities, possibly different vertex order
        direct_edges = {
            (direct.vertex_ids[u], direct.vertex_ids[v], p)
            for u, v, p in zip(direct.edge_u, direct.edge_v, direct.probabilities)
        }
        view_edges = {
            (view.vertex_ids[u], view.vertex_ids[v], p)
            for u, v, p in zip(view.edge_u, view.edge_v, view.probabilities)
        }
        assert direct_edges == view_edges


class TestRegistryAvailability:
    def test_builtin_backends_are_available(self):
        availability = backend_availability()
        for name in ("naive", "vectorized", "csr"):
            assert availability[name] is None

    def test_csr_numba_is_listed_either_way(self):
        availability = backend_availability()
        assert "csr-numba" in availability
        reason = availability["csr-numba"]
        if reason is not None:
            assert "numba" in reason
            with pytest.raises(ValueError, match="unavailable"):
                make_backend("csr-numba")


class TestCSRBackendEndToEnd:
    def test_csr_matches_naive_through_the_engine(self, graph):
        naive = SamplingEngine("naive").sample_worlds(graph, 0, 64, seed=9)
        csr = SamplingEngine("csr").sample_worlds(graph, 0, 64, seed=9)
        assert naive.problem.vertex_ids == csr.problem.vertex_ids
        assert np.array_equal(naive.reached, csr.reached)

    def test_csr_handles_isolated_source(self):
        graph = erdos_renyi_graph(10, average_degree=2, seed=4)
        graph.add_vertex("lonely")
        batch = SamplingEngine("csr").sample_worlds(graph, "lonely", 8, seed=0)
        only_source = np.zeros(batch.problem.n_vertices, dtype=bool)
        only_source[batch.problem.source] = True
        assert np.array_equal(batch.reached.any(axis=0), only_source)

"""Tests for confidence intervals (Definition 10) and the normal quantile."""

import pytest
from scipy import stats as scipy_stats

from repro.reachability.confidence import (
    ConfidenceInterval,
    flow_confidence_interval,
    normal_confidence_interval,
    standard_normal_quantile,
    wilson_confidence_interval,
)


class TestNormalQuantile:
    @pytest.mark.parametrize("p", [0.005, 0.025, 0.05, 0.25, 0.5, 0.75, 0.95, 0.975, 0.995])
    def test_matches_scipy(self, p):
        assert standard_normal_quantile(p) == pytest.approx(scipy_stats.norm.ppf(p), abs=1e-6)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            standard_normal_quantile(0.0)
        with pytest.raises(ValueError):
            standard_normal_quantile(1.0)


class TestIntervals:
    def test_normal_interval_contains_estimate(self):
        interval = normal_confidence_interval(40, 100, alpha=0.01)
        assert interval.lower <= 0.4 <= interval.upper
        assert interval.estimate == pytest.approx(0.4)

    def test_interval_shrinks_with_samples(self):
        wide = normal_confidence_interval(40, 100, alpha=0.01)
        narrow = normal_confidence_interval(400, 1000, alpha=0.01)
        assert narrow.width < wide.width

    def test_extreme_fractions_are_clamped(self):
        zero = normal_confidence_interval(0, 50)
        one = normal_confidence_interval(50, 50)
        assert zero.lower == 0.0
        assert one.upper == 1.0

    def test_wilson_interval_is_valid(self):
        interval = wilson_confidence_interval(5, 50, alpha=0.05)
        assert 0.0 <= interval.lower <= interval.estimate <= interval.upper <= 1.0

    def test_wilson_handles_zero_successes(self):
        interval = wilson_confidence_interval(0, 30)
        assert interval.lower == 0.0
        assert interval.upper > 0.0

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            normal_confidence_interval(5, 0)
        with pytest.raises(ValueError):
            normal_confidence_interval(-1, 10)
        with pytest.raises(ValueError):
            normal_confidence_interval(11, 10)

    def test_dominates(self):
        low = ConfidenceInterval(estimate=0.2, lower=0.1, upper=0.3, alpha=0.01)
        high = ConfidenceInterval(estimate=0.8, lower=0.7, upper=0.9, alpha=0.01)
        assert high.dominates(low)
        assert not low.dominates(high)

    def test_contains(self):
        interval = ConfidenceInterval(estimate=0.5, lower=0.4, upper=0.6, alpha=0.01)
        assert interval.contains(0.45)
        assert not interval.contains(0.7)

    def test_inconsistent_interval_rejected(self):
        with pytest.raises(ValueError):
            ConfidenceInterval(estimate=0.9, lower=0.1, upper=0.5, alpha=0.01)

    def test_coverage_of_normal_interval(self):
        """~99% of binomial draws should fall inside their own 99% interval."""
        import numpy as np

        rng = np.random.default_rng(0)
        p_true, n = 0.3, 200
        covered = 0
        trials = 300
        for _ in range(trials):
            successes = int(rng.binomial(n, p_true))
            interval = normal_confidence_interval(successes, n, alpha=0.01)
            if interval.lower <= p_true <= interval.upper:
                covered += 1
        assert covered / trials >= 0.95


class TestFlowInterval:
    def test_aggregation_with_weights(self):
        interval = flow_confidence_interval(
            reachability_counts={"a": 50, "b": 100},
            n_samples=100,
            weights={"a": 2.0, "b": 1.0},
            alpha=0.01,
        )
        assert interval.estimate == pytest.approx(0.5 * 2.0 + 1.0 * 1.0)
        assert interval.lower <= interval.estimate <= interval.upper

    def test_exact_contribution_is_added(self):
        interval = flow_confidence_interval(
            reachability_counts={}, n_samples=10, weights={}, exact_contribution=3.5
        )
        assert interval.lower == interval.upper == interval.estimate == pytest.approx(3.5)

    def test_wilson_method_selectable(self):
        interval = flow_confidence_interval(
            reachability_counts={"a": 5}, n_samples=50, weights={"a": 1.0}, method="wilson"
        )
        assert interval.lower >= 0.0

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            flow_confidence_interval({}, 10, {}, method="bogus")

"""Tests for the F-tree greedy selector and its heuristics (FT, FT+M, FT+M+CI, FT+M+DS)."""

import pytest

from repro.graph.generators import erdos_renyi_graph, partitioned_graph, path_graph, star_graph
from repro.reachability.exact import exact_expected_flow
from repro.selection.dijkstra_tree import DijkstraSelector
from repro.selection.exact_optimal import exhaustive_optimal_selection
from repro.selection.ftree_greedy import FTreeGreedySelector
from repro.selection.registry import ALGORITHM_NAMES, make_selector
from repro.types import Edge


def _selector(**kwargs) -> FTreeGreedySelector:
    defaults = dict(n_samples=80, exact_threshold=12, seed=0)
    defaults.update(kwargs)
    return FTreeGreedySelector(**defaults)


class TestBasicBehaviour:
    def test_respects_budget(self, random_graph):
        result = _selector().select(random_graph, 0, 9)
        assert result.n_selected == 9
        assert len(result.iterations) == 9

    def test_selected_edges_form_connected_subgraph(self, random_graph):
        result = _selector().select(random_graph, 0, 12)
        connected = {0}
        for edge in result.selected_edges:
            assert edge.u in connected or edge.v in connected
            connected.update(edge.endpoints())

    def test_stops_when_graph_is_exhausted(self):
        graph = path_graph(4, probability=0.5)
        result = _selector().select(graph, 0, 50)
        assert result.n_selected == 3

    def test_zero_budget(self, random_graph):
        result = _selector().select(random_graph, 0, 0)
        assert result.n_selected == 0
        assert result.expected_flow == 0.0

    def test_greedy_picks_clearly_best_edge_first(self):
        graph = star_graph(3, probability=0.2)
        graph.set_probability(0, 2, 0.95)
        result = _selector().select(graph, 0, 1)
        assert result.selected_edges == [Edge(0, 2)]

    def test_name_reflects_heuristics(self):
        assert _selector().name == "FT"
        assert _selector(memoize=True).name == "FT+M"
        assert _selector(memoize=True, confidence=True).name == "FT+M+CI"
        assert _selector(memoize=True, delayed=True).name == "FT+M+DS"
        assert _selector(memoize=True, confidence=True, delayed=True).name == "FT+M+CI+DS"

    def test_invalid_delay_base(self):
        with pytest.raises(ValueError):
            _selector(delayed=True, delay_base=1.0)


class TestQuality:
    def test_matches_optimum_on_tiny_graph(self):
        graph = erdos_renyi_graph(7, average_degree=2.5, seed=4)
        budget = 4
        optimal = exhaustive_optimal_selection(graph, 0, budget)
        greedy = _selector(exact_threshold=20).select(graph, 0, budget)
        greedy_exact_flow = exact_expected_flow(
            graph, 0, edges=greedy.selected_edges
        ).expected_flow
        # the greedy result must reach at least 80% of the optimum on tiny instances
        assert greedy_exact_flow >= 0.8 * optimal.expected_flow - 1e-9

    def test_beats_dijkstra_on_locality_graph(self):
        graph = partitioned_graph(120, degree=4, seed=3)
        budget = 15
        ft = _selector(memoize=True, n_samples=120).select(graph, 0, budget)
        dijkstra = DijkstraSelector().select(graph, 0, budget)
        ft_flow = exact_expected_flow(graph, 0, edges=ft.selected_edges, limit=25).expected_flow \
            if len(ft.selected_edges) <= 25 else ft.expected_flow
        # compare with each selector's own consistent estimate: FT must not be worse
        assert ft.expected_flow >= dijkstra.expected_flow - 1e-6

    def test_flow_is_monotone_over_iterations(self, random_graph):
        result = _selector().select(random_graph, 0, 8)
        flows = [iteration.flow_after for iteration in result.iterations]
        assert all(b >= a - 1e-9 for a, b in zip(flows, flows[1:]))


class TestMemoization:
    def test_memo_statistics_reported(self, random_graph):
        result = _selector(memoize=True).select(random_graph, 0, 10)
        assert "memo_hits" in result.extras
        assert result.extras["memo_hit_rate"] >= 0.0

    def test_memoization_does_not_change_selected_edges(self):
        graph = erdos_renyi_graph(30, average_degree=4, seed=6)
        plain = _selector(exact_threshold=16, seed=1).select(graph, 0, 8)
        memoized = _selector(exact_threshold=16, memoize=True, seed=1).select(graph, 0, 8)
        # with exact component evaluation the two must agree exactly
        assert plain.selected_edges == memoized.selected_edges
        assert plain.expected_flow == pytest.approx(memoized.expected_flow)


class TestConfidencePruning:
    def test_ci_variant_runs_and_reports_pruning(self):
        graph = erdos_renyi_graph(30, average_degree=5, seed=7)
        result = _selector(memoize=True, confidence=True, exact_threshold=0, n_samples=60).select(
            graph, 0, 6
        )
        assert result.n_selected == 6
        assert "pruned_candidates" in result.extras

    def test_ci_with_exact_components_matches_plain_ft(self):
        graph = erdos_renyi_graph(25, average_degree=4, seed=8)
        plain = _selector(exact_threshold=16, seed=2).select(graph, 0, 6)
        with_ci = _selector(exact_threshold=16, confidence=True, memoize=True, seed=2).select(
            graph, 0, 6
        )
        # exact evaluation means the CI never prunes a better candidate
        assert with_ci.expected_flow == pytest.approx(plain.expected_flow, rel=1e-6)


class TestDelayedSampling:
    def test_ds_variant_respects_budget(self):
        graph = erdos_renyi_graph(40, average_degree=5, seed=9)
        result = _selector(memoize=True, delayed=True, exact_threshold=4, n_samples=50).select(
            graph, 0, 10
        )
        assert result.n_selected == 10
        assert result.extras["delayed_candidates"] >= 0.0

    def test_small_delay_base_still_terminates(self):
        graph = erdos_renyi_graph(25, average_degree=4, seed=10)
        result = _selector(
            memoize=True, delayed=True, delay_base=1.05, exact_threshold=2, n_samples=40
        ).select(graph, 0, 8)
        assert result.n_selected == 8


class TestRegistry:
    def test_all_names_build(self):
        for name in ALGORITHM_NAMES:
            selector = make_selector(name, n_samples=20, seed=0)
            assert selector.name == name or name == "Random"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_selector("definitely-not-an-algorithm")

    def test_all_algorithms_run_on_small_graph(self):
        graph = erdos_renyi_graph(20, average_degree=3, seed=11)
        for name in ALGORITHM_NAMES:
            samples = 20 if name == "Naive" else 40
            result = make_selector(name, n_samples=samples, seed=1).select(graph, 0, 4)
            assert result.n_selected <= 4
            assert result.expected_flow >= 0.0

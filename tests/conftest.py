"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.ftree.sampler import ComponentSampler
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)
from repro.graph.uncertain_graph import UncertainGraph


@pytest.fixture
def triangle_graph() -> UncertainGraph:
    """A triangle 0-1-2 with per-edge probabilities 0.5, 0.6, 0.7."""
    graph = UncertainGraph(name="triangle")
    for vertex in range(3):
        graph.add_vertex(vertex, weight=1.0)
    graph.add_edge(0, 1, 0.5)
    graph.add_edge(1, 2, 0.6)
    graph.add_edge(2, 0, 0.7)
    return graph


@pytest.fixture
def small_path() -> UncertainGraph:
    """A 4-vertex path with edge probability 0.5 and unit weights."""
    return path_graph(4, probability=0.5)


@pytest.fixture
def five_cycle() -> UncertainGraph:
    """A 5-vertex cycle with edge probability 0.5 and unit weights."""
    return cycle_graph(5, probability=0.5)


@pytest.fixture
def lollipop_graph() -> UncertainGraph:
    """A triangle {0,1,2} with a path 2-3-4 hanging off it (probability 0.5)."""
    graph = UncertainGraph(name="lollipop")
    for vertex in range(5):
        graph.add_vertex(vertex, weight=float(vertex + 1))
    for u, v in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]:
        graph.add_edge(u, v, 0.5)
    return graph


@pytest.fixture
def random_graph() -> UncertainGraph:
    """A reproducible 40-vertex Erdős graph for selection tests."""
    return erdos_renyi_graph(40, average_degree=4.0, seed=11)


@pytest.fixture
def exact_sampler() -> ComponentSampler:
    """A sampler that evaluates every (small) component exactly — deterministic tests."""
    return ComponentSampler(n_samples=10, exact_threshold=18, seed=0)


@pytest.fixture
def star_five() -> UncertainGraph:
    """A star with 5 leaves, probability 0.5."""
    return star_graph(5, probability=0.5)


@pytest.fixture
def dense_graph() -> UncertainGraph:
    """A complete graph on 5 vertices with probability 0.4."""
    return complete_graph(5, probability=0.4)

"""Tests for candidate-edge (frontier) management."""

import pytest

from repro.exceptions import VertexNotFoundError
from repro.graph.generators import path_graph
from repro.selection.candidates import CandidateManager
from repro.types import Edge


class TestCandidateManager:
    def test_initial_candidates_are_query_incident_edges(self, star_five):
        manager = CandidateManager(star_five, 0)
        assert set(manager.candidates()) == set(star_five.incident_edges(0))
        assert len(manager) == 5

    def test_unknown_query_rejected(self, star_five):
        with pytest.raises(VertexNotFoundError):
            CandidateManager(star_five, 99)

    def test_selection_expands_frontier(self):
        graph = path_graph(4, probability=0.5)
        manager = CandidateManager(graph, 0)
        assert manager.candidates() == [Edge(0, 1)]
        newly = manager.mark_selected(Edge(0, 1))
        assert newly == {1}
        assert manager.candidates() == [Edge(1, 2)]

    def test_connected_vertices_tracking(self):
        graph = path_graph(3, probability=0.5)
        manager = CandidateManager(graph, 0)
        manager.mark_selected(Edge(0, 1))
        assert manager.connected_vertices == {0, 1}
        assert manager.selected_edges == {Edge(0, 1)}

    def test_selecting_non_candidate_rejected(self):
        graph = path_graph(4, probability=0.5)
        manager = CandidateManager(graph, 0)
        with pytest.raises(ValueError):
            manager.mark_selected(Edge(2, 3))

    def test_cycle_closing_edge_removed_from_frontier(self, triangle_graph):
        manager = CandidateManager(triangle_graph, 0)
        manager.mark_selected(Edge(0, 1))
        manager.mark_selected(Edge(0, 2))
        # the remaining candidate closes the cycle; once selected nothing is left
        assert manager.candidates() == [Edge(1, 2)]
        newly = manager.mark_selected(Edge(1, 2))
        assert newly == set()
        assert not manager.has_candidates()

    def test_iteration_and_contains(self, star_five):
        manager = CandidateManager(star_five, 0)
        assert Edge(0, 1) in manager
        assert sorted(manager, key=repr) == sorted(manager.candidates(), key=repr)

    def test_isolated_query_has_no_candidates(self, star_five):
        star_five.add_vertex(99)
        manager = CandidateManager(star_five, 99)
        assert not manager.has_candidates()

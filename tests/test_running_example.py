"""Tests for the reproduction of the paper's worked examples (Figures 1 and 3)."""

import pytest

from repro.experiments.running_example import (
    QUERY,
    example1_graph,
    example1_report,
    ftree_example_graph,
    ftree_example_insertion_order,
    ftree_example_report,
)
from repro.graph.validation import validate_graph
from repro.reachability.exact import exact_expected_flow


class TestExample1:
    def test_graph_shape(self):
        graph = example1_graph()
        validate_graph(graph)
        assert graph.n_vertices == 7
        assert graph.n_edges == 10
        assert all(graph.weight(v) == 1.0 for v in graph.vertices())

    def test_probability_multiset_matches_equation_1(self):
        graph = example1_graph()
        probabilities = sorted(graph.probability(e) for e in graph.edges())
        assert probabilities == sorted([0.6, 0.5, 0.8, 0.4, 0.4, 0.5, 0.1, 0.3, 0.4, 0.1])

    def test_report_reproduces_qualitative_claims(self):
        report = example1_report()
        # activating everything gives the highest flow
        assert report.flow_all_edges >= report.flow_optimal_five
        # the Dijkstra MST uses six edges (all 7 vertices reachable)
        assert report.dijkstra_edges == 6
        # five well-chosen edges dominate the six-edge spanning tree (Example 1's point)
        assert report.optimal_dominates_dijkstra
        assert len(report.optimal_edges) == 5

    def test_flow_values_are_in_paper_ballpark(self):
        """Shape check: same ordering and rough magnitudes as the paper's 2.51 / 1.59 / 2.02."""
        report = example1_report()
        assert 2.0 <= report.flow_all_edges <= 3.2
        assert 1.2 <= report.flow_dijkstra_tree <= 2.2
        assert report.flow_dijkstra_tree < report.flow_optimal_five <= report.flow_all_edges


class TestFigure3Example:
    def test_graph_structure(self):
        graph = ftree_example_graph()
        validate_graph(graph)
        assert graph.n_vertices == 17
        assert graph.weight(7) == 7.0
        assert graph.weight(QUERY) == 0.0

    def test_insertion_order_is_connected(self):
        graph = ftree_example_graph()
        order = ftree_example_insertion_order()
        assert len(order) == graph.n_edges
        connected = {QUERY}
        for edge in order:
            assert edge.u in connected or edge.v in connected
            connected.update(edge.endpoints())

    def test_report_exact_agreement(self):
        report = ftree_example_report()
        assert report.agreement == pytest.approx(0.0, abs=1e-12)
        assert report.n_components == 6
        assert report.n_bi_components == 3

    def test_component_a_flow_matches_example_2(self):
        """The mono component A = ({1,2,3,6}, Q) contributes 5.75 exactly as in the paper."""
        graph = ftree_example_graph()
        component_a_edges = [(QUERY, 2), (QUERY, 3), (QUERY, 6), (2, 1)]
        flow = exact_expected_flow(graph, QUERY, edges=[
            e for e in graph.edges() if (e.u, e.v) in component_a_edges or (e.v, e.u) in component_a_edges
        ]).expected_flow
        assert flow == pytest.approx(5.75)

    def test_custom_edge_probability(self):
        graph = ftree_example_graph(edge_probability=0.9)
        assert all(graph.probability(e) == 0.9 for e in graph.edges())

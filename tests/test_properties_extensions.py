"""Property-based tests for the extension modules (factoring, transforms, lazy greedy)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.transforms import (
    ego_subgraph,
    normalize_weights,
    perturb_probabilities,
    scale_probabilities,
    set_uniform_weights,
)
from repro.graph.uncertain_graph import UncertainGraph
from repro.reachability.exact import exact_expected_flow, exact_reachability
from repro.reachability.factoring import two_terminal_reliability
from repro.complexity import (
    KnapsackInstance,
    solve_knapsack_dynamic_programming,
    solve_knapsack_via_maxflow,
)


@st.composite
def uncertain_graphs(draw) -> UncertainGraph:
    n_vertices = draw(st.integers(min_value=2, max_value=7))
    graph = UncertainGraph()
    for vertex in range(n_vertices):
        graph.add_vertex(vertex, weight=draw(st.sampled_from([0.5, 1.0, 2.0])))
    possible = [(u, v) for u in range(n_vertices) for v in range(u + 1, n_vertices)]
    n_edges = draw(st.integers(min_value=1, max_value=min(10, len(possible))))
    chosen = draw(
        st.lists(st.sampled_from(possible), min_size=n_edges, max_size=n_edges, unique=True)
    )
    for u, v in chosen:
        graph.add_edge(u, v, draw(st.floats(min_value=0.05, max_value=1.0)))
    return graph


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(uncertain_graphs(), st.integers(min_value=1, max_value=6))
def test_factoring_matches_enumeration(graph, target):
    """Contraction/deletion reliability equals brute-force possible-world enumeration."""
    if not graph.has_vertex(target):
        target = 1
    expected = exact_reachability(graph, 0, target).probability
    assert two_terminal_reliability(graph, 0, target) == pytest.approx(expected, abs=1e-9)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(uncertain_graphs(), st.floats(min_value=0.1, max_value=1.0))
def test_scaling_probabilities_down_never_increases_flow(graph, factor):
    """Lowering every edge probability can only lower the expected flow."""
    scaled = scale_probabilities(graph, factor)
    original = exact_expected_flow(graph, 0).expected_flow
    reduced = exact_expected_flow(scaled, 0).expected_flow
    assert reduced <= original + 1e-9


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(uncertain_graphs())
def test_uniform_weight_flow_equals_expected_reached_count(graph):
    """With unit weights the expected flow equals the expected number of reached vertices."""
    uniform = set_uniform_weights(graph, 1.0)
    flow = exact_expected_flow(uniform, 0).expected_flow
    reach = exact_expected_flow(uniform, 0).reachability
    assert flow == pytest.approx(sum(reach.values()))
    assert 0.0 <= flow <= graph.n_vertices - 1


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(uncertain_graphs())
def test_normalize_weights_preserves_reachability(graph):
    """Normalising weights rescales the flow but never the reachability probabilities."""
    normalized = normalize_weights(graph, total=1.0)
    original = exact_expected_flow(graph, 0).reachability
    rescaled = exact_expected_flow(normalized, 0).reachability
    for vertex, probability in original.items():
        assert rescaled[vertex] == pytest.approx(probability)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(uncertain_graphs(), st.integers(min_value=0, max_value=3))
def test_ego_subgraph_is_contained_in_graph(graph, hops):
    ego = ego_subgraph(graph, 0, hops)
    assert set(ego.vertices()) <= set(graph.vertices())
    for edge in ego.edges():
        assert graph.has_edge(edge.u, edge.v)
        assert ego.probability(edge) == graph.probability(edge)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(uncertain_graphs(), st.floats(min_value=0.0, max_value=0.3))
def test_perturbation_preserves_topology(graph, noise):
    noisy = perturb_probabilities(graph, noise=noise, seed=0)
    assert set(noisy.edges()) == set(graph.edges())
    assert noisy.weights() == graph.weights()


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=9)),
        min_size=1,
        max_size=4,
    ),
    st.integers(min_value=0, max_value=8),
)
def test_knapsack_reduction_matches_dynamic_programming(raw_items, capacity):
    """Solving the MaxFlow gadget always yields the optimal knapsack value."""
    items = [(f"item{i}", weight, float(value)) for i, (weight, value) in enumerate(raw_items)]
    total_weight = sum(weight for _, weight, _ in items)
    if total_weight > 12:  # keep the exhaustive edge-subset search tiny
        items = items[:2]
    instance = KnapsackInstance.from_tuples(items, capacity)
    _, via_maxflow = solve_knapsack_via_maxflow(instance)
    _, via_dp = solve_knapsack_dynamic_programming(instance)
    assert via_maxflow == pytest.approx(via_dp)

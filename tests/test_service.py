"""Tests for the batched multi-query evaluation service (`repro.service`).

The heart of the suite is the determinism contract pinned by the ISSUE:
batched (and cached) answers are **bit-for-bit identical** to the
corresponding single-query estimator outputs per ``(seed, backend,
shard plan)``.
"""

import pytest

from repro.graph.generators import erdos_renyi_graph
from repro.parallel.executor import SerialExecutor
from repro.reachability.backends import BACKEND_NAMES
from repro.reachability.monte_carlo import (
    monte_carlo_component_reachability,
    monte_carlo_expected_flow,
    monte_carlo_reachability,
)
from repro.service import (
    BatchEvaluator,
    QueryRequest,
    WorldCache,
    request_from_dict,
    request_to_dict,
    result_to_dict,
)
from repro.types import Edge

N_SAMPLES = 150
SEED = 11


@pytest.fixture
def graph():
    return erdos_renyi_graph(50, average_degree=4, seed=4)


def small_component(graph):
    """A real edge of the graph plus its endpoints, as a component query."""
    edge = next(iter(graph.edges()))
    return edge.u, (edge.u, edge.v), (edge,)


class TestRequestValidation:
    def test_kind_must_be_known(self):
        with pytest.raises(ValueError):
            QueryRequest(kind="nope", source=0)

    def test_pair_needs_target(self):
        with pytest.raises(ValueError):
            QueryRequest(kind="pair_reachability", source=0)

    def test_component_needs_edges_and_vertices(self):
        with pytest.raises(ValueError):
            QueryRequest(kind="component_reachability", source=0, targets=(1,))
        with pytest.raises(ValueError):
            QueryRequest(kind="component_reachability", source=0, edges=(Edge(0, 1),))

    def test_flow_rejects_pair_fields(self):
        with pytest.raises(ValueError):
            QueryRequest(kind="expected_flow", source=0, target=1)

    def test_seed_must_be_a_plain_integer(self):
        with pytest.raises(TypeError):
            QueryRequest(kind="expected_flow", source=0, seed=None)
        with pytest.raises(TypeError):
            QueryRequest(kind="expected_flow", source=0, seed=True)

    def test_n_samples_must_be_positive(self):
        with pytest.raises(ValueError):
            QueryRequest(kind="expected_flow", source=0, n_samples=0)

    def test_unknown_vertices_raise_like_single_query(self, graph):
        from repro.exceptions import VertexNotFoundError

        evaluator = BatchEvaluator(cache=0)
        with pytest.raises(VertexNotFoundError):
            evaluator.evaluate_one(
                graph, QueryRequest(kind="expected_flow", source="ghost", n_samples=10)
            )
        with pytest.raises(VertexNotFoundError):
            evaluator.evaluate_one(
                graph,
                QueryRequest(
                    kind="pair_reachability", source=0, target="ghost", n_samples=10
                ),
            )


class TestBitForBitEquality:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_expected_flow_matches_single_query(self, graph, backend):
        request = QueryRequest(
            kind="expected_flow", source=0, n_samples=N_SAMPLES, seed=SEED
        )
        batched = BatchEvaluator(backend=backend, cache=0).evaluate_one(graph, request)
        single = monte_carlo_expected_flow(
            graph, 0, n_samples=N_SAMPLES, seed=SEED, backend=backend
        )
        assert batched.flow == single

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_pair_reachability_matches_single_query(self, graph, backend):
        request = QueryRequest(
            kind="pair_reachability", source=0, target=7, n_samples=N_SAMPLES, seed=SEED
        )
        batched = BatchEvaluator(backend=backend, cache=0).evaluate_one(graph, request)
        single = monte_carlo_reachability(
            graph, 0, 7, n_samples=N_SAMPLES, seed=SEED, backend=backend
        )
        assert batched.reachability == single

    def test_component_reachability_matches_single_query(self, graph):
        anchor, vertices, edges = small_component(graph)
        request = QueryRequest(
            kind="component_reachability",
            source=anchor,
            targets=vertices,
            edges=edges,
            n_samples=N_SAMPLES,
            seed=SEED,
        )
        batched = BatchEvaluator(cache=0).evaluate_one(graph, request)
        single = monte_carlo_component_reachability(
            graph, anchor, list(vertices), list(edges), n_samples=N_SAMPLES, seed=SEED
        )
        assert batched.probabilities == single

    def test_isolated_pair_target_matches_single_query(self, graph):
        # a vertex with no incident edge inside the restriction: the
        # single-query path gives it an always-False extra column, the
        # pooled batch has no column at all — answers must still agree
        graph.add_vertex("isolated")
        request = QueryRequest(
            kind="pair_reachability",
            source=0,
            target="isolated",
            n_samples=N_SAMPLES,
            seed=SEED,
        )
        batched = BatchEvaluator(cache=0).evaluate_one(graph, request)
        single = monte_carlo_reachability(
            graph, 0, "isolated", n_samples=N_SAMPLES, seed=SEED
        )
        assert batched.reachability == single
        assert batched.reachability.probability == 0.0

    def test_source_equals_target_is_trivially_certain(self, graph):
        request = QueryRequest(
            kind="pair_reachability", source=3, target=3, n_samples=N_SAMPLES, seed=SEED
        )
        evaluator = BatchEvaluator(cache=WorldCache())
        result = evaluator.evaluate_one(graph, request)
        single = monte_carlo_reachability(graph, 3, 3, n_samples=N_SAMPLES, seed=SEED)
        assert result.reachability == single
        assert result.reachability.probability == 1.0
        assert evaluator.batches_sampled == 0  # no worlds were drawn

    def test_edge_restricted_flow_matches_single_query(self, graph):
        edges = tuple(graph.edges())[:10]
        request = QueryRequest(
            kind="expected_flow", source=0, edges=edges, n_samples=N_SAMPLES, seed=SEED
        )
        batched = BatchEvaluator(cache=0).evaluate_one(graph, request)
        single = monte_carlo_expected_flow(
            graph, 0, n_samples=N_SAMPLES, seed=SEED, edges=list(edges)
        )
        assert batched.flow == single

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_sharded_plan_matches_single_query(self, graph, backend):
        executor = SerialExecutor()
        request = QueryRequest(
            kind="expected_flow", source=0, n_samples=N_SAMPLES, seed=SEED
        )
        batched = BatchEvaluator(
            backend=backend, executor=executor, shard_size=32, cache=0
        ).evaluate_one(graph, request)
        single = monte_carlo_expected_flow(
            graph,
            0,
            n_samples=N_SAMPLES,
            seed=SEED,
            backend=backend,
            executor=executor,
            shard_size=32,
        )
        assert batched.flow == single

    def test_cached_answers_stay_bit_for_bit(self, graph):
        evaluator = BatchEvaluator(cache=WorldCache())
        request = QueryRequest(
            kind="expected_flow", source=0, n_samples=N_SAMPLES, seed=SEED
        )
        first = evaluator.evaluate_one(graph, request)
        second = evaluator.evaluate_one(graph, request)
        single = monte_carlo_expected_flow(graph, 0, n_samples=N_SAMPLES, seed=SEED)
        assert second.from_cache
        assert first.flow == second.flow == single


class TestBatchingAndGrouping:
    def test_mixed_batch_shares_one_world_batch(self, graph):
        anchor, vertices, edges = small_component(graph)
        requests = [
            QueryRequest(kind="expected_flow", source=0, n_samples=N_SAMPLES, seed=SEED),
            QueryRequest(
                kind="pair_reachability", source=0, target=9, n_samples=N_SAMPLES, seed=SEED
            ),
            QueryRequest(
                kind="pair_reachability", source=0, target=13, n_samples=N_SAMPLES, seed=SEED
            ),
            QueryRequest(
                kind="component_reachability",
                source=anchor,
                targets=vertices,
                edges=edges,
                n_samples=N_SAMPLES,
                seed=SEED,
            ),
        ]
        evaluator = BatchEvaluator(cache=0)
        plan = evaluator.plan(graph, requests)
        # the three full-graph source-0 requests share one group; the
        # edge-restricted component query needs its own batch
        assert len(plan.groups) == 2
        assert plan.amortization == 2.0
        results = evaluator.evaluate(graph, requests)
        assert evaluator.batches_sampled == 2
        # all requests of one group carry the same world digest
        assert results[0].world_digest == results[1].world_digest == results[2].world_digest
        assert results[3].world_digest != results[0].world_digest
        # and every answer equals its single-query counterpart
        assert results[0].flow == monte_carlo_expected_flow(
            graph, 0, n_samples=N_SAMPLES, seed=SEED
        )
        assert results[1].reachability == monte_carlo_reachability(
            graph, 0, 9, n_samples=N_SAMPLES, seed=SEED
        )
        assert results[2].reachability == monte_carlo_reachability(
            graph, 0, 13, n_samples=N_SAMPLES, seed=SEED
        )

    def test_results_align_with_request_order(self, graph):
        requests = [
            QueryRequest(kind="pair_reachability", source=0, target=t,
                         n_samples=60, seed=SEED)
            for t in (9, 3, 3, 9)
        ] + [QueryRequest(kind="pair_reachability", source=3, target=3,
                          n_samples=60, seed=SEED)]
        results = BatchEvaluator(cache=0).evaluate(graph, requests)
        assert [r.request.target for r in results] == [9, 3, 3, 9, 3]
        assert results[4].reachability.probability == 1.0

    def test_different_seeds_do_not_group(self, graph):
        requests = [
            QueryRequest(kind="expected_flow", source=0, n_samples=60, seed=seed)
            for seed in (1, 2)
        ]
        plan = BatchEvaluator(cache=0).plan(graph, requests)
        assert len(plan.groups) == 2

    def test_request_backend_override_separates_groups(self, graph):
        requests = [
            QueryRequest(kind="expected_flow", source=0, n_samples=60, seed=1,
                         backend="naive"),
            QueryRequest(kind="expected_flow", source=0, n_samples=60, seed=1,
                         backend="vectorized"),
        ]
        evaluator = BatchEvaluator(cache=0)
        plan = evaluator.plan(graph, requests)
        assert len(plan.groups) == 2
        results = evaluator.evaluate(graph, requests)
        # the two built-in backends are pinned bit-for-bit identical
        assert results[0].flow == results[1].flow

    def test_warm_then_evaluate_serves_everything_from_cache(self, graph):
        evaluator = BatchEvaluator(cache=WorldCache())
        requests = [
            QueryRequest(kind="expected_flow", source=0, n_samples=60, seed=1),
            QueryRequest(kind="pair_reachability", source=0, target=5,
                         n_samples=60, seed=1),
            QueryRequest(kind="expected_flow", source=1, n_samples=60, seed=1),
        ]
        stats = evaluator.warm(graph, requests)
        assert stats["entries"] == 2.0
        results = evaluator.evaluate(graph, requests)
        assert all(result.from_cache for result in results)

    def test_warm_without_cache_is_a_noop(self, graph):
        evaluator = BatchEvaluator(cache=0)
        assert evaluator.warm(
            graph, [QueryRequest(kind="expected_flow", source=0, n_samples=60, seed=1)]
        ) == {}
        assert evaluator.batches_sampled == 0


class TestWireFormat:
    def test_request_round_trip(self, graph):
        anchor, vertices, edges = small_component(graph)
        requests = [
            QueryRequest(kind="expected_flow", source=0, n_samples=70, seed=3),
            QueryRequest(kind="pair_reachability", source=0, target=5,
                         n_samples=70, seed=3, backend="naive"),
            QueryRequest(kind="component_reachability", source=anchor,
                         targets=vertices, edges=edges, n_samples=70, seed=3),
        ]
        for request in requests:
            assert request_from_dict(request_to_dict(request), graph=graph) == request

    def test_kind_aliases(self):
        assert request_from_dict({"kind": "flow", "query": 0}).kind == "expected_flow"
        assert (
            request_from_dict({"kind": "pair", "source": 0, "target": 1}).kind
            == "pair_reachability"
        )

    def test_field_aliases_resolve(self):
        assert request_from_dict({"kind": "flow", "source": 3}).source == 3
        assert request_from_dict({"kind": "flow", "query": 0, "samples": 25}).n_samples == 25

    def test_conflicting_aliases_are_rejected(self):
        # a request naming both spellings is ambiguous, not a typo to
        # silently resolve one way or the other
        with pytest.raises(ValueError, match="alias"):
            request_from_dict({"kind": "flow", "query": 0, "source": 5})
        with pytest.raises(ValueError, match="alias"):
            request_from_dict({"kind": "flow", "query": 0, "n_samples": 10, "samples": 20})
        with pytest.raises(ValueError, match="alias"):
            request_from_dict(
                {"kind": "component", "anchor": 1, "source": 2,
                 "vertices": [2], "edges": [[1, 2]]}
            )

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(ValueError):
            request_from_dict({"kind": "flow", "query": 0, "n_sample": 10})

    def test_defaults_apply(self):
        request = request_from_dict(
            {"kind": "flow", "query": 0}, default_n_samples=42, default_seed=9
        )
        assert request.n_samples == 42
        assert request.seed == 9

    def test_result_to_dict_shapes(self, graph):
        anchor, vertices, edges = small_component(graph)
        evaluator = BatchEvaluator(cache=0)
        flow = evaluator.evaluate_one(
            graph, QueryRequest(kind="expected_flow", source=0, n_samples=60, seed=1)
        )
        payload = result_to_dict(flow)
        assert payload["kind"] == "expected_flow"
        assert payload["expected_flow"] == flow.flow.expected_flow
        component = evaluator.evaluate_one(
            graph,
            QueryRequest(kind="component_reachability", source=anchor,
                         targets=vertices, edges=edges, n_samples=60, seed=1),
        )
        payload = result_to_dict(component)
        assert set(payload["probabilities"]) == {str(v) for v in vertices if v != anchor}


class TestLifecycle:
    def test_owned_executor_is_closed(self, graph):
        evaluator = BatchEvaluator(executor=1)  # int spec -> evaluator owns it
        evaluator.evaluate_one(
            graph, QueryRequest(kind="expected_flow", source=0, n_samples=60, seed=1)
        )
        assert evaluator._executor is not None
        evaluator.close()
        assert evaluator._executor is None

    def test_shared_executor_is_left_open(self, graph):
        executor = SerialExecutor()
        with BatchEvaluator(executor=executor) as evaluator:
            evaluator.evaluate_one(
                graph, QueryRequest(kind="expected_flow", source=0, n_samples=60, seed=1)
            )
        assert evaluator._executor is executor  # still attached, not closed

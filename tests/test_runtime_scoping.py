"""Contextvar scoping, lifecycle, and legacy-equivalence of ``repro.runtime``.

Three contracts are pinned here:

1. **Scoping** — ``with repro.session(...)`` nests field-by-field and
   restores the enclosing configuration exactly; sessions are invisible
   to other threads; the defaults store is only a fallback.
2. **Lifecycle** — a session owns the executor/cache it builds from
   integer specs and releases them at close/context-exit (extending the
   PR-4 leak regression tests); shared instances are left alone; a
   closed session refuses further use.
3. **Equivalence** — for a fixed ``(seed, backend, shard plan)``, every
   ``Session`` method reproduces the exact bits of the legacy
   estimator/selector/service call path, on both backends, sharded and
   unsharded (the acceptance criterion of the API redesign).
"""

import threading

import pytest

import repro
from repro.graph.generators import erdos_renyi_graph
from repro.parallel.adaptive import AdaptiveSettings
from repro.parallel.executor import ProcessExecutor, SerialExecutor, get_default_executor
from repro.parallel.plan import DEFAULT_SHARD_SIZE, get_default_shard_size
from repro.reachability.backends import BACKEND_NAMES, DEFAULT_BACKEND, get_default_backend
from repro.reachability.monte_carlo import (
    monte_carlo_expected_flow,
    monte_carlo_reachability,
)
from repro.runtime import RuntimeConfig, Session, current_config, current_session, defaults
from repro.selection.registry import get_default_crn, make_selector
from repro.service import BatchEvaluator, QueryRequest, WorldCache
from repro.service.cache import get_default_world_cache


@pytest.fixture(autouse=True)
def restore_defaults():
    saved = {name: getattr(defaults, name) for name in defaults.__slots__}
    yield
    for name, value in saved.items():
        setattr(defaults, name, value)


@pytest.fixture
def graph():
    return erdos_renyi_graph(40, average_degree=4, seed=3)


class TestScoping:
    def test_session_pins_knobs_and_restores_on_exit(self):
        assert get_default_backend() == DEFAULT_BACKEND
        with repro.session(backend="naive", crn=False, shard_size=64):
            assert get_default_backend() == "naive"
            assert get_default_crn() is False
            assert get_default_shard_size() == 64
        assert get_default_backend() == DEFAULT_BACKEND
        assert get_default_crn() is True
        assert get_default_shard_size() == DEFAULT_SHARD_SIZE

    def test_nested_sessions_merge_field_by_field(self):
        with repro.session(backend="naive", shard_size=64):
            with repro.session(crn=False):
                # inner pins crn only; backend/shard_size inherit from outer
                assert get_default_backend() == "naive"
                assert get_default_shard_size() == 64
                assert get_default_crn() is False
            assert get_default_crn() is True
            with repro.session(backend="vectorized"):
                assert get_default_backend() == "vectorized"
                assert get_default_shard_size() == 64
            assert get_default_backend() == "naive"

    def test_session_wins_over_defaults_store(self):
        defaults.backend = "naive"
        assert get_default_backend() == "naive"
        with repro.session(backend="vectorized"):
            assert get_default_backend() == "vectorized"
        assert get_default_backend() == "naive"

    def test_unset_fields_fall_through_to_defaults_store(self):
        defaults.shard_size = 48
        with repro.session(backend="naive"):
            assert get_default_shard_size() == 48

    def test_current_session_tracks_the_innermost_activation(self):
        assert current_session() is None
        with repro.session() as outer:
            assert current_session() is outer
            with repro.session() as inner:
                assert current_session() is inner
            assert current_session() is outer
        assert current_session() is None

    def test_sessions_are_invisible_to_other_threads(self):
        seen = {}

        def worker():
            seen["backend"] = get_default_backend()
            seen["session"] = current_session()

        with repro.session(backend="naive"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["backend"] == DEFAULT_BACKEND
        assert seen["session"] is None

    def test_methods_activate_the_session_without_with(self, graph):
        session = Session(RuntimeConfig(backend="naive", seed=9, n_samples=50))
        try:
            estimate = session.expected_flow(graph, 0)
            assert estimate.n_samples == 50
            # ...and deactivate afterwards
            assert current_session() is None
            assert get_default_backend() == DEFAULT_BACKEND
        finally:
            session.close()

    def test_current_config_resolves_the_whole_chain(self):
        defaults.shard_size = 96
        with repro.session(backend="naive", crn=False, seed=5):
            resolved = current_config()
        assert resolved.backend == "naive"
        assert resolved.crn is False
        assert resolved.shard_size == 96
        assert resolved.seed == 5
        assert resolved.as_dict()["backend"] == "naive"

    def test_current_config_snapshot_has_no_side_effects(self):
        defaults.world_cache = None
        current_config()
        # a read-only snapshot must not instantiate the lazy default cache
        assert defaults.world_cache is None

    def test_nested_sessions_inherit_policy_fields(self, graph):
        # n_samples / seed / adaptive merge over parents exactly like the
        # ambient knobs: an inner session pinning an unrelated field must
        # not silently reset the outer sampling policy
        with repro.session(seed=7, n_samples=64):
            with repro.session(backend="naive") as inner:
                scoped = inner.expected_flow(graph, 0)
        legacy = monte_carlo_expected_flow(
            graph, 0, n_samples=64, seed=7, backend="naive"
        )
        assert scoped.n_samples == 64
        assert scoped.expected_flow == legacy.expected_flow

    def test_workers_zero_pins_unsharded_inside_sharded_scope(self, graph):
        unsharded = monte_carlo_expected_flow(graph, 0, n_samples=64, seed=6)
        with repro.session(workers=1, shard_size=32):
            sharded = monte_carlo_expected_flow(graph, 0, n_samples=64, seed=6)
            with repro.session(workers=0):
                pinned = monte_carlo_expected_flow(graph, 0, n_samples=64, seed=6)
                assert get_default_executor() is None
        assert pinned.expected_flow == unsharded.expected_flow
        assert sharded.expected_flow != unsharded.expected_flow

    def test_shared_session_entered_from_two_threads(self):
        # one Session object entered concurrently by several threads:
        # each thread's activation is context-local, exits never
        # cross-reset tokens, and the owned pool is only released after
        # the last exit
        session = repro.session(workers=2)
        errors = []
        barrier = threading.Barrier(2)

        def worker():
            try:
                with session:
                    barrier.wait(timeout=5)  # both threads inside at once
                    assert current_session() is session
                    barrier.wait(timeout=5)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert session.closed
        assert session.executor.closed

    def test_activate_scopes_without_taking_the_lifecycle(self):
        # the sharing-safe spelling for long-lived sessions: sequential
        # (non-overlapping) scopes must NOT shut the session down — only
        # the owner's explicit close() does
        session = repro.session(workers=2, backend="naive")
        try:
            for _ in range(2):
                with session.activate():
                    assert current_session() is session
                    assert get_default_backend() == "naive"
                assert not session.closed
        finally:
            session.close()
        assert session.executor.closed

    def test_exit_in_foreign_context_is_rejected(self):
        # a session entered in one thread cannot be exited from another:
        # the exit must fail loudly instead of resetting a foreign token
        session = repro.session()
        session.__enter__()
        errors = []

        def foreign_exit():
            try:
                session.__exit__(None, None, None)
            except RuntimeError as error:
                errors.append(str(error))

        thread = threading.Thread(target=foreign_exit)
        thread.start()
        thread.join()
        assert errors and "not active" in errors[0]
        session.__exit__(None, None, None)  # the owning context exits fine
        assert session.closed

    def test_defaults_store_normalizes_raw_executor_specs(self):
        # the migration hint says "assign repro.runtime.defaults.executor";
        # a raw worker-count spec must behave like the legacy setter did
        defaults.executor = 1
        try:
            first = get_default_executor()
            assert isinstance(first, SerialExecutor)
            assert get_default_executor() is first  # normalized once, pinned
        finally:
            defaults.executor = None

    def test_defaults_store_normalizes_raw_cache_specs(self):
        defaults.world_cache = 8
        first = get_default_world_cache()
        assert isinstance(first, WorldCache)
        assert first.max_entries == 8
        assert get_default_world_cache() is first  # normalized once, pinned
        defaults.world_cache = 0  # "off" is a session concept, not a store value
        with pytest.raises(TypeError, match="world_cache=0"):
            get_default_world_cache()


class TestConfigValidation:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown sampling backend"):
            RuntimeConfig(backend="warp-drive")

    def test_rejects_negative_workers_and_nonpositive_shard_size(self):
        with pytest.raises(ValueError):
            RuntimeConfig(workers=-1)
        with pytest.raises(ValueError):
            RuntimeConfig(shard_size=0)

    def test_rejects_bad_sample_specs(self):
        with pytest.raises(ValueError):
            RuntimeConfig(n_samples="sometimes")
        with pytest.raises(ValueError):
            RuntimeConfig(n_samples=0)

    def test_rejects_negative_cache_bound(self):
        with pytest.raises(ValueError):
            RuntimeConfig(world_cache=-1)

    def test_replace_revalidates(self):
        config = RuntimeConfig(backend="naive")
        with pytest.raises(ValueError):
            config.replace(backend="warp-drive")

    def test_select_rejects_auto_samples(self, graph):
        with repro.session(n_samples="auto") as session:
            with pytest.raises(ValueError, match="auto"):
                session.select(graph, 0, 2)


class TestLifecycle:
    def test_owned_executor_is_closed_on_context_exit(self):
        with repro.session(workers=2) as session:
            executor = session.executor
            assert isinstance(executor, ProcessExecutor)
            assert get_default_executor() is executor
        assert session.closed
        assert executor.closed

    def test_shared_executor_instance_is_left_open(self):
        shared = ProcessExecutor(2)
        try:
            with repro.session(workers=shared):
                assert get_default_executor() is shared
            assert not shared.closed
        finally:
            shared.close()

    def test_owned_private_cache_is_dropped_at_close(self, graph):
        with repro.session(world_cache=4, seed=2) as session:
            cache = session.world_cache
            assert isinstance(cache, WorldCache)
            session.batch(graph, [QueryRequest(kind="expected_flow", source=0,
                                               n_samples=40, seed=2)])
            assert len(cache) == 1
        assert len(cache) == 0  # entries dropped with the session

    def test_shared_cache_instance_is_left_alone(self, graph):
        shared = WorldCache(max_entries=4)
        with repro.session(world_cache=shared) as session:
            session.batch(graph, [QueryRequest(kind="expected_flow", source=0,
                                               n_samples=40, seed=2)])
        assert len(shared) == 1  # survives the session

    def test_disabled_cache_scope(self, graph):
        with repro.session(world_cache=0) as session:
            assert get_default_world_cache() is None
            results = session.batch(
                graph,
                [QueryRequest(kind="expected_flow", source=0, n_samples=40, seed=2)],
            )
            assert len(results) == 1
            assert session.evaluator.cache_stats() == {}

    def test_concurrent_batch_calls_share_one_evaluator(self, graph):
        # the shared-session service pattern: concurrent batch() calls
        # must lazily build exactly one evaluator and keep the session
        # cache consistent
        session = repro.session(world_cache=8)
        evaluators, errors = [], []
        barrier = threading.Barrier(4)

        def worker(seed):
            try:
                barrier.wait(timeout=5)
                session.batch(
                    graph,
                    [QueryRequest(kind="expected_flow", source=0,
                                  n_samples=30, seed=seed)],
                )
                evaluators.append(session.evaluator)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(seed,)) for seed in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len({id(evaluator) for evaluator in evaluators}) == 1
        assert len(session.world_cache) == 4  # one entry per distinct seed
        session.close()

    def test_closed_session_refuses_use(self, graph):
        session = repro.session()
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.expected_flow(graph, 0, n_samples=10)
        with pytest.raises(RuntimeError, match="closed"):
            with session:
                pass

    def test_reentrant_with_blocks_close_only_at_the_outermost_exit(self):
        session = repro.session(workers=2)
        with session:
            with session:
                assert current_session() is session
            assert not session.closed  # inner exit must not close
        assert session.closed
        assert session.executor.closed


ALL_BACKENDS = list(BACKEND_NAMES)


class TestLegacyEquivalence:
    """Session methods reproduce the legacy call paths bit for bit."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_expected_flow_unsharded(self, graph, backend):
        legacy = monte_carlo_expected_flow(graph, 0, n_samples=80, seed=7, backend=backend)
        with repro.session(backend=backend, seed=7, n_samples=80) as session:
            scoped = session.expected_flow(graph, 0)
        assert scoped.expected_flow == legacy.expected_flow
        assert scoped.variance == legacy.variance
        assert scoped.reachability == legacy.reachability

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_expected_flow_sharded(self, graph, backend):
        legacy = monte_carlo_expected_flow(
            graph, 0, n_samples=80, seed=7, backend=backend,
            executor=SerialExecutor(), shard_size=32,
        )
        with repro.session(backend=backend, workers=1, shard_size=32,
                           seed=7, n_samples=80) as session:
            scoped = session.expected_flow(graph, 0)
        assert scoped.expected_flow == legacy.expected_flow
        assert scoped.reachability == legacy.reachability

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_pair_reachability(self, graph, backend):
        legacy = monte_carlo_reachability(graph, 0, 7, n_samples=80, seed=5, backend=backend)
        with repro.session(backend=backend, seed=5, n_samples=80) as session:
            scoped = session.pair_reachability(graph, 0, 7)
        assert scoped.probability == legacy.probability
        assert scoped.successes == legacy.successes

    def test_pair_reachability_adaptive(self, graph):
        settings = AdaptiveSettings(target_width=0.2, max_samples=600)
        legacy = monte_carlo_reachability(
            graph, 0, 7, n_samples="auto", seed=5, adaptive=settings
        )
        with repro.session(seed=5, n_samples="auto", adaptive=settings) as session:
            scoped = session.pair_reachability(graph, 0, 7)
        assert scoped.probability == legacy.probability
        assert scoped.n_samples == legacy.n_samples

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("algorithm", ["Naive", "FT+M"])
    def test_selection(self, graph, backend, algorithm):
        legacy = make_selector(
            algorithm, n_samples=60, seed=11, backend=backend
        ).select(graph, 0, 5)
        with repro.session(backend=backend, seed=11, n_samples=60) as session:
            scoped = session.select(graph, 0, 5, algorithm=algorithm)
        assert scoped.selected_edges == legacy.selected_edges
        assert scoped.expected_flow == legacy.expected_flow

    def test_selection_sharded_and_resample_mode(self, graph):
        legacy = make_selector(
            "FT+M", n_samples=60, seed=11, crn=False,
            executor=SerialExecutor(), shard_size=32,
        ).select(graph, 0, 4)
        with repro.session(crn=False, workers=1, shard_size=32,
                           seed=11, n_samples=60) as session:
            scoped = session.select(graph, 0, 4)
        assert scoped.selected_edges == legacy.selected_edges
        assert scoped.expected_flow == legacy.expected_flow

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_batch_matches_legacy_service_path(self, graph, backend):
        requests = [
            QueryRequest(kind="expected_flow", source=0, n_samples=60, seed=3),
            QueryRequest(kind="pair_reachability", source=0, target=9,
                         n_samples=60, seed=3),
        ]
        with BatchEvaluator(backend=backend, cache=4) as evaluator:
            legacy = evaluator.evaluate(graph, requests)
        with repro.session(backend=backend, world_cache=4) as session:
            scoped = session.batch(graph, requests)
        assert scoped[0].flow.expected_flow == legacy[0].flow.expected_flow
        assert scoped[0].flow.reachability == legacy[0].flow.reachability
        assert scoped[1].reachability.probability == legacy[1].reachability.probability

    def test_evaluate_flow_matches_harness_yardstick(self, graph):
        from repro.experiments.harness import evaluate_flow

        edges = list(graph.edges())[:6]
        legacy = evaluate_flow(graph, edges, 0, n_samples=200, seed=21)
        with repro.session(seed=21) as session:
            scoped = session.evaluate_flow(graph, edges, 0, n_samples=200)
        assert scoped == legacy

    def test_experiment_config_projection(self):
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig(
            backend="naive", crn=False, workers=1, shard_size=32, world_cache_size=8
        )
        runtime_config = config.to_runtime_config()
        assert runtime_config.backend == "naive"
        assert runtime_config.crn is False
        assert runtime_config.workers == 1
        assert runtime_config.shard_size == 32
        # experiment-only knobs never leak into the runtime config, and
        # world_cache_size is run-wide (installed by the multi-figure
        # runner), not per-run — projecting it would shadow the shared cache
        assert runtime_config.world_cache is None
        assert runtime_config.n_samples is None

    def test_close_defers_release_while_a_call_is_in_flight(self, graph):
        # the shared-session service pattern: the owner closing must not
        # pull resources out from under a request thread mid-call
        session = repro.session(workers=1, seed=3, n_samples=4000)
        started = threading.Event()
        outcome = {}

        class _SignalingExecutor(SerialExecutor):
            def map_shards(self, tasks):
                started.set()
                return super().map_shards(tasks)

        session._executor = _SignalingExecutor()

        def request():
            try:
                outcome["flow"] = session.expected_flow(graph, 0).expected_flow
            except Exception as error:  # pragma: no cover - failure path
                outcome["error"] = error

        thread = threading.Thread(target=request)
        thread.start()
        started.wait(timeout=5)
        session.close()  # marked closed immediately...
        assert session.closed
        thread.join(timeout=10)
        assert "error" not in outcome  # ...but the in-flight call completed
        assert outcome["flow"] > 0
        with pytest.raises(RuntimeError, match="closed"):
            session.expected_flow(graph, 0)  # new work is rejected

    def test_close_drains_an_in_flight_batch_call(self, graph):
        # batch() routes through the evaluator property, which must admit
        # already-in-flight calls even after close() flips the closed flag
        session = repro.session(world_cache=4, seed=3)
        admitted = threading.Event()
        proceed = threading.Event()
        outcome = {}
        original_use = session._use

        def gated_use():
            manager = original_use()

            class _Gated:
                def __enter__(inner):
                    result = manager.__enter__()
                    admitted.set()
                    proceed.wait(timeout=5)  # hold the call in flight
                    return result

                def __exit__(inner, *exc_info):
                    return manager.__exit__(*exc_info)

            return _Gated()

        session._use = gated_use

        def request():
            try:
                outcome["results"] = session.batch(
                    graph,
                    [QueryRequest(kind="expected_flow", source=0,
                                  n_samples=30, seed=1)],
                )
            except Exception as error:  # pragma: no cover - failure path
                outcome["error"] = error

        thread = threading.Thread(target=request)
        thread.start()
        admitted.wait(timeout=5)
        session.close()  # while the batch call is admitted but unfinished
        proceed.set()
        thread.join(timeout=10)
        assert "error" not in outcome, outcome.get("error")
        assert outcome["results"][0].flow.expected_flow > 0
        with pytest.raises(RuntimeError, match="closed"):
            session.batch(graph, [QueryRequest(kind="expected_flow", source=0,
                                               n_samples=30, seed=1)])

"""End-to-end integration tests across the whole pipeline."""

import pytest

from repro.datasets.registry import load_dataset
from repro.experiments.harness import evaluate_flow, pick_query_vertex
from repro.graph.io import read_json, write_json
from repro.reachability.exact import exact_expected_flow
from repro.reachability.monte_carlo import monte_carlo_expected_flow
from repro.selection.registry import make_selector
from repro.selection.exact_optimal import exhaustive_optimal_selection
from repro.graph.generators import erdos_renyi_graph, partitioned_graph


class TestEndToEndSelection:
    """Generate -> select -> evaluate pipelines across algorithm variants."""

    @pytest.mark.parametrize("dataset", ["erdos", "partitioned", "san-joaquin"])
    def test_dataset_to_selection_pipeline(self, dataset):
        graph = load_dataset(dataset, n_vertices=80, seed=1)
        query = pick_query_vertex(graph)
        selector = make_selector("FT+M", n_samples=60, seed=2)
        result = selector.select(graph, query, 8)
        assert 0 < result.n_selected <= 8
        evaluated = evaluate_flow(graph, result.selected_edges, query, n_samples=300, seed=3)
        # the selector's own estimate and the independent evaluation must agree reasonably
        assert evaluated == pytest.approx(result.expected_flow, rel=0.25, abs=0.5)

    def test_ft_variants_agree_with_exact_sampling(self):
        """With exact component evaluation every FT variant returns the same edge set."""
        graph = erdos_renyi_graph(30, average_degree=4, seed=5)
        names = ["FT", "FT+M", "FT+M+CI"]
        selections = []
        for name in names:
            selector = make_selector(name, n_samples=50, exact_threshold=16, seed=9)
            selections.append(selector.select(graph, 0, 6).selected_edges)
        assert selections[0] == selections[1] == selections[2]

    def test_greedy_close_to_optimal_small_instance(self):
        graph = erdos_renyi_graph(8, average_degree=2.5, seed=3)
        budget = 4
        optimal = exhaustive_optimal_selection(graph, 0, budget)
        greedy = make_selector("FT+M", n_samples=50, exact_threshold=18, seed=0).select(
            graph, 0, budget
        )
        greedy_flow = exact_expected_flow(graph, 0, edges=greedy.selected_edges).expected_flow
        assert greedy_flow >= 0.75 * optimal.expected_flow

    def test_monte_carlo_validates_ftree_selection(self):
        """Independent whole-graph Monte-Carlo agrees with the F-tree flow estimate."""
        graph = partitioned_graph(60, degree=4, seed=4)
        query = pick_query_vertex(graph)
        result = make_selector("FT+M", n_samples=80, seed=1).select(graph, query, 10)
        mc = monte_carlo_expected_flow(
            graph, query, n_samples=3000, seed=11, edges=result.selected_edges
        )
        assert mc.expected_flow == pytest.approx(result.expected_flow, rel=0.15, abs=0.5)

    def test_round_trip_through_serialisation(self, tmp_path):
        graph = load_dataset("dblp", n_vertices=60, seed=2)
        path = tmp_path / "dblp.json"
        write_json(graph, path)
        restored = read_json(path)
        assert restored == graph
        query = pick_query_vertex(restored)
        result = make_selector("Dijkstra").select(restored, query, 5)
        assert result.n_selected == 5


class TestPaperQualitativeClaims:
    """The headline qualitative results of the evaluation section."""

    def test_ft_beats_dijkstra_at_larger_budgets(self):
        """Section 7.4: Dijkstra's information flow falls behind as k grows."""
        graph = load_dataset("facebook", n_vertices=100, seed=0)
        query = pick_query_vertex(graph)
        budget = 18
        ft = make_selector("FT+M", n_samples=80, seed=1).select(graph, query, budget)
        dijkstra = make_selector("Dijkstra").select(graph, query, budget)
        ft_eval = evaluate_flow(graph, ft.selected_edges, query, n_samples=400, seed=5)
        dijkstra_eval = evaluate_flow(graph, dijkstra.selected_edges, query, n_samples=400, seed=5)
        assert ft_eval >= dijkstra_eval - 1e-6

    def test_memoization_reduces_sampling_work(self):
        """Section 6.2 / 7.5: FT+M performs no more component estimations than FT."""
        graph = load_dataset("erdos", n_vertices=60, seed=3)
        query = pick_query_vertex(graph)
        ft = make_selector("FT", n_samples=40, exact_threshold=0, seed=2).select(graph, query, 8)
        ftm = make_selector("FT+M", n_samples=40, exact_threshold=0, seed=2).select(graph, query, 8)
        assert ftm.extras["sampled_components"] <= ft.extras["sampled_components"]
        assert ftm.extras.get("memo_hits", 0) >= 0

    def test_dijkstra_is_fastest(self):
        graph = load_dataset("erdos", n_vertices=80, seed=6)
        query = pick_query_vertex(graph)
        dijkstra = make_selector("Dijkstra").select(graph, query, 10)
        naive = make_selector("Naive", n_samples=30, seed=0).select(graph, query, 10)
        assert dijkstra.elapsed_seconds <= naive.elapsed_seconds

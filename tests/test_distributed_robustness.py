"""Fault injection for the distributed executor.

The acceptance bar of the whole tier: a worker SIGKILLed mid-shard (or a
whole fleet dying and rejoining) must change *nothing* about the
answer — the retry/reassignment path re-runs the stranded shards from
their own pre-split seeds and the reduction stays in shard order, so
estimates and greedy selections are asserted bit-for-bit against
:class:`~repro.parallel.SerialExecutor`.
"""

import threading
import time

import numpy as np
import pytest

import repro
from repro.distributed import RemoteExecutor, local_fleet
from repro.exceptions import ShardRetryExceededError
from repro.experiments.harness import pick_query_vertex
from repro.parallel import SerialExecutor, ShardTask
from repro.reachability.backends import make_backend
from repro.reachability.backends.base import SamplingProblem
from repro.rng import split_seed_sequences
from repro.types import Edge


def _problem(n_edges: int = 6) -> SamplingProblem:
    edges = [(Edge(i, i + 1), 0.25 + 0.5 * (i % 2)) for i in range(n_edges)]
    return SamplingProblem.from_edges(edges, source=0)


def _tasks(n_shards: int, seed: int = 11, n_samples: int = 24):
    problem = _problem()
    backend = make_backend("vectorized")
    return [
        ShardTask(problem=problem, n_samples=n_samples, seed=child, backend=backend)
        for child in split_seed_sequences(seed, n_shards)
    ]


class TestWorkerKillMidRun:
    def test_sigkill_mid_shard_reproduces_serial_bits(self):
        """Kill one of two workers while shards are in flight."""
        tasks = _tasks(24)
        reference = SerialExecutor().map_shards(tasks)
        with local_fleet(
            2, shard_delay_ms=40, task_timeout=30.0, worker_wait_timeout=60.0
        ) as fleet:
            killer = threading.Timer(0.3, fleet.processes[0].kill)
            killer.start()
            try:
                results = fleet.executor.map_shards(tasks)
            finally:
                killer.cancel()
            assert fleet.executor.worker_deaths >= 1
            assert fleet.executor.retries >= 1
        assert len(results) == len(reference)
        for ours, theirs in zip(results, reference):
            assert np.array_equal(ours, theirs)

    def test_whole_fleet_dies_and_a_replacement_rejoins(self):
        """Every worker dead mid-run: the coordinator holds the pending
        shards and finishes identically once a replacement registers."""
        tasks = _tasks(16, seed=13)
        reference = SerialExecutor().map_shards(tasks)
        with local_fleet(
            2, shard_delay_ms=40, task_timeout=30.0, worker_wait_timeout=60.0
        ) as fleet:

            def kill_all_then_rejoin():
                time.sleep(0.25)
                for process in list(fleet.processes):
                    process.kill()
                time.sleep(0.4)
                fleet.spawn_worker()

            chaos = threading.Thread(target=kill_all_then_rejoin)
            chaos.start()
            try:
                results = fleet.executor.map_shards(tasks)
            finally:
                chaos.join(timeout=30)
            assert fleet.executor.worker_deaths >= 2
        for ours, theirs in zip(results, reference):
            assert np.array_equal(ours, theirs)

    def test_estimates_and_selection_survive_a_kill_bit_for_bit(self):
        """The end-to-end invariance gate under fault injection: the
        session-level flow estimate AND the greedy edge selection match
        the single-process run exactly, kill or no kill."""
        graph = repro.erdos_renyi_graph(40, average_degree=5.0, seed=21)
        query = pick_query_vertex(graph)
        with repro.session(workers=1, shard_size=16, n_samples=96, seed=9) as s:
            serial_flow = s.expected_flow(graph, query)
            serial_selection = s.select(graph, query, 3, algorithm="FT+M")
        with local_fleet(
            2, shard_delay_ms=10, task_timeout=30.0, worker_wait_timeout=60.0
        ) as fleet:
            with repro.session(
                workers=fleet.executor, shard_size=16, n_samples=96, seed=9
            ) as s:
                remote_flow = s.expected_flow(graph, query)
                # kill a worker between the estimate and the selection:
                # the selection's shards hit a half-dead fleet and must
                # reassign without moving a bit
                fleet.processes[1].kill()
                deadline = time.monotonic() + 10.0
                while (
                    fleet.executor.worker_deaths < 1
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.02)
                remote_selection = s.select(graph, query, 3, algorithm="FT+M")
            deaths = fleet.executor.worker_deaths
        assert deaths >= 1
        assert remote_flow.expected_flow == serial_flow.expected_flow
        assert remote_flow.reachability == serial_flow.reachability
        assert remote_selection.selected_edges == serial_selection.selected_edges
        assert remote_selection.expected_flow == serial_selection.expected_flow


class TestRetryBudget:
    def test_systematic_timeouts_exhaust_the_budget(self):
        """A shard that times out on every worker it is assigned to must
        surface the typed budget error, not hang or loop forever."""
        with local_fleet(
            2,
            shard_delay_ms=3000,  # every shard blows the 0.4s deadline
            task_timeout=0.4,
            max_task_retries=1,
            worker_wait_timeout=8.0,
            heartbeat_interval=0.2,
            heartbeat_timeout=60.0,
        ) as fleet:
            with pytest.raises(ShardRetryExceededError) as excinfo:
                fleet.executor.map_shards(_tasks(2, n_samples=4))
            assert excinfo.value.attempts == 2
            assert "systematic" in str(excinfo.value)

    def test_retry_counters_are_exposed(self):
        executor = RemoteExecutor(port=0)
        try:
            assert executor.retries == 0
            assert executor.worker_deaths == 0
            assert executor.tasks_dispatched == 0
        finally:
            executor.close()

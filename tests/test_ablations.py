"""Tests for the ablation studies (extensions beyond the paper)."""


from repro.experiments.ablations import (
    exact_threshold_ablation,
    lazy_versus_eager_greedy,
    probability_misestimation_robustness,
)
from repro.experiments.config import ExperimentConfig

TINY = ExperimentConfig(
    n_vertices=50,
    degree=4,
    budget=5,
    n_samples=50,
    naive_samples=20,
    algorithms=("FT+M",),
    seed=0,
)


class TestExactThresholdAblation:
    def test_rows_per_threshold(self):
        result = exact_threshold_ablation(thresholds=(0, 8), config=TINY)
        assert len(result.rows) == 2
        assert {row["exact_threshold"] for row in result.rows} == {0, 8}

    def test_threshold_zero_samples_components(self):
        result = exact_threshold_ablation(thresholds=(0, 16), config=TINY)
        by_threshold = {row["exact_threshold"]: row for row in result.rows}
        # with a generous threshold every cyclic component is enumerated exactly
        assert by_threshold[16]["sampled_components"] == 0.0
        # flows are positive in both configurations
        assert all(row["evaluated_flow"] > 0 for row in result.rows)


class TestProbabilityNoiseRobustness:
    def test_rows_and_algorithms(self):
        result = probability_misestimation_robustness(noise_levels=(0.0, 0.3), config=TINY)
        assert len(result.rows) == 4
        assert {row["algorithm"] for row in result.rows} == {"FT+M", "Dijkstra"}

    def test_noise_never_helps_much(self):
        """Flow under heavy noise must not exceed the noise-free flow by a large margin."""
        result = probability_misestimation_robustness(noise_levels=(0.0, 0.5), config=TINY)
        ftm = {row["noise"]: row["evaluated_flow"] for row in result.rows if row["algorithm"] == "FT+M"}
        assert ftm[0.5] <= ftm[0.0] * 1.25 + 1.0


class TestLazyVersusEager:
    def test_rows_per_budget_and_algorithm(self):
        result = lazy_versus_eager_greedy(budgets=(3, 6), config=TINY)
        assert len(result.rows) == 6
        assert {row["algorithm"] for row in result.rows} == {"FT+M", "FT+M+DS", "FT+Lazy"}

    def test_lazy_probes_no_more_than_eager(self):
        result = lazy_versus_eager_greedy(budgets=(6,), config=TINY)
        by_algorithm = {row["algorithm"]: row for row in result.rows}
        assert (
            by_algorithm["FT+Lazy"]["flow_evaluations"]
            <= by_algorithm["FT+M"]["flow_evaluations"]
        )

    def test_flows_are_comparable(self):
        result = lazy_versus_eager_greedy(budgets=(6,), config=TINY)
        flows = [row["evaluated_flow"] for row in result.rows]
        assert max(flows) <= min(flows) * 1.5 + 1.0

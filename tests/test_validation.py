"""Tests for graph validation and statistics."""

import pytest

from repro.exceptions import GraphError
from repro.graph.generators import erdos_renyi_graph, path_graph
from repro.graph.uncertain_graph import UncertainGraph
from repro.graph.validation import graph_stats, validate_graph


class TestValidateGraph:
    def test_valid_graph_passes(self):
        validate_graph(erdos_renyi_graph(30, seed=0))

    def test_empty_graph_passes(self):
        validate_graph(UncertainGraph())

    def test_corrupted_adjacency_detected(self):
        graph = path_graph(3)
        # simulate internal corruption: drop one direction of the adjacency
        graph._adjacency[1].discard(0)
        with pytest.raises(GraphError):
            validate_graph(graph)

    def test_corrupted_probability_detected(self):
        graph = path_graph(3)
        key = next(iter(graph._probabilities))
        graph._probabilities[key] = 1.7
        with pytest.raises(GraphError):
            validate_graph(graph)

    def test_missing_edge_storage_detected(self):
        graph = path_graph(3)
        key = next(iter(graph._probabilities))
        del graph._probabilities[key]
        with pytest.raises(GraphError):
            validate_graph(graph)


class TestGraphStats:
    def test_stats_on_path(self):
        stats = graph_stats(path_graph(4, probability=0.5, weight=2.0))
        assert stats.n_vertices == 4
        assert stats.n_edges == 3
        assert stats.average_degree == pytest.approx(1.5)
        assert stats.min_degree == 1
        assert stats.max_degree == 2
        assert stats.average_probability == pytest.approx(0.5)
        assert stats.total_weight == pytest.approx(8.0)
        assert stats.n_certain_edges == 0

    def test_stats_on_empty_graph(self):
        stats = graph_stats(UncertainGraph())
        assert stats.n_vertices == 0
        assert stats.n_edges == 0
        assert stats.average_degree == 0.0

    def test_as_dict_contains_all_fields(self):
        stats = graph_stats(path_graph(3))
        payload = stats.as_dict()
        assert set(payload) >= {"n_vertices", "n_edges", "average_degree", "total_weight"}

    def test_certain_edge_counting(self):
        graph = path_graph(3, probability=1.0)
        assert graph_stats(graph).n_certain_edges == 2

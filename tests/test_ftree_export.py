"""Tests for DOT export and F-tree summaries."""

import json

from repro.experiments.running_example import QUERY, ftree_example_graph
from repro.ftree.builder import build_ftree
from repro.ftree.export import ftree_summary, ftree_to_dot, graph_to_dot
from repro.ftree.sampler import ComponentSampler
from repro.graph.generators import path_graph


class TestGraphToDot:
    def test_contains_all_vertices_and_edges(self, triangle_graph):
        dot = graph_to_dot(triangle_graph, name="tri")
        assert dot.startswith('graph "tri" {')
        assert dot.count(" -- ") == 3
        assert 'label="0.50"' in dot
        assert dot.rstrip().endswith("}")

    def test_weights_in_labels(self):
        graph = path_graph(2, weight=3.5)
        dot = graph_to_dot(graph)
        assert "w=3.5" in dot

    def test_string_vertices_are_quoted(self):
        graph = path_graph(2)
        graph.add_vertex("node with spaces")
        dot = graph_to_dot(graph)
        assert '"node with spaces"' in dot


class TestFtreeToDot:
    def test_clusters_per_component(self):
        graph = ftree_example_graph()
        ftree = build_ftree(
            graph, graph.edge_list(), QUERY, sampler=ComponentSampler(exact_threshold=12)
        )
        dot = ftree_to_dot(ftree)
        assert dot.count("subgraph cluster_") == len(ftree.components())
        assert "doublecircle" in dot  # the query vertex
        # every selected edge appears exactly once
        assert dot.count(" -- ") == ftree.n_selected


class TestFtreeSummary:
    def test_summary_is_json_serialisable(self):
        graph = ftree_example_graph()
        ftree = build_ftree(
            graph, graph.edge_list(), QUERY, sampler=ComponentSampler(exact_threshold=12)
        )
        summary = ftree_summary(ftree)
        encoded = json.dumps(summary)
        assert "components" in encoded

    def test_summary_counts(self):
        graph = ftree_example_graph()
        ftree = build_ftree(
            graph, graph.edge_list(), QUERY, sampler=ComponentSampler(exact_threshold=12)
        )
        summary = ftree_summary(ftree)
        assert summary["query"] == QUERY
        assert summary["n_components"] == 6
        assert summary["n_bi_components"] == 3
        assert summary["n_selected_edges"] == graph.n_edges
        kinds = {entry["kind"] for entry in summary["components"]}
        assert kinds == {"mono", "bi"}

    def test_bi_component_estimation_flags(self):
        graph = ftree_example_graph()
        ftree = build_ftree(
            graph, graph.edge_list(), QUERY, sampler=ComponentSampler(exact_threshold=12)
        )
        before = ftree_summary(ftree)
        assert any(entry.get("estimated") is False for entry in before["components"])
        ftree.expected_flow()
        after = ftree_summary(ftree)
        bi_entries = [entry for entry in after["components"] if entry["kind"] == "bi"]
        assert all(entry["estimated"] for entry in bi_entries)

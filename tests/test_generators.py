"""Tests for the synthetic graph generators."""

import pytest

from repro.algorithms.traversal import is_connected
from repro.graph.generators import (
    collaboration_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_road_graph,
    partitioned_graph,
    path_graph,
    preferential_attachment_graph,
    social_circle_graph,
    star_graph,
    wsn_graph,
    wsn_graph_with_positions,
)
from repro.graph.validation import validate_graph


def _probabilities_valid(graph):
    return all(0.0 < graph.probability(e) <= 1.0 for e in graph.edges())


class TestErdosRenyi:
    def test_size_and_connectivity(self):
        graph = erdos_renyi_graph(50, average_degree=4, seed=0)
        assert graph.n_vertices == 50
        assert is_connected(graph)

    def test_average_degree_is_close_to_target(self):
        graph = erdos_renyi_graph(300, average_degree=6, seed=1)
        assert graph.average_degree() == pytest.approx(6.0, rel=0.25)

    def test_reproducible(self):
        a = erdos_renyi_graph(40, seed=3)
        b = erdos_renyi_graph(40, seed=3)
        assert a == b

    def test_valid_probabilities_and_weights(self):
        graph = erdos_renyi_graph(40, seed=2)
        validate_graph(graph)
        assert _probabilities_valid(graph)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(0)

    def test_unconnected_variant(self):
        graph = erdos_renyi_graph(30, average_degree=0.5, seed=4, connect=False)
        assert graph.n_vertices == 30


class TestPartitioned:
    def test_every_vertex_has_target_degree(self):
        graph = partitioned_graph(60, degree=6, seed=0)
        degrees = {graph.degree(v) for v in graph.vertices()}
        assert degrees == {6}

    def test_diameter_grows_with_size(self):
        small = partitioned_graph(24, degree=4, seed=0)
        large = partitioned_graph(120, degree=4, seed=0)
        # the ring of partitions has n_partitions = 2|V|/degree, so the larger
        # graph has strictly more partitions and hence a larger diameter
        assert large.n_vertices > small.n_vertices

    def test_odd_degree_rejected(self):
        with pytest.raises(ValueError):
            partitioned_graph(30, degree=5)

    def test_validates(self):
        validate_graph(partitioned_graph(40, degree=4, seed=1))


class TestWsn:
    def test_radius_controls_density(self):
        sparse = wsn_graph(150, eps=0.05, seed=0)
        dense = wsn_graph(150, eps=0.15, seed=0)
        assert dense.n_edges > sparse.n_edges

    def test_positions_are_returned(self):
        graph, positions = wsn_graph_with_positions(30, eps=0.2, seed=1)
        assert set(positions) == set(graph.vertices())
        assert all(0.0 <= x <= 1.0 and 0.0 <= y <= 1.0 for x, y in positions.values())

    def test_edges_respect_radius(self):
        import math

        graph, positions = wsn_graph_with_positions(80, eps=0.1, seed=2)
        for edge in graph.edges():
            ax, ay = positions[edge.u]
            bx, by = positions[edge.v]
            assert math.hypot(ax - bx, ay - by) <= 0.1 + 1e-9

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            wsn_graph(10, eps=0.0)


class TestGridRoad:
    def test_grid_size(self):
        graph = grid_road_graph(5, 6, seed=0)
        assert graph.n_vertices == 30
        assert is_connected(graph)

    def test_distance_decay_probabilities(self):
        graph = grid_road_graph(4, 4, cell_length_m=1000.0, decay_per_m=0.001, perturbation=0.0, seed=0)
        import math

        for edge in graph.edges():
            assert graph.probability(edge) == pytest.approx(math.exp(-1.0), rel=1e-6)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            grid_road_graph(0, 5)


class TestSocialCircle:
    def test_close_friend_probabilities_exist(self):
        graph = social_circle_graph(60, average_degree=12, close_friends=5, seed=0)
        high = [e for e in graph.edges() if graph.probability(e) >= 0.5]
        assert len(high) >= 60 * 5 / 2 * 0.5  # at least half of the intended close edges

    def test_validates(self):
        validate_graph(social_circle_graph(40, seed=1))

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            social_circle_graph(2)


class TestCollaboration:
    def test_no_isolated_vertices(self):
        graph = collaboration_graph(60, seed=0)
        assert all(graph.degree(v) >= 1 for v in graph.vertices())

    def test_validates(self):
        validate_graph(collaboration_graph(50, seed=1))

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            collaboration_graph(2)


class TestPreferentialAttachment:
    def test_size_and_connectivity(self):
        graph = preferential_attachment_graph(80, edges_per_vertex=2, seed=0)
        assert graph.n_vertices == 80
        assert is_connected(graph)

    def test_heavy_tail(self):
        graph = preferential_attachment_graph(300, edges_per_vertex=2, seed=1)
        degrees = sorted((graph.degree(v) for v in graph.vertices()), reverse=True)
        assert degrees[0] >= 3 * (sum(degrees) / len(degrees))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            preferential_attachment_graph(3, edges_per_vertex=5)
        with pytest.raises(ValueError):
            preferential_attachment_graph(10, edges_per_vertex=0)


class TestToyGraphs:
    def test_path(self):
        graph = path_graph(5, probability=0.3)
        assert graph.n_edges == 4
        assert graph.probability(0, 1) == 0.3

    def test_cycle(self):
        graph = cycle_graph(4)
        assert graph.n_edges == 4
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        graph = star_graph(6)
        assert graph.degree(0) == 6
        assert graph.n_vertices == 7

    def test_complete(self):
        graph = complete_graph(5)
        assert graph.n_edges == 10

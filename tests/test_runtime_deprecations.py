"""The five legacy ``set_default_*`` globals: warnings + shim equivalence.

Each legacy function must (a) emit a :class:`DeprecationWarning` that
names its replacement, (b) keep its full legacy contract for one release
(return the previous value, validate its argument), and (c) behave as a
thin shim over the one ``repro.runtime.defaults`` store — setting through
the shim and assigning the store field must be indistinguishable to
every resolution point, and an active session must win over both.
"""

import pytest

import repro
from repro.parallel.executor import (
    SerialExecutor,
    get_default_executor,
    set_default_executor,
)
from repro.parallel.plan import (
    DEFAULT_SHARD_SIZE,
    get_default_shard_size,
    set_default_shard_size,
)
from repro.reachability.backends import (
    DEFAULT_BACKEND,
    get_default_backend,
    set_default_backend,
)
from repro.runtime import defaults
from repro.selection.registry import DEFAULT_CRN, get_default_crn, set_default_crn
from repro.service.cache import (
    WorldCache,
    get_default_world_cache,
    set_default_world_cache,
)


@pytest.fixture(autouse=True)
def restore_defaults():
    """Snapshot the process-wide defaults store around every test."""
    saved = {name: getattr(defaults, name) for name in defaults.__slots__}
    yield
    for name, value in saved.items():
        setattr(defaults, name, value)


class TestWarnings:
    def test_set_default_backend_warns_with_migration_hint(self):
        with pytest.warns(DeprecationWarning, match=r"repro\.session\(backend="):
            previous = set_default_backend("naive")
        assert previous == DEFAULT_BACKEND

    def test_set_default_crn_warns_with_migration_hint(self):
        with pytest.warns(DeprecationWarning, match=r"repro\.session\(crn="):
            previous = set_default_crn(False)
        assert previous is DEFAULT_CRN

    def test_set_default_executor_warns_with_migration_hint(self):
        with pytest.warns(DeprecationWarning, match=r"repro\.session\(workers="):
            previous = set_default_executor(1)
        assert previous is None

    def test_set_default_shard_size_warns_with_migration_hint(self):
        with pytest.warns(DeprecationWarning, match=r"repro\.session\(shard_size="):
            previous = set_default_shard_size(64)
        assert previous == DEFAULT_SHARD_SIZE

    def test_set_default_world_cache_warns_with_migration_hint(self):
        with pytest.warns(DeprecationWarning, match=r"repro\.session\(world_cache="):
            previous = set_default_world_cache(WorldCache(4))
        assert previous is None or isinstance(previous, WorldCache)


class TestLegacyContract:
    def test_backend_shim_round_trip(self):
        with pytest.warns(DeprecationWarning):
            previous = set_default_backend("naive")
        assert get_default_backend() == "naive"
        with pytest.warns(DeprecationWarning):
            restored = set_default_backend(previous)
        assert restored == "naive"
        assert get_default_backend() == DEFAULT_BACKEND

    def test_backend_shim_rejects_unknown_names(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="unknown sampling backend"):
                set_default_backend("warp-drive")
        assert get_default_backend() == DEFAULT_BACKEND

    def test_shard_size_shim_rejects_nonpositive(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                set_default_shard_size(0)
        assert get_default_shard_size() == DEFAULT_SHARD_SIZE

    def test_executor_shim_resolves_integer_specs(self):
        with pytest.warns(DeprecationWarning):
            set_default_executor(1)
        assert isinstance(get_default_executor(), SerialExecutor)
        with pytest.warns(DeprecationWarning):
            previous = set_default_executor(None)
        assert isinstance(previous, SerialExecutor)
        assert get_default_executor() is None

    def test_world_cache_shim_round_trip(self):
        replacement = WorldCache(max_entries=3)
        with pytest.warns(DeprecationWarning):
            set_default_world_cache(replacement)
        assert get_default_world_cache() is replacement
        with pytest.warns(DeprecationWarning):
            restored = set_default_world_cache(None)
        assert restored is replacement


class TestShimEquivalence:
    """Shim writes and direct store assignments are indistinguishable."""

    def test_backend_shim_and_store_assignment_agree(self):
        with pytest.warns(DeprecationWarning):
            set_default_backend("naive")
        via_shim = get_default_backend()
        defaults.backend = None
        defaults.backend = "naive"
        assert get_default_backend() == via_shim == "naive"
        assert defaults.backend == "naive"

    def test_crn_shim_writes_the_store(self):
        with pytest.warns(DeprecationWarning):
            set_default_crn(False)
        assert defaults.crn is False
        assert get_default_crn() is False
        defaults.crn = True
        assert get_default_crn() is True

    def test_shard_size_shim_writes_the_store(self):
        with pytest.warns(DeprecationWarning):
            set_default_shard_size(96)
        assert defaults.shard_size == 96
        assert get_default_shard_size() == 96

    def test_store_assignment_does_not_warn(self, recwarn):
        defaults.backend = "naive"
        defaults.crn = False
        defaults.shard_size = 32
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]

    def test_session_wins_over_shim_setting(self):
        with pytest.warns(DeprecationWarning):
            set_default_backend("naive")
        with repro.session(backend="vectorized"):
            assert get_default_backend() == "vectorized"
        assert get_default_backend() == "naive"

    def test_shim_setting_inside_session_surfaces_after_exit(self):
        # the store is process-wide: a shim write inside a session does
        # not affect the session's pinned knob, but persists past it
        with repro.session(shard_size=32):
            with pytest.warns(DeprecationWarning):
                set_default_shard_size(48)
            assert get_default_shard_size() == 32
        assert get_default_shard_size() == 48

"""Tests for the factoring-based exact two-terminal reliability solver."""

import pytest

from repro.exceptions import VertexNotFoundError
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
)
from repro.reachability.exact import exact_reachability
from repro.reachability.factoring import (
    FactoringBudgetExceeded,
    two_terminal_reliability,
)
from repro.types import Edge


class TestSmallGraphs:
    def test_single_edge(self):
        graph = path_graph(2, probability=0.3)
        assert two_terminal_reliability(graph, 0, 1) == pytest.approx(0.3)

    def test_series_path(self):
        graph = path_graph(4, probability=0.5)
        assert two_terminal_reliability(graph, 0, 3) == pytest.approx(0.125)

    def test_parallel_edges_via_triangle(self, triangle_graph):
        expected = exact_reachability(triangle_graph, 0, 1).probability
        assert two_terminal_reliability(triangle_graph, 0, 1) == pytest.approx(expected)

    def test_same_vertex(self, triangle_graph):
        assert two_terminal_reliability(triangle_graph, 2, 2) == 1.0

    def test_disconnected_terminals(self):
        graph = path_graph(2, probability=0.5)
        graph.add_vertex(9)
        assert two_terminal_reliability(graph, 0, 9) == 0.0

    def test_unknown_terminals(self, triangle_graph):
        with pytest.raises(VertexNotFoundError):
            two_terminal_reliability(triangle_graph, 0, 99)
        with pytest.raises(VertexNotFoundError):
            two_terminal_reliability(triangle_graph, 99, 0)

    def test_edge_restriction(self, triangle_graph):
        reliability = two_terminal_reliability(triangle_graph, 0, 1, edges=[Edge(0, 1)])
        assert reliability == pytest.approx(0.5)

    def test_certain_edges(self):
        graph = path_graph(3, probability=1.0)
        assert two_terminal_reliability(graph, 0, 2) == pytest.approx(1.0)


class TestAgainstEnumeration:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_random_graphs_match_enumeration(self, seed):
        graph = erdos_renyi_graph(9, average_degree=3.0, seed=seed)
        target = max(v for v in graph.vertices())
        expected = exact_reachability(graph, 0, target).probability
        assert two_terminal_reliability(graph, 0, target) == pytest.approx(expected, abs=1e-9)

    def test_cycle_graph(self):
        graph = cycle_graph(8, probability=0.6)
        expected = exact_reachability(graph, 0, 4).probability
        assert two_terminal_reliability(graph, 0, 4) == pytest.approx(expected, abs=1e-9)

    def test_dense_graph(self):
        graph = complete_graph(6, probability=0.3)
        expected = exact_reachability(graph, 0, 5).probability
        assert two_terminal_reliability(graph, 0, 5) == pytest.approx(expected, abs=1e-9)

    def test_handles_more_edges_than_enumeration_limit(self):
        """A long ladder has > 20 edges but factoring with reductions still solves it."""
        from repro.graph.uncertain_graph import UncertainGraph

        graph = UncertainGraph()
        length = 12
        for i in range(length + 1):
            graph.add_vertex(("a", i))
            graph.add_vertex(("b", i))
        probability = 0.9
        for i in range(length):
            graph.add_edge(("a", i), ("a", i + 1), probability)
            graph.add_edge(("b", i), ("b", i + 1), probability)
        graph.add_edge(("a", 0), ("b", 0), probability)
        graph.add_edge(("a", length), ("b", length), probability)
        result = two_terminal_reliability(graph, ("a", 0), ("a", length))
        # two disjoint length-12 / length-14 routes; bounded by union bound
        single_route = probability ** length
        assert result >= single_route
        assert result <= 2 * single_route + 0.05

    def test_budget_exceeded(self):
        graph = complete_graph(8, probability=0.5)
        with pytest.raises(FactoringBudgetExceeded):
            two_terminal_reliability(graph, 0, 7, recursion_budget=10)

"""Tests for the memoization cache (FT+M heuristic)."""

import pytest

from repro.ftree.memo import MemoCache, MemoEntry
from repro.types import Edge


def _entry(value: float = 0.5) -> MemoEntry:
    return MemoEntry(probabilities={"a": value}, n_samples=100, exact=False)


class TestMemoCache:
    def test_put_and_get(self):
        cache = MemoCache()
        key = MemoCache.make_key([Edge(0, 1)], 0)
        cache.put(key, _entry())
        assert cache.get(key).probabilities == {"a": 0.5}

    def test_miss_returns_none_and_counts(self):
        cache = MemoCache()
        assert cache.get(MemoCache.make_key([Edge(0, 1)], 0)) is None
        assert cache.misses == 1
        assert cache.hits == 0

    def test_hit_rate(self):
        cache = MemoCache()
        key = MemoCache.make_key([Edge(0, 1)], 0)
        cache.get(key)
        cache.put(key, _entry())
        cache.get(key)
        assert cache.hits == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_key_is_content_based(self):
        key_a = MemoCache.make_key([Edge(0, 1), Edge(1, 2)], 0)
        key_b = MemoCache.make_key([Edge(1, 2), Edge(0, 1)], 0)
        assert key_a == key_b
        key_c = MemoCache.make_key([Edge(0, 1), Edge(1, 2)], 1)
        assert key_a != key_c

    def test_lru_eviction(self):
        cache = MemoCache(max_entries=2)
        keys = [MemoCache.make_key([Edge(i, i + 1)], i) for i in range(3)]
        for key in keys:
            cache.put(key, _entry())
        assert keys[0] not in cache
        assert keys[1] in cache and keys[2] in cache

    def test_get_refreshes_lru_order(self):
        cache = MemoCache(max_entries=2)
        keys = [MemoCache.make_key([Edge(i, i + 1)], i) for i in range(3)]
        cache.put(keys[0], _entry())
        cache.put(keys[1], _entry())
        cache.get(keys[0])  # refresh key 0
        cache.put(keys[2], _entry())  # evicts key 1
        assert keys[0] in cache
        assert keys[1] not in cache

    def test_clear(self):
        cache = MemoCache()
        cache.put(MemoCache.make_key([Edge(0, 1)], 0), _entry())
        cache.get(MemoCache.make_key([Edge(0, 1)], 0))
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            MemoCache(max_entries=0)

    def test_stats(self):
        cache = MemoCache()
        cache.put(MemoCache.make_key([Edge(0, 1)], 0), _entry())
        stats = cache.stats()
        assert stats["entries"] == 1.0
        assert "hit_rate" in stats

    def test_unbounded_cache(self):
        cache = MemoCache(max_entries=None)
        for i in range(100):
            cache.put(MemoCache.make_key([Edge(i, i + 1)], i), _entry())
        assert len(cache) == 100

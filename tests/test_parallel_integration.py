"""Worker-count invariance and adaptive stopping across the whole stack.

The hard guarantee of :mod:`repro.parallel`: for a fixed
``(seed, n_samples, shard_size)`` every estimate and every greedy
selection is bit-for-bit identical no matter how many workers run the
shards — the serial reference executor and process pools of 2 and 4
workers must agree exactly, on both sampling backends.
"""

import numpy as np
import pytest

from repro.exceptions import SampleSizeError
from repro.graph.generators import erdos_renyi_graph
from repro.parallel import (
    AdaptiveSettings,
    ProcessExecutor,
    SerialExecutor,
)
from repro.reachability.backends import BACKEND_NAMES
from repro.reachability.context import EvaluationContext
from repro.reachability.engine import SamplingEngine
from repro.reachability.monte_carlo import (
    monte_carlo_expected_flow,
    monte_carlo_reachability,
)
from repro.selection.ftree_greedy import FTreeGreedySelector
from repro.selection.greedy_naive import NaiveGreedySelector

SHARD_SIZE = 16
N_SAMPLES = 96  # 6 shards


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(60, average_degree=6.0, seed=5)


@pytest.fixture(scope="module")
def pools():
    """One shared pool per worker count, so tests don't respawn processes.

    The ``"remote:2"`` entry is a :class:`~repro.distributed.RemoteExecutor`
    fronting two out-of-process workers over loopback — every invariance
    test below therefore also pins the distributed tier against the
    serial reference for free.
    """
    from repro.distributed import local_fleet

    with ProcessExecutor(2) as pool2, ProcessExecutor(4) as pool4, local_fleet(
        2
    ) as fleet:
        yield {1: SerialExecutor(), 2: pool2, 4: pool4, "remote:2": fleet.executor}


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_world_batches_identical(self, graph, pools, backend):
        engine = SamplingEngine(backend)
        batches = {
            workers: engine.sample_worlds(
                graph, 0, N_SAMPLES, seed=123, executor=executor, shard_size=SHARD_SIZE
            )
            for workers, executor in pools.items()
        }
        reference = batches[1]
        assert reference.n_samples == N_SAMPLES
        for workers, batch in batches.items():
            assert np.array_equal(batch.reached, reference.reached), workers

    def test_flip_batches_identical(self, graph, pools):
        engine = SamplingEngine()
        flips = [
            engine.sample_flips(
                graph, 0, N_SAMPLES, seed=9, executor=executor, shard_size=SHARD_SIZE
            ).flips
            for executor in pools.values()
        ]
        for other in flips[1:]:
            assert np.array_equal(flips[0], other)

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_flow_estimates_identical(self, graph, pools, backend):
        estimates = [
            monte_carlo_expected_flow(
                graph,
                0,
                n_samples=N_SAMPLES,
                seed=7,
                backend=backend,
                executor=executor,
                shard_size=SHARD_SIZE,
            )
            for executor in pools.values()
        ]
        assert len({e.expected_flow for e in estimates}) == 1
        assert len({e.variance for e in estimates}) == 1
        for other in estimates[1:]:
            assert other.reachability == estimates[0].reachability

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_naive_greedy_selections_identical(self, graph, pools, backend):
        selections = []
        for executor in pools.values():
            selector = NaiveGreedySelector(
                n_samples=64, seed=3, backend=backend, executor=executor, shard_size=SHARD_SIZE
            )
            selections.append(selector.select(graph, 0, budget=3))
        reference = selections[0]
        for result in selections[1:]:
            assert result.selected_edges == reference.selected_edges
            assert result.expected_flow == reference.expected_flow

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_ftree_greedy_selections_identical(self, graph, pools, backend):
        selections = []
        for executor in pools.values():
            selector = FTreeGreedySelector(
                n_samples=64,
                exact_threshold=0,  # force sampling so the executor is exercised
                memoize=True,
                seed=3,
                backend=backend,
                executor=executor,
                shard_size=SHARD_SIZE,
            )
            selections.append(selector.select(graph, 0, budget=3))
        reference = selections[0]
        for result in selections[1:]:
            assert result.selected_edges == reference.selected_edges
            assert result.expected_flow == reference.expected_flow

    def test_evaluation_context_scores_identical(self, graph, pools):
        edges = graph.edge_list()
        base, candidates = edges[:3], edges[3:9]
        all_scores = []
        for executor in pools.values():
            context = EvaluationContext(
                graph, 0, n_samples=N_SAMPLES, seed=21, executor=executor, shard_size=SHARD_SIZE
            )
            all_scores.append(context.score_candidates(base, candidates).scores)
        for other in all_scores[1:]:
            assert np.array_equal(all_scores[0], other)


class TestShardBoundaries:
    def test_indivisible_sample_count(self, graph, pools):
        engine = SamplingEngine()
        batches = [
            engine.sample_worlds(graph, 0, 50, seed=2, executor=executor, shard_size=16)
            for executor in pools.values()
        ]
        assert batches[0].n_samples == 50
        for other in batches[1:]:
            assert np.array_equal(batches[0].reached, other.reached)

    def test_single_shard_request(self, graph, pools):
        engine = SamplingEngine()
        batches = [
            engine.sample_worlds(graph, 0, 5, seed=2, executor=executor, shard_size=100)
            for executor in pools.values()
        ]
        for other in batches[1:]:
            assert np.array_equal(batches[0].reached, other.reached)

    def test_zero_samples_still_rejected(self, graph):
        engine = SamplingEngine(executor=SerialExecutor(), shard_size=8)
        with pytest.raises(SampleSizeError):
            engine.sample_worlds(graph, 0, 0, seed=2)
        with pytest.raises(SampleSizeError):
            engine.sample_flips(graph, 0, 0, seed=2)

    def test_shard_size_is_part_of_the_determinism_key(self, graph):
        engine = SamplingEngine(executor=SerialExecutor())
        a = engine.sample_worlds(graph, 0, 64, seed=2, shard_size=16)
        b = engine.sample_worlds(graph, 0, 64, seed=2, shard_size=32)
        assert not np.array_equal(a.reached, b.reached)

    def test_unsharded_path_untouched_by_subsystem(self, graph):
        # executor=None must keep the historical single-stream draw
        engine = SamplingEngine("naive")
        import numpy.random as npr

        direct = engine.backend.sample_reachability(
            engine.sample_worlds(graph, 0, 20, seed=4).problem, 20, npr.default_rng(4)
        )
        assert np.array_equal(engine.sample_worlds(graph, 0, 20, seed=4).reached, direct)


class TestDefaultExecutorRouting:
    def test_session_default_shards_unspecified_calls(self, graph):
        import repro

        with repro.session(workers=SerialExecutor()):
            via_default = monte_carlo_expected_flow(graph, 0, n_samples=64, seed=6)
        explicit = monte_carlo_expected_flow(
            graph, 0, n_samples=64, seed=6, executor=SerialExecutor()
        )
        unsharded = monte_carlo_expected_flow(graph, 0, n_samples=64, seed=6)
        assert via_default.expected_flow == explicit.expected_flow
        assert via_default.expected_flow != unsharded.expected_flow


class TestConcurrentServiceUse:
    """Shared-resource contention must never change a single bit.

    A long-lived service hands one :class:`WorldCache` and one
    :class:`ProcessExecutor` to many concurrent evaluators (threads
    and/or asyncio tasks).  These tests hammer that sharing and pin the
    answers against an uncontended serial run with the same
    ``(seed, backend, shard plan)`` — contention may reorder *when*
    batches are sampled or served from cache, never *what* they contain.
    """

    N_THREADS = 6

    @staticmethod
    def _requests(graph):
        from repro.service import QueryRequest

        vertices = list(graph.vertices())
        requests = []
        for source in vertices[:3]:
            requests.append(
                QueryRequest(
                    kind="expected_flow", source=source, n_samples=N_SAMPLES, seed=11
                )
            )
            for target in vertices[3:7]:
                requests.append(
                    QueryRequest(
                        kind="pair_reachability",
                        source=source,
                        target=target,
                        n_samples=N_SAMPLES,
                        seed=11,
                    )
                )
        return requests

    @staticmethod
    def _payloads(results):
        return [
            (result.flow, result.reachability, result.probabilities)
            for result in results
        ]

    def _serial_reference(self, graph, requests):
        from repro.service import BatchEvaluator

        evaluator = BatchEvaluator(
            executor=SerialExecutor(), shard_size=SHARD_SIZE, cache=0
        )
        return self._payloads(evaluator.evaluate(graph, requests))

    def test_threaded_shared_cache_and_executor_match_serial(self, graph):
        import threading

        from repro.service import BatchEvaluator, WorldCache

        requests = self._requests(graph)
        reference = self._serial_reference(graph, requests)
        cache = WorldCache(max_entries=32)
        outcomes = [None] * self.N_THREADS
        start = threading.Barrier(self.N_THREADS)
        with ProcessExecutor(2) as pool:

            def run(slot):
                evaluator = BatchEvaluator(
                    executor=pool, shard_size=SHARD_SIZE, cache=cache
                )
                start.wait(timeout=10)  # all threads hit the cold pool together
                try:
                    outcomes[slot] = self._payloads(evaluator.evaluate(graph, requests))
                except Exception as error:  # pragma: no cover - fails below
                    outcomes[slot] = error

            threads = [
                threading.Thread(target=run, args=(slot,))
                for slot in range(self.N_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        for outcome in outcomes:
            assert not isinstance(outcome, Exception), outcome
            assert outcome == reference
        # contention bookkeeping stayed consistent: every lookup was
        # either a hit or a miss, and the rate reflects one snapshot
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] >= len(reference) * 1.0
        assert 0.0 <= stats["hit_rate"] <= 1.0

    def test_asyncio_tasks_over_shared_session_match_serial(self, graph):
        import asyncio

        import repro

        requests = self._requests(graph)
        reference = self._serial_reference(graph, requests)

        async def hammer():
            with repro.session(
                workers=SerialExecutor(), shard_size=SHARD_SIZE, world_cache=32
            ) as shared:
                async def one():
                    return self._payloads(
                        await asyncio.to_thread(shared.batch, graph, requests)
                    )

                return await asyncio.gather(*(one() for _ in range(4)))

        for outcome in asyncio.run(hammer()):
            assert outcome == reference


class TestAdaptiveStopping:
    def test_adaptive_pair_reachability_is_worker_invariant(self, graph, pools):
        settings = AdaptiveSettings(
            target_width=0.15, alpha=0.05, max_samples=2000, min_samples=50
        )
        estimates = [
            monte_carlo_reachability(
                graph,
                0,
                1,
                n_samples="auto",
                seed=13,
                adaptive=settings,
                executor=executor,
                shard_size=SHARD_SIZE,
            )
            for executor in pools.values()
        ]
        assert len({e.n_samples for e in estimates}) == 1
        assert len({e.probability for e in estimates}) == 1

    def test_adaptive_stops_before_the_cap_on_easy_instances(self, graph):
        settings = AdaptiveSettings(
            target_width=0.5, alpha=0.05, max_samples=4000, min_samples=32
        )
        estimate = monte_carlo_reachability(
            graph, 0, 1, n_samples="auto", seed=13, adaptive=settings, shard_size=32
        )
        assert estimate.n_samples < settings.max_samples
        assert estimate.n_samples >= settings.min_samples

    def test_adaptive_hits_the_cap_when_the_target_is_unreachable(self, graph):
        settings = AdaptiveSettings(
            target_width=1e-6, alpha=0.05, max_samples=256, min_samples=32
        )
        estimate = monte_carlo_reachability(
            graph, 0, 1, n_samples="auto", seed=13, adaptive=settings, shard_size=32
        )
        assert estimate.n_samples == settings.max_samples

    def test_adaptive_flow_estimate(self, graph):
        settings = AdaptiveSettings(
            target_width=20.0, alpha=0.05, max_samples=2000, min_samples=64
        )
        estimate = monte_carlo_expected_flow(
            graph, 0, n_samples="auto", seed=13, adaptive=settings, shard_size=32
        )
        assert estimate.n_samples >= settings.min_samples
        assert estimate.n_samples <= settings.max_samples
        assert estimate.expected_flow > 0.0

    def test_adaptive_is_deterministic_per_seed(self, graph):
        settings = AdaptiveSettings(target_width=0.2, alpha=0.05, max_samples=1000)
        first = monte_carlo_reachability(
            graph, 0, 1, n_samples="auto", seed=17, adaptive=settings
        )
        second = monte_carlo_reachability(
            graph, 0, 1, n_samples="auto", seed=17, adaptive=settings
        )
        assert first.probability == second.probability
        assert first.n_samples == second.n_samples

    def test_adaptive_source_equals_target_honours_settings(self, graph):
        settings = AdaptiveSettings(min_samples=500, max_samples=5000)
        estimate = monte_carlo_reachability(
            graph, 0, 0, n_samples="auto", adaptive=settings
        )
        assert estimate.probability == 1.0
        assert estimate.n_samples == settings.min_samples

    def test_bad_sample_spec_rejected(self, graph):
        with pytest.raises(ValueError):
            monte_carlo_expected_flow(graph, 0, n_samples="adaptive")
        with pytest.raises(ValueError):
            monte_carlo_reachability(graph, 0, 1, n_samples="all")

    def test_estimator_rejects_bad_sample_spec_at_construction(self, graph):
        from repro.reachability.monte_carlo import MonteCarloFlowEstimator

        with pytest.raises(ValueError):
            MonteCarloFlowEstimator(graph, 0, n_samples="autoo")
        estimator = MonteCarloFlowEstimator(
            graph, 0, n_samples="auto", seed=3,
            adaptive=AdaptiveSettings(target_width=50.0, max_samples=500, min_samples=64),
        )
        assert estimator.estimate().n_samples >= 64

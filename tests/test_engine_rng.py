"""RNG-contract and registry tests for the sampling engine.

Statistical regression tests pinning the reproducibility contract after
the engine rewiring: the same seed must yield the identical
:class:`FlowEstimate` (flow, per-vertex reachability, variance) across
repeated runs for every backend, :class:`ComponentSampler` draws must
stay reproducible, and the backend registry must behave like the
selection registry it mirrors.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError, SampleSizeError, VertexNotFoundError
from repro.experiments.config import ExperimentConfig
from repro.ftree.sampler import ComponentSampler
from repro.graph.generators import cycle_graph, erdos_renyi_graph
from repro.reachability.backends import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    NaiveSamplingBackend,
    VectorizedSamplingBackend,
    get_default_backend,
    make_backend,
    register_backend,
)
from repro.reachability.backends import _FACTORIES
from repro.reachability.backends import vectorized as vectorized_module
from repro.reachability.engine import SamplingEngine
from repro.reachability.monte_carlo import (
    MonteCarloFlowEstimator,
    monte_carlo_component_reachability,
    monte_carlo_expected_flow,
    monte_carlo_reachability,
)


@pytest.fixture
def medium_graph():
    """A reproducible 30-vertex graph, large enough to exercise batching."""
    return erdos_renyi_graph(30, average_degree=4.0, seed=5)


@pytest.mark.parametrize("backend", BACKEND_NAMES)
class TestSeedDeterminism:
    def test_flow_estimate_identical_across_runs(self, medium_graph, backend):
        first = monte_carlo_expected_flow(
            medium_graph, 0, n_samples=120, seed=42, backend=backend
        )
        second = monte_carlo_expected_flow(
            medium_graph, 0, n_samples=120, seed=42, backend=backend
        )
        assert first.expected_flow == second.expected_flow
        assert first.reachability == second.reachability
        assert first.variance == second.variance

    def test_pair_reachability_identical_across_runs(self, medium_graph, backend):
        first = monte_carlo_reachability(
            medium_graph, 0, 7, n_samples=200, seed=3, backend=backend
        )
        second = monte_carlo_reachability(
            medium_graph, 0, 7, n_samples=200, seed=3, backend=backend
        )
        assert first == second

    def test_component_reachability_identical_across_runs(self, medium_graph, backend):
        kwargs = dict(n_samples=150, seed=11, backend=backend)
        first = monte_carlo_component_reachability(
            medium_graph, 0, [1, 2, 3], medium_graph.edge_list(), **kwargs
        )
        second = monte_carlo_component_reachability(
            medium_graph, 0, [1, 2, 3], medium_graph.edge_list(), **kwargs
        )
        assert first == second

    def test_estimator_class_streams_are_reproducible(self, medium_graph, backend):
        """Two estimators seeded identically replay the same estimate sequence."""
        left = MonteCarloFlowEstimator(medium_graph, 0, n_samples=60, seed=8, backend=backend)
        right = MonteCarloFlowEstimator(medium_graph, 0, n_samples=60, seed=8, backend=backend)
        for _ in range(3):
            assert left.estimate().expected_flow == right.estimate().expected_flow

    def test_generator_seed_advances_the_stream(self, medium_graph, backend):
        """Consecutive estimates from one estimator use fresh worlds."""
        estimator = MonteCarloFlowEstimator(
            medium_graph, 0, n_samples=60, seed=8, backend=backend
        )
        assert estimator.estimate().reachability != estimator.estimate().reachability


class TestComponentSamplerRewiring:
    def test_sampler_draws_reproducible_per_seed(self):
        graph = cycle_graph(9, probability=0.5)
        vertices = [v for v in graph.vertices() if v != 0]
        estimates = [
            ComponentSampler(n_samples=400, exact_threshold=0, seed=21).reachability(
                graph, 0, vertices, graph.edge_list()
            )
            for _ in range(2)
        ]
        assert estimates[0].probabilities == estimates[1].probabilities
        assert not estimates[0].exact

    def test_sampler_backends_bitwise_equal_per_seed(self):
        graph = cycle_graph(9, probability=0.5)
        vertices = [v for v in graph.vertices() if v != 0]
        per_backend = [
            ComponentSampler(
                n_samples=400, exact_threshold=0, seed=21, backend=backend
            ).reachability(graph, 0, vertices, graph.edge_list())
            for backend in BACKEND_NAMES
        ]
        reference = per_backend[0].probabilities
        for estimate in per_backend[1:]:
            assert estimate.probabilities == reference

    def test_default_backend_is_registry_default(self):
        sampler = ComponentSampler(n_samples=10)
        assert sampler._engine.backend.name == DEFAULT_BACKEND


class TestHitFrequencies:
    def test_bulk_matches_per_vertex_hit_frequency(self, medium_graph):
        batch = SamplingEngine().sample_worlds(medium_graph, 0, 200, seed=6)
        vertices = list(medium_graph.vertices())
        bulk = batch.hit_frequencies(vertices)
        for vertex, frequency in zip(vertices, bulk):
            assert float(frequency) == batch.hit_frequency(vertex)

    def test_unknown_vertices_report_zero_in_input_order(self, medium_graph):
        batch = SamplingEngine().sample_worlds(medium_graph, 0, 50, seed=6)
        bulk = batch.hit_frequencies(["missing", 0, "also-missing"])
        assert bulk[0] == 0.0
        assert bulk[1] == 1.0  # the source reaches itself in every world
        assert bulk[2] == 0.0


class TestEngineValidation:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_non_positive_samples_rejected(self, medium_graph, backend):
        with pytest.raises(SampleSizeError):
            SamplingEngine(backend).expected_flow(medium_graph, 0, n_samples=0)

    def test_unknown_query_rejected(self, medium_graph):
        with pytest.raises(VertexNotFoundError):
            SamplingEngine().expected_flow(medium_graph, "missing", n_samples=10)

    def test_empty_edge_restriction_reaches_only_source(self, medium_graph):
        batch = SamplingEngine().sample_worlds(medium_graph, 0, 5, seed=0, edges=[])
        assert batch.problem.n_vertices == 1
        assert batch.reached.all()


class TestBackendRegistry:
    def test_builtin_names(self):
        assert "naive" in BACKEND_NAMES
        assert "vectorized" in BACKEND_NAMES
        assert DEFAULT_BACKEND in BACKEND_NAMES

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown sampling backend"):
            make_backend("warp-drive")

    def test_instance_passes_through(self):
        backend = VectorizedSamplingBackend()
        assert make_backend(backend) is backend

    def test_none_resolves_to_default(self):
        assert make_backend(None).name == DEFAULT_BACKEND

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("naive", NaiveSamplingBackend)

    def test_decorator_registration_roundtrip(self):
        @register_backend("test-slow-bfs")
        class _TestBackend(NaiveSamplingBackend):
            name = "test-slow-bfs"

        try:
            assert make_backend("test-slow-bfs").name == "test-slow-bfs"
        finally:
            _FACTORIES.pop("test-slow-bfs", None)

    def test_experiment_config_validates_backend(self):
        assert ExperimentConfig(backend="naive").backend == "naive"
        assert ExperimentConfig().backend is None
        with pytest.raises(ExperimentError, match="unknown sampling backend"):
            ExperimentConfig(backend="warp-drive")

    def test_runtime_default_redirects_none(self):
        # (the deprecated set_default_backend shim over this store is
        # pinned in tests/test_runtime_deprecations.py)
        from repro.runtime import defaults

        defaults.backend = "naive"
        try:
            assert get_default_backend() == "naive"
            assert make_backend(None).name == "naive"
            assert ComponentSampler(n_samples=10)._engine.backend.name == "naive"
        finally:
            defaults.backend = None
        assert get_default_backend() == DEFAULT_BACKEND

    def test_session_scope_redirects_none(self):
        import repro

        with repro.session(backend="naive"):
            assert get_default_backend() == "naive"
            assert make_backend(None).name == "naive"
        assert get_default_backend() == DEFAULT_BACKEND


class TestChunkedDrawing:
    def test_chunked_blocks_preserve_the_stream(self, medium_graph, monkeypatch):
        """Forcing many tiny chunks must not change the sampled worlds."""
        whole = monte_carlo_expected_flow(
            medium_graph, 0, n_samples=90, seed=13, backend="vectorized"
        )
        monkeypatch.setattr(vectorized_module, "_MAX_BLOCK_ELEMENTS", 1)
        chunked = monte_carlo_expected_flow(
            medium_graph, 0, n_samples=90, seed=13, backend="vectorized"
        )
        naive = monte_carlo_expected_flow(
            medium_graph, 0, n_samples=90, seed=13, backend="naive"
        )
        assert chunked.expected_flow == whole.expected_flow == naive.expected_flow
        assert chunked.reachability == whole.reachability == naive.reachability
        assert chunked.variance == whole.variance


class TestCustomBackendThroughEstimators:
    def test_backend_instance_accepted_by_estimator(self, medium_graph):
        by_name = monte_carlo_expected_flow(
            medium_graph, 0, n_samples=80, seed=4, backend="vectorized"
        )
        by_instance = monte_carlo_expected_flow(
            medium_graph, 0, n_samples=80, seed=4, backend=VectorizedSamplingBackend()
        )
        assert by_name.expected_flow == by_instance.expected_flow
        assert by_name.reachability == by_instance.reachability

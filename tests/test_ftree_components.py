"""Tests for the F-tree component classes."""

import pytest

from repro.exceptions import FTreeInvariantError
from repro.ftree.components import BiConnectedComponent, MonoConnectedComponent
from repro.ftree.sampler import ComponentSampler
from repro.graph.generators import path_graph
from repro.types import Edge


class TestMonoComponent:
    def test_add_vertices_and_edges(self):
        component = MonoConnectedComponent(1, articulation="Q")
        component.add_vertex("a", "Q")
        component.add_vertex("b", "a")
        assert component.vertices == {"a", "b"}
        assert component.edges() == {Edge("Q", "a"), Edge("a", "b")}
        assert component.is_mono

    def test_add_vertex_requires_known_parent(self):
        component = MonoConnectedComponent(1, articulation="Q")
        with pytest.raises(FTreeInvariantError):
            component.add_vertex("a", "unknown")

    def test_duplicate_vertex_rejected(self):
        component = MonoConnectedComponent(1, articulation="Q")
        component.add_vertex("a", "Q")
        with pytest.raises(FTreeInvariantError):
            component.add_vertex("a", "Q")

    def test_path_to_articulation(self):
        component = MonoConnectedComponent(1, articulation="Q")
        component.add_vertex("a", "Q")
        component.add_vertex("b", "a")
        component.add_vertex("c", "b")
        assert component.path_to_articulation("c") == ["c", "b", "a", "Q"]
        assert component.path_to_articulation("Q") == ["Q"]

    def test_path_of_foreign_vertex_rejected(self):
        component = MonoConnectedComponent(1, articulation="Q")
        with pytest.raises(FTreeInvariantError):
            component.path_to_articulation("nope")

    def test_subtree_vertices(self):
        component = MonoConnectedComponent(1, articulation="Q")
        component.add_vertex("a", "Q")
        component.add_vertex("b", "a")
        component.add_vertex("c", "a")
        component.add_vertex("d", "Q")
        assert component.subtree_vertices("a") == {"a", "b", "c"}
        assert component.subtree_vertices("d") == {"d"}

    def test_local_reachability_is_path_product(self):
        graph = path_graph(4, probability=0.5)
        component = MonoConnectedComponent(1, articulation=0)
        component.add_vertex(1, 0)
        component.add_vertex(2, 1)
        component.add_vertex(3, 2)
        reach = component.local_reachability(graph)
        assert reach[1] == pytest.approx(0.5)
        assert reach[2] == pytest.approx(0.25)
        assert reach[3] == pytest.approx(0.125)

    def test_remove_vertices(self):
        component = MonoConnectedComponent(1, articulation="Q")
        component.add_vertex("a", "Q")
        component.add_vertex("b", "a")
        component.remove_vertices(["b"])
        assert component.vertices == {"a"}
        assert "b" not in component.parent_of

    def test_clone_is_independent(self):
        component = MonoConnectedComponent(1, articulation="Q")
        component.add_vertex("a", "Q")
        clone = component.clone(component_id=9)
        clone.add_vertex("b", "a")
        assert component.vertices == {"a"}
        assert clone.component_id == 9

    def test_check_invariants(self):
        component = MonoConnectedComponent(1, articulation="Q")
        component.add_vertex("a", "Q")
        component.check_invariants()
        component.parent_of["a"] = "a"  # corrupt: self-parent cycle
        with pytest.raises(FTreeInvariantError):
            component.check_invariants()


class TestBiComponent:
    def test_add_edge_tracks_vertices(self):
        component = BiConnectedComponent(2, articulation=0)
        component.add_edge(Edge(0, 1))
        component.add_edge(Edge(1, 2))
        component.add_edge(Edge(2, 0))
        assert component.vertices == {1, 2}
        assert not component.is_mono
        assert component.needs_estimation

    def test_local_reachability_uses_sampler(self, triangle_graph):
        component = BiConnectedComponent(2, articulation=0)
        for edge in triangle_graph.edges():
            component.add_edge(edge)
        sampler = ComponentSampler(n_samples=10, exact_threshold=10, seed=0)
        reach = component.local_reachability(triangle_graph, sampler)
        # exact since the component is tiny: P(0 <-> 1) = 0.5 + 0.5 * 0.7 * 0.6
        assert reach[1] == pytest.approx(0.5 + 0.5 * 0.42)
        assert not component.needs_estimation

    def test_local_reachability_without_sampler_raises(self, triangle_graph):
        component = BiConnectedComponent(2, articulation=0)
        component.add_edge(Edge(0, 1))
        with pytest.raises(FTreeInvariantError):
            component.local_reachability(triangle_graph, None)

    def test_invalidate_clears_cache(self, triangle_graph):
        component = BiConnectedComponent(2, articulation=0)
        for edge in triangle_graph.edges():
            component.add_edge(edge)
        sampler = ComponentSampler(n_samples=10, exact_threshold=10, seed=0)
        component.local_reachability(triangle_graph, sampler)
        component.invalidate()
        assert component.needs_estimation

    def test_adding_edge_invalidates(self, triangle_graph):
        component = BiConnectedComponent(2, articulation=0)
        component.add_edge(Edge(0, 1))
        sampler = ComponentSampler(n_samples=10, exact_threshold=10, seed=0)
        component.local_reachability(triangle_graph, sampler)
        component.add_edge(Edge(1, 2))
        assert component.needs_estimation

    def test_absorb(self):
        component = BiConnectedComponent(2, articulation=0)
        component.absorb(vertices=[1, 2], edges=[Edge(0, 1), Edge(1, 2), Edge(2, 0)])
        assert component.vertices == {1, 2}
        assert len(component.edges()) == 3

    def test_clone_preserves_cache(self, triangle_graph):
        component = BiConnectedComponent(2, articulation=0)
        for edge in triangle_graph.edges():
            component.add_edge(edge)
        sampler = ComponentSampler(n_samples=10, exact_threshold=10, seed=0)
        component.local_reachability(triangle_graph, sampler)
        clone = component.clone()
        assert clone.reach == component.reach
        assert clone.reach is not component.reach

    def test_check_invariants_detects_foreign_edges(self):
        component = BiConnectedComponent(2, articulation=0)
        component.add_edge(Edge(0, 1))
        component.vertices.discard(1)
        with pytest.raises(FTreeInvariantError):
            component.check_invariants()

"""The async serving tier: protocol, coalescing, admission, determinism.

The load-bearing test is :class:`TestServedBitsMatchDirectEvaluation`:
eight concurrent clients hammering one server over TCP must receive
answers bit-for-bit identical to direct ``BatchEvaluator`` calls for the
same ``(seed, backend, shard plan)`` — the serving tier may change when
worlds are sampled, never which.

Everything runs on the real stack — ``asyncio.start_server`` on an
ephemeral loopback port, real sockets, the real coalescing dispatcher —
wrapped in ``asyncio.run`` (no async test plugin needed).
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
from pathlib import Path

import pytest

from repro.graph.generators import erdos_renyi_graph
from repro.parallel import SerialExecutor
from repro.runtime import RuntimeConfig
from repro.server import (
    ReproServer,
    ServerClient,
    ServerConfig,
    protocol,
)
from repro.server.metrics import ServerMetrics, percentile
from repro.service import (
    BatchEvaluator,
    QueryRequest,
    request_to_dict,
    result_to_dict,
)

N_SAMPLES = 160
SEED = 11


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(50, 5.0, seed=4)


def workload(graph=None):
    """A mixed request workload sharing a handful of world batches."""
    requests = [
        QueryRequest(kind="expected_flow", source=0, n_samples=N_SAMPLES, seed=SEED),
        QueryRequest(kind="expected_flow", source=7, n_samples=N_SAMPLES, seed=SEED + 1),
    ]
    if graph is not None:
        edges = list(graph.incident_edges(0))[:3]
        requests.append(
            QueryRequest(
                kind="component_reachability",
                source=0,
                targets=tuple(sorted({v for e in edges for v in (e.u, e.v)} - {0})),
                edges=tuple(edges),
                n_samples=N_SAMPLES,
                seed=SEED,
            )
        )
    for target in range(1, 12):
        requests.append(
            QueryRequest(
                kind="pair_reachability",
                source=0,
                target=target,
                n_samples=N_SAMPLES,
                seed=SEED,
            )
        )
    return requests


def direct_reference(graph, requests):
    """What a direct, uncached BatchEvaluator answers — the bit oracle."""
    with BatchEvaluator(cache=0) as evaluator:
        results = evaluator.evaluate(graph, requests)
    return [comparable(json.loads(json.dumps(result_to_dict(r)))) for r in results]


def comparable(payload):
    """A response payload stripped to its deterministic evaluation bits."""
    return {
        key: value
        for key, value in payload.items()
        if key not in ("id", "ok", "latency_ms", "from_cache")
    }


def run(coro):
    return asyncio.run(coro)


async def start_server(graph, **overrides):
    server = ReproServer(graph, ServerConfig(port=0, **overrides))
    await server.start()
    return server


class TestProtocol:
    def test_lines_round_trip(self):
        payload = {"kind": "health", "id": 3, "nested": {"a": [1, 2.5]}}
        assert protocol.decode_line(protocol.encode_line(payload)) == payload

    def test_decode_rejects_non_objects(self):
        with pytest.raises(ValueError):
            protocol.decode_line(b"[1, 2, 3]\n")

    def test_envelopes(self):
        ok = protocol.ok_response(9, {"kind": "health", "status": "ok"})
        assert ok == {"id": 9, "ok": True, "kind": "health", "status": "ok"}
        error = protocol.error_response(9, protocol.ERR_OVER_CAPACITY, "full")
        assert error["ok"] is False
        assert error["error"]["type"] == "over_capacity"

    def test_is_rejection_only_for_backpressure_types(self):
        assert protocol.is_rejection(
            protocol.error_response(1, protocol.ERR_OVER_CAPACITY, "")
        )
        assert protocol.is_rejection(
            protocol.error_response(1, protocol.ERR_SHUTTING_DOWN, "")
        )
        assert not protocol.is_rejection(
            protocol.error_response(1, protocol.ERR_BAD_REQUEST, "")
        )
        assert not protocol.is_rejection(protocol.ok_response(1, {}))

    def test_request_line_attaches_transport_fields(self):
        line = protocol.request_line({"kind": "health"}, request_id=4, tenant="t")
        assert protocol.decode_line(line) == {"kind": "health", "id": 4, "tenant": "t"}


class TestServerMetrics:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(values, 50.0) == 5.0
        assert percentile(values, 95.0) == 10.0
        assert percentile([], 50.0) is None
        assert percentile([7.0], 99.0) == 7.0

    def test_snapshot_shape(self):
        metrics = ServerMetrics()
        metrics.observe_admitted()
        metrics.observe_answered("expected_flow", 0.002)
        metrics.observe_answered("pair_reachability", 0.004)
        metrics.observe_rejected(protocol.ERR_OVER_CAPACITY)
        metrics.observe_batch(2)
        snap = metrics.snapshot()
        assert snap["requests"]["answered"] == 2
        assert snap["requests"]["answered_by_kind"] == {
            "expected_flow": 1,
            "pair_reachability": 1,
        }
        assert snap["requests"]["rejected"] == {"over_capacity": 1}
        assert snap["coalescing"] == {
            "batches": 1,
            "batched_requests": 2,
            "largest_batch": 2,
            "mean_batch_size": 2.0,
        }
        assert snap["latency_ms"]["count"] == 2
        # percentiles are interpolated from the histogram buckets and
        # clamped to the exactly tracked [min, max]: 2ms lands in the
        # (1ms, 2.5ms] bucket (p50 -> 2.5ms), p99 clamps to the 4ms max
        assert snap["latency_ms"]["p50"] == pytest.approx(2.5)
        assert snap["latency_ms"]["p99"] == pytest.approx(4.0)
        assert snap["latency_ms"]["max"] == pytest.approx(4.0)

    def test_percentiles_interpolate_and_clamp_to_observed_range(self):
        metrics = ServerMetrics()
        for latency in (0.001, 0.002, 0.009):
            metrics.observe_answered("expected_flow", latency)
        snap = metrics.snapshot()
        assert snap["latency_ms"]["count"] == 3
        # rank 1.5 of 3 falls halfway into the (1ms, 2.5ms] bucket
        assert snap["latency_ms"]["p50"] == pytest.approx(1.75)
        # no estimate may leave the observed range
        assert snap["latency_ms"]["p99"] <= snap["latency_ms"]["max"]
        assert snap["latency_ms"]["max"] == pytest.approx(9.0)
        # constant memory: no sliding window is retained anymore
        assert "window" not in snap["latency_ms"]


class TestServerConfigValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ServerConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServerConfig(batch_window_ms=-1.0)
        with pytest.raises(ValueError):
            ServerConfig(max_inflight=0)
        with pytest.raises(ValueError):
            ServerConfig(default_n_samples=0)
        with pytest.raises(TypeError):
            ServerConfig(runtime="naive")


class TestServedBitsMatchDirectEvaluation:
    """The tier's hard guarantee, under real concurrency."""

    N_CLIENTS = 8

    def test_eight_concurrent_clients_get_direct_evaluator_bits(self, graph):
        requests = workload(graph)
        reference = direct_reference(graph, requests)
        payloads = [request_to_dict(r) for r in requests]

        async def one_client(host, port):
            client = await ServerClient.connect(host, port)
            try:
                responses = await asyncio.gather(
                    *(client.query(payload) for payload in payloads)
                )
            finally:
                await client.close()
            return responses

        async def scenario():
            server = await start_server(
                graph, runtime=RuntimeConfig(world_cache=32), batch_window_ms=5.0
            )
            host, port = server.address
            try:
                per_client = await asyncio.gather(
                    *(one_client(host, port) for _ in range(self.N_CLIENTS))
                )
            finally:
                await server.stop()
            return per_client, server.metrics.snapshot()

        per_client, metrics = run(scenario())
        assert len(per_client) == self.N_CLIENTS
        for responses in per_client:
            assert all(response["ok"] for response in responses)
            assert [comparable(response) for response in responses] == reference
        served = metrics["requests"]["answered"]
        assert served == self.N_CLIENTS * len(requests)
        # concurrently arriving requests actually coalesced
        assert metrics["coalescing"]["largest_batch"] >= 2
        assert metrics["coalescing"]["batches"] < served

    def test_sharded_server_matches_sharded_direct_evaluation(self, graph):
        requests = workload(graph)[:6]
        with BatchEvaluator(executor=SerialExecutor(), shard_size=32, cache=0) as ev:
            reference = [
                comparable(json.loads(json.dumps(result_to_dict(r))))
                for r in ev.evaluate(graph, requests)
            ]

        async def scenario():
            server = await start_server(
                graph,
                runtime=RuntimeConfig(
                    workers=SerialExecutor(), shard_size=32, world_cache=8
                ),
            )
            host, port = server.address
            client = await ServerClient.connect(host, port)
            try:
                return await asyncio.gather(
                    *(client.query(request_to_dict(r)) for r in requests)
                )
            finally:
                await client.close()
                await server.stop()

        responses = run(scenario())
        assert [comparable(r) for r in responses] == reference

    def test_unsharded_and_sharded_servers_disagree_only_on_world_stream(self, graph):
        # sanity guard for the comparisons above: the shard signature is
        # part of the world key, so the two configurations legitimately
        # produce different (but each internally deterministic) streams
        request = workload()[0]
        direct_unsharded = direct_reference(graph, [request])[0]
        with BatchEvaluator(executor=SerialExecutor(), shard_size=32, cache=0) as ev:
            direct_sharded = comparable(
                json.loads(json.dumps(result_to_dict(ev.evaluate(graph, [request])[0])))
            )
        assert direct_unsharded != direct_sharded


class TestControlKinds:
    def test_health_reports_graph_and_status(self, graph):
        async def scenario():
            server = await start_server(graph)
            host, port = server.address
            client = await ServerClient.connect(host, port)
            try:
                return await client.health()
            finally:
                await client.close()
                await server.stop()

        health = run(scenario())
        assert health["ok"] is True
        assert health["status"] == "ok"
        assert health["graph"]["n_vertices"] == graph.n_vertices
        assert health["graph"]["n_edges"] == graph.n_edges
        assert health["uptime_s"] >= 0

    def test_metrics_exposes_cache_executor_and_latency_surface(self, graph):
        async def scenario():
            server = await start_server(
                graph,
                runtime=RuntimeConfig(
                    workers=SerialExecutor(), shard_size=32, world_cache=8
                ),
            )
            host, port = server.address
            client = await ServerClient.connect(host, port)
            try:
                await client.query(request_to_dict(workload()[0]))
                await client.query(request_to_dict(workload()[0]))
                return await client.metrics()
            finally:
                await client.close()
                await server.stop()

        metrics = run(scenario())
        assert metrics["cache"]["hits"] == 1.0
        assert metrics["cache"]["misses"] == 1.0
        assert metrics["cache"]["hit_rate"] == 0.5
        assert metrics["executor"] == {"workers": 1, "shard_size": 32, "sharded": True}
        assert metrics["requests"]["answered"] == 2
        assert metrics["latency_ms"]["p50"] is not None
        assert metrics["latency_ms"]["p99"] >= metrics["latency_ms"]["p50"]
        assert metrics["max_inflight"] == 256


class TestAdmissionControl:
    def test_over_capacity_requests_get_explicit_rejection_not_a_hang(self, graph):
        flood = 12
        max_inflight = 3

        async def scenario():
            # a wide-open coalescing window keeps admitted requests
            # in-flight while the flood arrives
            server = await start_server(
                graph,
                max_inflight=max_inflight,
                max_batch=64,
                batch_window_ms=300.0,
                runtime=RuntimeConfig(world_cache=8),
            )
            host, port = server.address
            client = await ServerClient.connect(host, port)
            try:
                responses = await asyncio.wait_for(
                    asyncio.gather(
                        *(
                            client.query(request_to_dict(r))
                            for r in [workload()[0]] * flood
                        )
                    ),
                    timeout=30.0,
                )
            finally:
                await client.close()
                await server.stop()
            return responses, server.metrics.snapshot()

        responses, metrics = run(scenario())
        answered = [r for r in responses if r["ok"]]
        rejected = [r for r in responses if not r["ok"]]
        assert len(responses) == flood  # nothing hung or was dropped
        assert len(answered) == max_inflight
        assert len(rejected) == flood - max_inflight
        for rejection in rejected:
            assert rejection["error"]["type"] == protocol.ERR_OVER_CAPACITY
            assert protocol.is_rejection(rejection)
            assert "retry" in rejection["error"]["message"]
        assert metrics["requests"]["rejected"][protocol.ERR_OVER_CAPACITY] == len(
            rejected
        )

    def test_draining_server_rejects_new_queries_explicitly(self, graph):
        async def scenario():
            server = await start_server(graph)
            host, port = server.address
            client = await ServerClient.connect(host, port)
            try:
                server._draining = True  # the drain window of stop()
                rejection = await client.query(request_to_dict(workload()[0]))
                health = await client.health()  # control kinds still answer
            finally:
                await client.close()
                await server.stop()
            return rejection, health

        rejection, health = run(scenario())
        assert rejection["ok"] is False
        assert rejection["error"]["type"] == protocol.ERR_SHUTTING_DOWN
        assert health["status"] == "draining"

    def test_malformed_json_gets_bad_request_response(self, graph):
        async def scenario():
            server = await start_server(graph)
            host, port = server.address
            client = await ServerClient.connect(host, port)
            try:
                await client.send_raw(b"this is not json\n")
                await client.send_raw(b"[1,2,3]\n")
                first = await asyncio.wait_for(client.unmatched.get(), timeout=5.0)
                second = await asyncio.wait_for(client.unmatched.get(), timeout=5.0)
            finally:
                await client.close()
                await server.stop()
            return first, second

        first, second = run(scenario())
        for response in (first, second):
            assert response["ok"] is False
            assert response["error"]["type"] == protocol.ERR_BAD_REQUEST

    def test_unknown_vertex_rejected_before_the_queue(self, graph):
        async def scenario():
            server = await start_server(graph)
            host, port = server.address
            client = await ServerClient.connect(host, port)
            try:
                bad = await client.query(
                    {"kind": "expected_flow", "query": 999_999, "n_samples": 10}
                )
                metrics = await client.metrics()
            finally:
                await client.close()
                await server.stop()
            return bad, metrics

        bad, metrics = run(scenario())
        assert bad["ok"] is False
        assert bad["error"]["type"] == protocol.ERR_BAD_REQUEST
        assert "999999" in bad["error"]["message"]
        assert metrics["requests"]["admitted"] == 0
        assert metrics["requests"]["bad_requests"] == 1


class TestTenants:
    def test_tenants_get_their_own_session_but_share_the_cache(self, graph):
        request = workload()[0]

        async def scenario():
            server = await start_server(graph, runtime=RuntimeConfig(world_cache=8))
            host, port = server.address
            client = await ServerClient.connect(host, port)
            try:
                default = await client.query(request_to_dict(request))
                team_a = await client.query(request_to_dict(request), tenant="team-a")
                team_b = await client.query(request_to_dict(request), tenant="team-b")
                metrics = await client.metrics()
            finally:
                await client.close()
                tenants = server.tenants
                await server.stop()
            return default, team_a, team_b, metrics, tenants

        default, team_a, team_b, metrics, tenants = run(scenario())
        # identical bits for every tenant ...
        assert comparable(team_a) == comparable(default)
        assert comparable(team_b) == comparable(default)
        # ... and the later tenants were served from the shared cache
        assert default["from_cache"] is False
        assert team_a["from_cache"] is True
        assert team_b["from_cache"] is True
        assert tenants == ["", "team-a", "team-b"]
        assert metrics["tenants"] == 3

    def test_non_string_tenant_is_a_bad_request(self, graph):
        async def scenario():
            server = await start_server(graph)
            host, port = server.address
            client = await ServerClient.connect(host, port)
            try:
                payload = request_to_dict(workload()[0])
                payload["tenant"] = 7
                payload["id"] = 1
                await client.send_raw(protocol.encode_line(payload))
                return await asyncio.wait_for(client.unmatched.get(), timeout=5.0)
            finally:
                await client.close()
                await server.stop()

        response = run(scenario())
        assert response["ok"] is False
        assert response["error"]["type"] == protocol.ERR_BAD_REQUEST
        assert "tenant" in response["error"]["message"]


class TestWarmupAndDrain:
    def test_warm_requests_fill_the_cache_before_serving(self, graph):
        request = workload()[0]

        async def scenario():
            server = await start_server(
                graph,
                runtime=RuntimeConfig(world_cache=8),
                warm_requests=(request,),
            )
            host, port = server.address
            client = await ServerClient.connect(host, port)
            try:
                return await client.query(request_to_dict(request))
            finally:
                await client.close()
                await server.stop()

        response = run(scenario())
        assert response["ok"] is True
        assert response["from_cache"] is True  # served without sampling

    def test_stop_drains_admitted_work_before_closing(self, graph):
        requests = workload(graph)[:5]
        reference = direct_reference(graph, requests)

        async def scenario():
            server = await start_server(
                graph, batch_window_ms=100.0, runtime=RuntimeConfig(world_cache=8)
            )
            host, port = server.address
            client = await ServerClient.connect(host, port)
            tasks = [
                asyncio.create_task(client.query(request_to_dict(r)))
                for r in requests
            ]
            # let admission happen, then begin the drain while the batch
            # window is still open
            await asyncio.sleep(0.02)
            stop_task = asyncio.create_task(server.stop())
            responses = await asyncio.wait_for(asyncio.gather(*tasks), timeout=30.0)
            await stop_task
            await client.close()
            # the listener is gone: new connections are refused
            with pytest.raises(OSError):
                await ServerClient.connect(host, port)
            return responses

        responses = run(scenario())
        assert [comparable(r) for r in responses] == reference

    def test_stop_is_idempotent(self, graph):
        async def scenario():
            server = await start_server(graph)
            await server.stop()
            await server.stop()

        run(scenario())

    def test_client_disconnect_does_not_wedge_the_server(self, graph):
        async def scenario():
            server = await start_server(
                graph, batch_window_ms=100.0, runtime=RuntimeConfig(world_cache=8)
            )
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                protocol.request_line(request_to_dict(workload()[0]), request_id=1)
            )
            await writer.drain()
            writer.close()  # vanish before the answer exists
            await writer.wait_closed()
            # the server still drains the admitted request and shuts down
            await asyncio.wait_for(server.stop(), timeout=30.0)
            return server.metrics.snapshot()

        metrics = run(scenario())
        assert metrics["requests"]["admitted"] == 1


class TestServeCLI:
    """End-to-end: the `repro-flow serve` subcommand over a real socket."""

    def test_serve_subcommand_serves_and_drains_on_sigint(self, graph, tmp_path):
        from repro.graph.io import write_json

        graph_path = tmp_path / "graph.json"
        write_json(graph, graph_path)
        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parent.parent)
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--graph",
                str(graph_path),
                "--port",
                "0",
                "--cache-size",
                "8",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            startup = process.stdout.readline().strip()
            assert "serving" in startup
            port = int(startup.rsplit(":", 1)[1])

            request = workload()[0]
            reference = direct_reference(graph, [request])[0]

            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                sock.sendall(
                    protocol.request_line(request_to_dict(request), request_id=1)
                )
                sock.sendall(protocol.request_line({"kind": "health"}, request_id=2))
                stream = sock.makefile("rb")
                responses = [
                    protocol.decode_line(stream.readline()) for _ in range(2)
                ]
            by_id = {response["id"]: response for response in responses}
            assert comparable(by_id[1]) == reference
            assert by_id[2]["status"] == "ok"

            process.send_signal(signal.SIGINT)
            stdout, stderr = process.communicate(timeout=30)
            assert process.returncode == 0
            assert "draining" in stderr
            assert "served 1 requests" in stderr
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup on failure
                process.kill()
                process.communicate()

    def test_serve_parser_accepts_the_new_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--graph",
                "g.json",
                "--port",
                "0",
                "--max-batch",
                "16",
                "--batch-window-ms",
                "1.5",
                "--max-inflight",
                "32",
                "--workers",
                "2",
                "--cache-size",
                "8",
            ]
        )
        assert args.command == "serve"
        assert args.max_batch == 16
        assert args.batch_window_ms == 1.5
        assert args.max_inflight == 32


class TestCoalescing:
    def test_pipelined_requests_land_in_shared_batches(self, graph):
        requests = workload(graph)

        async def scenario():
            server = await start_server(
                graph,
                batch_window_ms=50.0,
                runtime=RuntimeConfig(world_cache=8),
            )
            host, port = server.address
            client = await ServerClient.connect(host, port)
            try:
                responses = await asyncio.gather(
                    *(client.query(request_to_dict(r)) for r in requests)
                )
            finally:
                await client.close()
                await server.stop()
            return responses, server.metrics.snapshot()

        responses, metrics = run(scenario())
        assert all(response["ok"] for response in responses)
        assert metrics["coalescing"]["largest_batch"] >= 2
        assert metrics["coalescing"]["batches"] < len(requests)

    def test_max_batch_bounds_a_dispatch(self, graph):
        requests = [workload()[0]] * 9

        async def scenario():
            server = await start_server(
                graph,
                max_batch=3,
                batch_window_ms=100.0,
                runtime=RuntimeConfig(world_cache=8),
            )
            host, port = server.address
            client = await ServerClient.connect(host, port)
            try:
                await asyncio.gather(
                    *(client.query(request_to_dict(r)) for r in requests)
                )
            finally:
                await client.close()
                await server.stop()
            return server.metrics.snapshot()

        metrics = run(scenario())
        assert metrics["coalescing"]["largest_batch"] <= 3
        assert metrics["coalescing"]["batched_requests"] == len(requests)


class TestServeHelper:
    def test_serve_builds_and_starts(self, graph):
        from repro.server import serve

        async def scenario():
            server = await serve(graph, port=0)
            try:
                return server.address
            finally:
                await server.stop()

        host, port = run(scenario())
        assert host == "127.0.0.1"
        assert port > 0

    def test_double_start_is_an_error(self, graph):
        async def scenario():
            server = await start_server(graph)
            try:
                with pytest.raises(RuntimeError):
                    await server.start()
            finally:
                await server.stop()

        run(scenario())


class TestClientTimeouts:
    """A dead or wedged peer raises the typed timeout, never hangs."""

    def test_wedged_server_read_timeout_raises_typed_error(self):
        from repro.exceptions import TransportTimeoutError

        async def scenario():
            async def accept_and_stall(reader, writer):
                await reader.readline()  # swallow the request, never answer

            silent = await asyncio.start_server(
                accept_and_stall, "127.0.0.1", 0
            )
            host, port = silent.sockets[0].getsockname()[:2]
            client = await ServerClient.connect(host, port)
            try:
                with pytest.raises(TransportTimeoutError) as excinfo:
                    await client.request({"kind": "health"}, timeout=0.1)
                assert excinfo.value.timeout == 0.1
                assert isinstance(excinfo.value, TimeoutError)
                # the withdrawn waiter must not leak: a second request on
                # the same connection still times out cleanly
                with pytest.raises(TransportTimeoutError):
                    await client.request({"kind": "health"}, timeout=0.1)
            finally:
                await client.close()
                silent.close()
                await silent.wait_closed()

        run(scenario())

    def test_client_default_read_timeout_applies_to_every_request(self):
        from repro.exceptions import TransportTimeoutError

        async def scenario():
            async def accept_and_stall(reader, writer):
                await reader.readline()

            silent = await asyncio.start_server(
                accept_and_stall, "127.0.0.1", 0
            )
            host, port = silent.sockets[0].getsockname()[:2]
            client = await ServerClient.connect(host, port, read_timeout=0.1)
            try:
                with pytest.raises(TransportTimeoutError):
                    await client.health()
            finally:
                await client.close()
                silent.close()
                await silent.wait_closed()

        run(scenario())

    def test_timeout_none_keeps_the_historical_wait(self, graph):
        async def scenario():
            server = await start_server(graph)
            host, port = server.address
            client = await ServerClient.connect(
                host, port, read_timeout=0.0001  # would expire instantly...
            )
            try:
                # ...but an explicit None overrides the default and waits
                response = await client.request({"kind": "health"}, timeout=None)
            finally:
                await client.close()
                await server.stop()
            return response

        response = run(scenario())
        assert response["status"] == "ok"

    def test_connect_timeout_raises_typed_error(self):
        from repro.exceptions import TransportTimeoutError

        async def scenario():
            # a bound-but-unaccepted socket: SYN backlog fills and the
            # connect attempt can only resolve via the deadline
            blocker = socket.socket()
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(0)
            host, port = blocker.getsockname()
            saturate = [socket.socket() for _ in range(4)]
            try:
                for s in saturate:
                    s.setblocking(False)
                    try:
                        s.connect((host, port))
                    except BlockingIOError:
                        pass
                with pytest.raises(TransportTimeoutError) as excinfo:
                    await ServerClient.connect(host, port, connect_timeout=0.2)
                assert "connecting to" in str(excinfo.value)
            finally:
                for s in saturate:
                    s.close()
                blocker.close()

        run(scenario())

"""Tests for BFS traversal, connected components and hop paths."""

import pytest

from repro.algorithms.traversal import (
    bfs_order,
    bfs_tree,
    connected_component,
    connected_components,
    is_connected,
    shortest_hop_path,
)
from repro.exceptions import VertexNotFoundError
from repro.graph.generators import erdos_renyi_graph
from repro.graph.uncertain_graph import UncertainGraph
from repro.types import Edge


@pytest.fixture
def two_component_graph() -> UncertainGraph:
    graph = UncertainGraph()
    for v in range(6):
        graph.add_vertex(v)
    graph.add_edge(0, 1, 0.5)
    graph.add_edge(1, 2, 0.5)
    graph.add_edge(3, 4, 0.5)
    return graph


class TestBfs:
    def test_order_starts_at_source(self, small_path):
        assert bfs_order(small_path, 0)[0] == 0

    def test_order_visits_component_only(self, two_component_graph):
        assert set(bfs_order(two_component_graph, 0)) == {0, 1, 2}

    def test_bfs_tree_parents(self, small_path):
        parents = bfs_tree(small_path, 0)
        assert parents[0] is None
        assert parents[1] == 0
        assert parents[3] == 2

    def test_edge_restriction(self, small_path):
        parents = bfs_tree(small_path, 0, edges=[Edge(0, 1)])
        assert set(parents) == {0, 1}

    def test_missing_source(self, small_path):
        with pytest.raises(VertexNotFoundError):
            bfs_order(small_path, 99)


class TestConnectedComponents:
    def test_component_of_vertex(self, two_component_graph):
        assert connected_component(two_component_graph, 3) == {3, 4}

    def test_all_components(self, two_component_graph):
        components = connected_components(two_component_graph)
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 2, 3]

    def test_is_connected(self, two_component_graph, small_path):
        assert not is_connected(two_component_graph)
        assert is_connected(small_path)
        assert is_connected(UncertainGraph())

    def test_components_with_edge_restriction(self, small_path):
        components = connected_components(small_path, edges=[Edge(0, 1)])
        assert sorted(len(c) for c in components) == [1, 1, 2]


class TestShortestHopPath:
    def test_path_endpoints(self, small_path):
        assert shortest_hop_path(small_path, 0, 3) == [0, 1, 2, 3]

    def test_same_vertex(self, small_path):
        assert shortest_hop_path(small_path, 2, 2) == [2]

    def test_disconnected_returns_none(self, two_component_graph):
        assert shortest_hop_path(two_component_graph, 0, 4) is None

    def test_path_is_minimal_in_hops(self):
        graph = erdos_renyi_graph(30, average_degree=4, seed=2)
        path = shortest_hop_path(graph, 0, 7)
        assert path is not None
        # every consecutive pair must actually be an edge
        for u, v in zip(path, path[1:]):
            assert graph.has_edge(u, v)

    def test_missing_target(self, small_path):
        with pytest.raises(VertexNotFoundError):
            shortest_hop_path(small_path, 0, 42)

"""Tests for the incremental F-tree insertion cases (Section 5.4, Figure 4).

These follow the paper's own insertion examples on the Figure-3 replica
graph and verify the case labels, the resulting component structure and
— most importantly — that the resulting expected flow always matches
exact possible-world enumeration.
"""

import pytest

from repro.exceptions import (
    DisconnectedInsertionError,
    DuplicateEdgeError,
    EdgeNotFoundError,
)
from repro.experiments.running_example import (
    QUERY,
    ftree_example_graph,
    ftree_example_insertion_order,
)
from repro.ftree.builder import build_ftree
from repro.ftree.ftree import FTree
from repro.ftree.sampler import ComponentSampler
from repro.graph.generators import path_graph
from repro.graph.uncertain_graph import UncertainGraph
from repro.reachability.exact import exact_expected_flow
from repro.types import Edge


def exact_sampler() -> ComponentSampler:
    return ComponentSampler(n_samples=10, exact_threshold=20, seed=0)


@pytest.fixture
def figure3_ftree():
    """The Figure-3 replica graph with its full edge set inserted incrementally."""
    graph = ftree_example_graph()
    ftree = FTree(graph, QUERY, sampler=exact_sampler())
    for edge in ftree_example_insertion_order():
        ftree.insert_edge(edge.u, edge.v)
    ftree.check_invariants()
    return graph, ftree


class TestBasicInsertion:
    def test_first_edge_creates_root_mono(self):
        graph = path_graph(3, probability=0.5)
        ftree = FTree(graph, 0, sampler=exact_sampler())
        result = ftree.insert_edge(0, 1)
        assert result.case == "IIa"
        assert ftree.is_connected_vertex(1)
        assert ftree.expected_flow() == pytest.approx(0.5)

    def test_edge_not_in_graph_rejected(self):
        graph = path_graph(3, probability=0.5)
        ftree = FTree(graph, 0, sampler=exact_sampler())
        with pytest.raises(EdgeNotFoundError):
            ftree.insert_edge(0, 2)

    def test_duplicate_insertion_rejected(self):
        graph = path_graph(3, probability=0.5)
        ftree = FTree(graph, 0, sampler=exact_sampler())
        ftree.insert_edge(0, 1)
        with pytest.raises(DuplicateEdgeError):
            ftree.insert_edge(1, 0)

    def test_disconnected_insertion_rejected(self):
        graph = path_graph(4, probability=0.5)
        ftree = FTree(graph, 0, sampler=exact_sampler())
        with pytest.raises(DisconnectedInsertionError):
            ftree.insert_edge(2, 3)

    def test_query_vertex_must_exist(self):
        graph = path_graph(3, probability=0.5)
        from repro.exceptions import VertexNotFoundError

        with pytest.raises(VertexNotFoundError):
            FTree(graph, 99, sampler=exact_sampler())


class TestPaperCases:
    """The four insertion examples of Figure 4 on the Figure-3 replica graph."""

    def _extended_graph(self):
        graph = ftree_example_graph()
        graph.add_vertex(17, weight=17.0)
        graph.add_edge(7, 17, 0.5)   # edge a (Case IIb)
        graph.add_edge(6, 8, 0.5)    # edge b (Case IIIa)
        graph.add_edge(14, 15, 0.5)  # edge c (Case IIIb)
        graph.add_edge(11, 15, 0.5)  # edge d (Case IV)
        return graph

    def _fresh_ftree(self, graph):
        ftree = FTree(graph, QUERY, sampler=exact_sampler())
        for edge in ftree_example_insertion_order():
            ftree.insert_edge(edge.u, edge.v)
        return ftree

    def test_case_iib_new_dead_end_below_bi_component(self):
        graph = self._extended_graph()
        ftree = self._fresh_ftree(graph)
        result = ftree.insert_edge(7, 17)
        assert result.case == "IIb"
        ftree.check_invariants()
        owner = ftree.owner_of(17)
        assert owner.is_mono
        assert owner.articulation == 7
        assert owner.vertices == {17}

    def test_case_iiia_edge_inside_bi_component(self):
        graph = self._extended_graph()
        ftree = self._fresh_ftree(graph)
        owner_before = ftree.owner_of(8)
        result = ftree.insert_edge(6, 8)
        assert result.case == "IIIa"
        ftree.check_invariants()
        assert ftree.owner_of(8).component_id == owner_before.component_id
        assert Edge(6, 8) in ftree.owner_of(8).edges()
        # flow still matches exact enumeration of the selected subgraph
        exact = exact_expected_flow(graph, QUERY, edges=ftree.selected_edges).expected_flow
        assert ftree.expected_flow() == pytest.approx(exact)

    def test_case_iiib_cycle_in_mono_component(self):
        graph = self._extended_graph()
        ftree = self._fresh_ftree(graph)
        result = ftree.insert_edge(14, 15)
        assert result.case == "IIIb"
        ftree.check_invariants()
        # 14 and 15 become bi-connected towards articulation 13
        owner_14 = ftree.owner_of(14)
        owner_15 = ftree.owner_of(15)
        assert owner_14.component_id == owner_15.component_id
        assert not owner_14.is_mono
        assert owner_14.articulation == 13
        # vertex 16 becomes an orphan mono component anchored at 15
        owner_16 = ftree.owner_of(16)
        assert owner_16.is_mono
        assert owner_16.articulation == 15
        exact = exact_expected_flow(graph, QUERY, edges=ftree.selected_edges).expected_flow
        assert ftree.expected_flow() == pytest.approx(exact)

    def test_case_iv_cycle_across_components(self):
        graph = self._extended_graph()
        ftree = self._fresh_ftree(graph)
        result = ftree.insert_edge(11, 15)
        assert result.case == "IV"
        ftree.check_invariants()
        # the new cycle goes 9 .. 10/11 .. 15 .. 13 .. 9: one bi component anchored at 9
        owner_11 = ftree.owner_of(11)
        owner_15 = ftree.owner_of(15)
        owner_13 = ftree.owner_of(13)
        owner_10 = ftree.owner_of(10)
        assert owner_11.component_id == owner_15.component_id == owner_13.component_id == owner_10.component_id
        assert not owner_11.is_mono
        assert owner_11.articulation == 9
        # 14 and 16 become orphan mono components anchored at 13 and 15
        assert ftree.owner_of(14).articulation == 13
        assert ftree.owner_of(16).articulation == 15
        # 12 still hangs below 11 (whose component changed) and flow stays exact
        assert ftree.owner_of(12).articulation == 11
        exact = exact_expected_flow(graph, QUERY, edges=ftree.selected_edges).expected_flow
        assert ftree.expected_flow() == pytest.approx(exact)

    def test_all_four_extensions_together(self):
        graph = self._extended_graph()
        ftree = self._fresh_ftree(graph)
        for u, v in [(7, 17), (6, 8), (14, 15), (11, 15)]:
            ftree.insert_edge(u, v)
            ftree.check_invariants()
        # the full subgraph has too many edges for whole-graph enumeration, but
        # the from-scratch builder with exact component evaluation is exact too
        rebuilt = build_ftree(graph, ftree.selected_edges, QUERY, sampler=exact_sampler())
        assert ftree.expected_flow() == pytest.approx(rebuilt.expected_flow())


class TestCycleThroughQuery:
    def test_cycle_closing_at_query_vertex(self):
        """An edge between two different branches of Q creates a bi component anchored at Q."""
        graph = UncertainGraph()
        for vertex in ["Q", "a", "b"]:
            graph.add_vertex(vertex, weight=1.0)
        graph.add_edge("Q", "a", 0.5)
        graph.add_edge("Q", "b", 0.5)
        graph.add_edge("a", "b", 0.5)
        ftree = FTree(graph, "Q", sampler=exact_sampler())
        ftree.insert_edge("Q", "a")
        ftree.insert_edge("Q", "b")
        result = ftree.insert_edge("a", "b")
        # both endpoints live in the root mono component, so this is Case IIIb
        assert result.case == "IIIb"
        ftree.check_invariants()
        owner = ftree.owner_of("a")
        assert not owner.is_mono
        assert owner.articulation == "Q"
        exact = exact_expected_flow(graph, "Q").expected_flow
        assert ftree.expected_flow() == pytest.approx(exact)

    def test_edge_incident_to_query_closing_a_cycle(self):
        """Inserting (Q, v) when v is already connected closes a cycle at Q."""
        graph = path_graph(4, probability=0.5)
        graph.add_edge(0, 3, 0.5)
        ftree = FTree(graph, 0, sampler=exact_sampler())
        for u, v in [(0, 1), (1, 2), (2, 3)]:
            ftree.insert_edge(u, v)
        result = ftree.insert_edge(0, 3)
        assert result.case == "IV"
        ftree.check_invariants()
        exact = exact_expected_flow(graph, 0).expected_flow
        assert ftree.expected_flow() == pytest.approx(exact)


class TestFigure3Structure:
    def test_component_counts(self, figure3_ftree):
        _, ftree = figure3_ftree
        components = ftree.components()
        bi = [c for c in components if not c.is_mono]
        mono = [c for c in components if c.is_mono]
        assert len(bi) == 3
        assert len(mono) == 3

    def test_flow_matches_exact_enumeration(self, figure3_ftree):
        graph, ftree = figure3_ftree
        exact = exact_expected_flow(graph, QUERY).expected_flow
        assert ftree.expected_flow() == pytest.approx(exact)

    def test_structure_matches_example_2(self, figure3_ftree):
        _, ftree = figure3_ftree
        # B = ({4, 5}, 3), C = ({7, 8, 9}, 6), D = ({10, 11}, 9)
        assert ftree.owner_of(4).articulation == 3
        assert ftree.owner_of(5).component_id == ftree.owner_of(4).component_id
        assert ftree.owner_of(7).articulation == 6
        assert ftree.owner_of(9).component_id == ftree.owner_of(7).component_id
        assert ftree.owner_of(10).articulation == 9
        # E = ({13, 14, 15, 16}, 9), F = ({12}, 11)
        assert ftree.owner_of(13).articulation == 9
        assert ftree.owner_of(13).is_mono
        assert ftree.owner_of(12).articulation == 11

    def test_clone_is_deep(self, figure3_ftree):
        graph, ftree = figure3_ftree
        clone = ftree.clone()
        graph.add_vertex(99, weight=1.0)
        graph.add_edge(1, 99, 0.5)
        clone.insert_edge(1, 99)
        assert clone.n_selected == ftree.n_selected + 1
        assert not ftree.is_connected_vertex(99)
        ftree.check_invariants()
        clone.check_invariants()

    def test_reachability_to_query_contains_all_connected_vertices(self, figure3_ftree):
        graph, ftree = figure3_ftree
        reach = ftree.reachability_to_query()
        assert set(reach) == set(graph.vertices())
        assert reach[QUERY] == 1.0
        assert all(0.0 <= p <= 1.0 for p in reach.values())

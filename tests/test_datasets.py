"""Tests for the dataset registry and the real-world surrogates."""


import pytest

from repro.algorithms.traversal import is_connected
from repro.datasets.registry import DATASET_NAMES, dataset_spec, load_dataset
from repro.datasets.surrogates import (
    dblp_surrogate,
    facebook_surrogate,
    san_joaquin_surrogate,
    youtube_surrogate,
)
from repro.exceptions import DatasetError
from repro.graph.validation import validate_graph


class TestRegistry:
    def test_all_names_resolve(self):
        for name in DATASET_NAMES:
            spec = dataset_spec(name)
            assert spec.name == name
            assert spec.default_size > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError):
            dataset_spec("not-a-dataset")
        with pytest.raises(DatasetError):
            load_dataset("not-a-dataset")

    def test_invalid_size_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("erdos", n_vertices=0)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_small_instances_generate_and_validate(self, name):
        graph = load_dataset(name, n_vertices=60, seed=0)
        validate_graph(graph)
        assert graph.n_vertices >= 30
        assert graph.n_edges > 0

    def test_reproducible_generation(self):
        a = load_dataset("erdos", n_vertices=50, seed=7)
        b = load_dataset("erdos", n_vertices=50, seed=7)
        assert a == b

    def test_locality_flags(self):
        assert dataset_spec("san-joaquin").locality
        assert dataset_spec("partitioned").locality
        assert not dataset_spec("facebook").locality
        assert not dataset_spec("youtube").locality


class TestSurrogates:
    def test_san_joaquin_distance_decay_probabilities(self):
        graph = san_joaquin_surrogate(100, seed=0)
        assert is_connected(graph)
        # road-style graphs are sparse: average degree well below 5
        assert graph.average_degree() < 5.0

    def test_facebook_close_friend_structure(self):
        graph = facebook_surrogate(80, seed=0)
        high_probability_edges = [e for e in graph.edges() if graph.probability(e) >= 0.5]
        # each user re-weights ~10 incident edges; expect a large high-probability core
        assert len(high_probability_edges) >= 80 * 3
        assert graph.average_degree() > 10

    def test_dblp_is_clustered_and_sparse(self):
        graph = dblp_surrogate(120, seed=0)
        assert graph.average_degree() < 12
        assert all(graph.degree(v) >= 1 for v in graph.vertices())

    def test_youtube_heavy_tail(self):
        graph = youtube_surrogate(300, seed=0)
        degrees = sorted((graph.degree(v) for v in graph.vertices()), reverse=True)
        average = sum(degrees) / len(degrees)
        assert degrees[0] > 3 * average
        assert is_connected(graph)

"""Tests for the per-figure experiment reproductions (smoke-scale configurations)."""


from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    ALL_FIGURES,
    estimator_variance_ablation,
    figure5a_graph_size_locality,
    figure5b_graph_size_no_locality,
    figure6a_density_locality,
    figure6b_density_no_locality,
    figure7a_budget_locality,
    figure7b_budget_no_locality,
    figure8_wsn,
    figure9_real_world,
    parameter_c_sweep,
)

TINY = ExperimentConfig(
    n_vertices=40,
    degree=4,
    budget=4,
    n_samples=40,
    naive_samples=20,
    algorithms=("Dijkstra", "FT", "FT+M"),
    seed=0,
)


def _check_rows(rows, x_name):
    assert rows, "figure produced no rows"
    for row in rows:
        assert row["algorithm"] in TINY.algorithms
        assert row["evaluated_flow"] >= 0.0
        assert row["elapsed_seconds"] >= 0.0
        assert x_name in row


class TestSizeSweeps:
    def test_figure5a(self):
        result = figure5a_graph_size_locality(sizes=(24, 40), config=TINY)
        _check_rows(result.rows, "n_vertices")
        assert result.figure == "5a"
        assert len(result.rows) == 2 * len(TINY.algorithms)

    def test_figure5b(self):
        result = figure5b_graph_size_no_locality(sizes=(24, 40), config=TINY)
        _check_rows(result.rows, "n_vertices")
        series = result.series()
        assert set(series) == set(TINY.algorithms)


class TestDensitySweeps:
    def test_figure6a(self):
        result = figure6a_density_locality(degrees=(4, 6), config=TINY)
        _check_rows(result.rows, "degree")

    def test_figure6b(self):
        result = figure6b_density_no_locality(degrees=(4, 6), config=TINY)
        _check_rows(result.rows, "degree")


class TestBudgetSweeps:
    def test_figure7a(self):
        result = figure7a_budget_locality(budgets=(2, 4), config=TINY)
        _check_rows(result.rows, "budget_k")

    def test_figure7b_flow_grows_with_budget(self):
        result = figure7b_budget_no_locality(budgets=(2, 6), config=TINY)
        _check_rows(result.rows, "budget_k")
        for algorithm, points in result.series().items():
            flows = [flow for _, flow in points]
            assert flows[-1] >= flows[0] - 1e-9


class TestWsnAndRealWorld:
    def test_figure8_panels(self):
        panels = figure8_wsn(eps_values=(0.12,), budgets=(2, 4), config=TINY)
        assert set(panels) == {0.12}
        _check_rows(panels[0.12].rows, "budget_k")

    def test_figure9_single_dataset(self):
        panels = figure9_real_world(
            datasets=("dblp",), budgets=(2, 4), config=TINY, sizes={"dblp": 40}
        )
        assert set(panels) == {"dblp"}
        _check_rows(panels["dblp"].rows, "budget_k")
        assert panels["dblp"].figure == "9c"


class TestAblations:
    def test_parameter_c_sweep(self):
        result = parameter_c_sweep(c_values=(1.2, 2.0), config=TINY)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["algorithm"] == "FT+M+DS"
            assert row["evaluated_flow"] >= 0.0

    def test_variance_ablation_reports_both_estimators(self):
        result = estimator_variance_ablation(
            n_vertices=10, average_degree=3.0, n_samples=50, repetitions=6, seed=0
        )
        estimators = {row["estimator"] for row in result.rows}
        assert estimators == {"whole-graph MC", "F-tree component MC"}
        for row in result.rows:
            assert row["variance"] >= 0.0
            assert row["exact_flow"] > 0.0

    def test_all_figures_registry_is_complete(self):
        assert set(ALL_FIGURES) == {
            "5a", "5b", "6a", "6b", "7a", "7b", "8", "9", "param-c", "variance",
        }

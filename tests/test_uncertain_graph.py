"""Tests for the UncertainGraph model."""

import math

import pytest

from repro.exceptions import (
    DuplicateEdgeError,
    DuplicateVertexError,
    EdgeNotFoundError,
    InvalidProbabilityError,
    InvalidWeightError,
    SelfLoopError,
    VertexNotFoundError,
)
from repro.graph.uncertain_graph import UncertainGraph
from repro.types import Edge


@pytest.fixture
def graph() -> UncertainGraph:
    g = UncertainGraph(name="fixture")
    g.add_vertex("a", weight=1.0)
    g.add_vertex("b", weight=2.0)
    g.add_vertex("c", weight=3.0)
    g.add_edge("a", "b", 0.5)
    g.add_edge("b", "c", 0.25)
    return g


class TestVertices:
    def test_add_and_query(self, graph):
        assert graph.has_vertex("a")
        assert graph.weight("b") == 2.0
        assert graph.n_vertices == 3

    def test_duplicate_vertex_rejected(self, graph):
        with pytest.raises(DuplicateVertexError):
            graph.add_vertex("a")

    def test_negative_weight_rejected(self):
        g = UncertainGraph()
        with pytest.raises(InvalidWeightError):
            g.add_vertex(0, weight=-1.0)

    def test_nan_weight_rejected(self):
        g = UncertainGraph()
        with pytest.raises(InvalidWeightError):
            g.add_vertex(0, weight=float("nan"))

    def test_missing_vertex_weight_lookup(self, graph):
        with pytest.raises(VertexNotFoundError):
            graph.weight("missing")

    def test_set_weight(self, graph):
        graph.set_weight("a", 9.0)
        assert graph.weight("a") == 9.0

    def test_set_weight_missing_vertex(self, graph):
        with pytest.raises(VertexNotFoundError):
            graph.set_weight("zzz", 1.0)

    def test_remove_vertex_removes_incident_edges(self, graph):
        graph.remove_vertex("b")
        assert not graph.has_vertex("b")
        assert graph.n_edges == 0

    def test_remove_missing_vertex(self, graph):
        with pytest.raises(VertexNotFoundError):
            graph.remove_vertex("missing")

    def test_total_weight(self, graph):
        assert graph.total_weight() == 6.0
        assert graph.total_weight(exclude=["c"]) == 3.0

    def test_len_and_contains(self, graph):
        assert len(graph) == 3
        assert "a" in graph
        assert "zzz" not in graph


class TestEdges:
    def test_add_and_query(self, graph):
        assert graph.has_edge("a", "b")
        assert graph.has_edge("b", "a")
        assert graph.probability("a", "b") == 0.5
        assert graph.probability(Edge("b", "a")) == 0.5

    def test_degree_and_neighbors(self, graph):
        assert graph.degree("b") == 2
        assert set(graph.neighbors("b")) == {"a", "c"}

    def test_incident_edges(self, graph):
        assert set(graph.incident_edges("b")) == {Edge("a", "b"), Edge("b", "c")}

    def test_duplicate_edge_rejected(self, graph):
        with pytest.raises(DuplicateEdgeError):
            graph.add_edge("b", "a", 0.3)

    def test_self_loop_rejected(self, graph):
        with pytest.raises(SelfLoopError):
            graph.add_edge("a", "a", 0.5)

    def test_probability_out_of_range(self, graph):
        with pytest.raises(InvalidProbabilityError):
            graph.add_edge("a", "c", 0.0)
        with pytest.raises(InvalidProbabilityError):
            graph.add_edge("a", "c", 1.5)

    def test_missing_endpoint_rejected(self, graph):
        with pytest.raises(VertexNotFoundError):
            graph.add_edge("a", "zzz", 0.5)

    def test_create_vertices_flag(self):
        g = UncertainGraph()
        g.add_edge("x", "y", 0.9, create_vertices=True, default_weight=4.0)
        assert g.weight("x") == 4.0
        assert g.has_edge("x", "y")

    def test_remove_edge(self, graph):
        graph.remove_edge("a", "b")
        assert not graph.has_edge("a", "b")
        assert graph.n_edges == 1

    def test_remove_missing_edge(self, graph):
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge("a", "c")

    def test_set_probability(self, graph):
        graph.set_probability("a", "b", 0.9)
        assert graph.probability("a", "b") == 0.9

    def test_uncertain_edges_excludes_certain_ones(self, graph):
        graph.set_probability("a", "b", 1.0)
        assert Edge("a", "b") not in graph.uncertain_edges()
        assert Edge("b", "c") in graph.uncertain_edges()

    def test_average_degree(self, graph):
        assert graph.average_degree() == pytest.approx(4.0 / 3.0)

    def test_has_edge_self_loop_is_false(self, graph):
        assert graph.has_edge("a", "a") is False


class TestSubgraphs:
    def test_edge_subgraph_keeps_all_vertices_by_default(self, graph):
        sub = graph.edge_subgraph([Edge("a", "b")])
        assert sub.n_vertices == 3
        assert sub.n_edges == 1

    def test_edge_subgraph_restricted_vertices(self, graph):
        sub = graph.edge_subgraph([("a", "b")], keep_all_vertices=False)
        assert set(sub.vertices()) == {"a", "b"}

    def test_edge_subgraph_rejects_foreign_edge(self, graph):
        with pytest.raises(EdgeNotFoundError):
            graph.edge_subgraph([Edge("a", "c")])

    def test_vertex_subgraph(self, graph):
        sub = graph.vertex_subgraph(["a", "b"])
        assert sub.n_vertices == 2
        assert sub.has_edge("a", "b")
        assert not sub.has_edge("b", "c")

    def test_vertex_subgraph_missing_vertex(self, graph):
        with pytest.raises(VertexNotFoundError):
            graph.vertex_subgraph(["a", "nope"])

    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.set_probability("a", "b", 0.9)
        assert graph.probability("a", "b") == 0.5
        assert clone == clone.copy()

    def test_equality_considers_weights_and_probabilities(self, graph):
        other = graph.copy()
        assert graph == other
        other.set_weight("a", 100.0)
        assert graph != other


class TestWorldProbability:
    def test_world_probability_matches_manual_product(self, graph):
        # world with only edge (a, b): 0.5 * (1 - 0.25)
        assert graph.world_probability([Edge("a", "b")]) == pytest.approx(0.5 * 0.75)

    def test_full_world(self, graph):
        assert graph.world_probability(graph.edges()) == pytest.approx(0.5 * 0.25)

    def test_empty_world(self, graph):
        assert graph.world_probability([]) == pytest.approx(0.5 * 0.75)

    def test_certain_edge_missing_gives_zero(self, graph):
        graph.set_probability("a", "b", 1.0)
        assert graph.world_probability([]) == 0.0

    def test_unknown_edge_rejected(self, graph):
        with pytest.raises(EdgeNotFoundError):
            graph.world_probability([Edge("a", "c")])

    def test_sample_edge_set_respects_probabilities(self, graph):
        graph.set_probability("a", "b", 1.0)
        samples = [graph.sample_edge_set(seed) for seed in range(20)]
        assert all(Edge("a", "b") in sample for sample in samples)

    def test_log_world_probability_consistency(self, graph):
        log_p = graph.log_world_probability([Edge("a", "b")])
        assert math.exp(log_p) == pytest.approx(graph.world_probability([Edge("a", "b")]))


class TestFromEdges:
    def test_from_edges_builds_graph(self):
        g = UncertainGraph.from_edges(
            [(0, 1, 0.5), (1, 2, 0.75)], weights={0: 2.0, 9: 1.5}, default_weight=1.0
        )
        assert g.n_vertices == 4  # 0, 1, 2 and the isolated 9
        assert g.weight(0) == 2.0
        assert g.weight(2) == 1.0
        assert g.weight(9) == 1.5
        assert g.probability(1, 2) == 0.75

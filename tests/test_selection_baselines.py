"""Tests for the Dijkstra, Naive, Random and exhaustive-optimal selectors."""

import pytest

from repro.exceptions import BudgetError, ExactEnumerationError, VertexNotFoundError
from repro.graph.generators import erdos_renyi_graph, path_graph, star_graph
from repro.reachability.exact import exact_expected_flow
from repro.selection.dijkstra_tree import DijkstraSelector
from repro.selection.exact_optimal import exhaustive_optimal_selection
from repro.selection.greedy_naive import NaiveGreedySelector
from repro.selection.random_baseline import RandomSelector
from repro.types import Edge


class TestDijkstraSelector:
    def test_selects_tree_edges_in_settle_order(self, random_graph):
        result = DijkstraSelector().select(random_graph, 0, 8)
        assert result.n_selected == 8
        assert result.algorithm == "Dijkstra"
        # the selected edges must form a connected tree containing the query
        connected = {0}
        for edge in result.selected_edges:
            assert edge.u in connected or edge.v in connected
            connected.update(edge.endpoints())

    def test_flow_is_exact_for_trees(self):
        graph = path_graph(5, probability=0.5)
        result = DijkstraSelector().select(graph, 0, 4)
        exact = exact_expected_flow(graph, 0).expected_flow
        assert result.expected_flow == pytest.approx(exact)

    def test_budget_larger_than_graph(self):
        graph = path_graph(4, probability=0.5)
        result = DijkstraSelector().select(graph, 0, 100)
        assert result.n_selected == 3

    def test_zero_budget(self, random_graph):
        result = DijkstraSelector().select(random_graph, 0, 0)
        assert result.n_selected == 0
        assert result.expected_flow == 0.0

    def test_invalid_budget(self, random_graph):
        with pytest.raises(BudgetError):
            DijkstraSelector().select(random_graph, 0, -1)

    def test_unknown_query(self, random_graph):
        with pytest.raises(VertexNotFoundError):
            DijkstraSelector().select(random_graph, 10_000, 3)

    def test_prefers_high_probability_edges(self):
        graph = star_graph(4, probability=0.2)
        graph.set_probability(0, 1, 0.9)
        graph.set_probability(0, 2, 0.8)
        result = DijkstraSelector().select(graph, 0, 2)
        assert set(result.selected_edges) == {Edge(0, 1), Edge(0, 2)}


class TestNaiveSelector:
    def test_selects_within_budget(self):
        graph = erdos_renyi_graph(20, average_degree=3, seed=1)
        result = NaiveGreedySelector(n_samples=40, seed=0).select(graph, 0, 4)
        assert result.n_selected == 4
        assert result.algorithm == "Naive"
        assert len(result.iterations) == 4

    def test_greedy_picks_clearly_best_edge_first(self):
        graph = star_graph(3, probability=0.2)
        graph.set_probability(0, 2, 0.95)
        result = NaiveGreedySelector(n_samples=300, seed=0).select(graph, 0, 1)
        assert result.selected_edges == [Edge(0, 2)]

    def test_stops_when_no_candidates_remain(self):
        graph = path_graph(3, probability=0.5)
        result = NaiveGreedySelector(n_samples=30, seed=0).select(graph, 0, 10)
        assert result.n_selected == 2

    def test_flow_is_nonnegative_and_monotone_per_iteration(self):
        graph = erdos_renyi_graph(15, average_degree=3, seed=2)
        result = NaiveGreedySelector(n_samples=60, seed=1).select(graph, 0, 5)
        flows = [iteration.flow_after for iteration in result.iterations]
        assert all(b >= a - 1e-6 for a, b in zip(flows, flows[1:]))


class TestRandomSelector:
    def test_respects_budget_and_connectivity(self, random_graph):
        result = RandomSelector(seed=0).select(random_graph, 0, 10)
        assert result.n_selected == 10
        connected = {0}
        for edge in result.selected_edges:
            assert edge.u in connected or edge.v in connected
            connected.update(edge.endpoints())

    def test_reproducible_with_seed(self, random_graph):
        a = RandomSelector(seed=5).select(random_graph, 0, 6)
        b = RandomSelector(seed=5).select(random_graph, 0, 6)
        assert a.selected_edges == b.selected_edges


class TestExhaustiveOptimal:
    def test_optimal_on_star_picks_heaviest_leaves(self):
        graph = star_graph(4, probability=0.5)
        graph.set_weight(2, 10.0)
        graph.set_weight(4, 5.0)
        result = exhaustive_optimal_selection(graph, 0, budget=2)
        assert set(result.selected_edges) == {Edge(0, 2), Edge(0, 4)}
        assert result.expected_flow == pytest.approx(0.5 * 10.0 + 0.5 * 5.0)

    def test_optimal_at_least_as_good_as_dijkstra(self, triangle_graph):
        optimal = exhaustive_optimal_selection(triangle_graph, 0, budget=2)
        dijkstra = DijkstraSelector().select(triangle_graph, 0, 2)
        assert optimal.expected_flow >= dijkstra.expected_flow - 1e-9

    def test_budget_zero(self, triangle_graph):
        result = exhaustive_optimal_selection(triangle_graph, 0, budget=0)
        assert result.selected_edges == []
        assert result.expected_flow == 0.0

    def test_too_many_edges_rejected(self):
        graph = erdos_renyi_graph(30, average_degree=4, seed=0)
        with pytest.raises(ExactEnumerationError):
            exhaustive_optimal_selection(graph, 0, budget=3)

    def test_invalid_budget(self, triangle_graph):
        with pytest.raises(BudgetError):
            exhaustive_optimal_selection(triangle_graph, 0, budget=-2)

"""Tests for the union-find structure."""

from repro.algorithms.union_find import UnionFind


class TestUnionFind:
    def test_initial_singletons(self):
        uf = UnionFind(range(4))
        assert uf.n_sets == 4
        assert not uf.connected(0, 1)

    def test_union_and_find(self):
        uf = UnionFind()
        assert uf.union(1, 2)
        assert uf.connected(1, 2)
        assert uf.find(1) == uf.find(2)

    def test_union_idempotent(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert not uf.union("a", "b")
        assert uf.n_sets == 1

    def test_lazy_element_addition(self):
        uf = UnionFind()
        assert uf.find("new") == "new"
        assert "new" in uf

    def test_transitive_connectivity(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        uf.union(4, 5)
        assert uf.connected(1, 3)
        assert not uf.connected(1, 4)
        assert uf.n_sets == 2 + 0  # {1,2,3}, {4,5}

    def test_sets_listing(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(3, 4)
        sets = {frozenset(s) for s in uf.sets()}
        assert frozenset({1, 2}) in sets
        assert frozenset({3, 4}) in sets

    def test_large_chain_path_compression(self):
        uf = UnionFind()
        for i in range(1000):
            uf.union(i, i + 1)
        assert uf.connected(0, 1000)
        assert uf.n_sets == 1

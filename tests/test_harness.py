"""Tests for the experiment harness, configuration and reporting."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.config import DEFAULT_ALGORITHMS, ExperimentConfig, bench_scale
from repro.experiments.harness import (
    AlgorithmRun,
    evaluate_flow,
    pick_query_vertex,
    run_algorithms,
    run_sweep,
)
from repro.experiments.reporting import (
    compare_algorithms,
    format_table,
    rows_to_csv,
    summarize_sweep,
)
from repro.graph.generators import erdos_renyi_graph, path_graph
from repro.parallel.executor import SamplingExecutor, run_shard
from repro.reachability.exact import exact_expected_flow


class TestConfig:
    def test_defaults_are_valid(self):
        config = ExperimentConfig()
        assert config.budget > 0
        assert set(config.algorithms) == set(DEFAULT_ALGORITHMS)

    def test_invalid_values_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(n_vertices=0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(budget=-1)
        with pytest.raises(ExperimentError):
            ExperimentConfig(n_samples=0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(repetitions=0)

    def test_scaled_copy(self):
        config = ExperimentConfig(n_vertices=100, budget=10)
        scaled = config.scaled(2.0)
        assert scaled.n_vertices == 200
        assert scaled.budget == 20

    def test_paper_scale_and_quick(self):
        assert ExperimentConfig.paper_scale().n_vertices == 10_000
        assert ExperimentConfig.quick().n_vertices <= 100

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert bench_scale() == pytest.approx(2.5)
        monkeypatch.setenv("REPRO_BENCH_SCALE", "not-a-number")
        with pytest.raises(ExperimentError):
            bench_scale()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "-1")
        with pytest.raises(ExperimentError):
            bench_scale()


class TestHarness:
    def test_evaluate_flow_matches_exact_on_tree(self):
        graph = path_graph(5, probability=0.5)
        flow = evaluate_flow(graph, graph.edge_list(), 0)
        assert flow == pytest.approx(exact_expected_flow(graph, 0).expected_flow)

    def test_pick_query_vertex_is_max_degree(self):
        graph = path_graph(4, probability=0.5)
        assert pick_query_vertex(graph) in (1, 2)

    def test_pick_query_vertex_empty_graph(self):
        from repro.graph.uncertain_graph import UncertainGraph

        with pytest.raises(ValueError):
            pick_query_vertex(UncertainGraph())

    def test_run_algorithms_produces_one_run_per_algorithm(self):
        graph = erdos_renyi_graph(25, average_degree=3, seed=0)
        config = ExperimentConfig.quick()
        runs = run_algorithms(graph, 0, 4, ["Dijkstra", "FT"], config=config, seed=1)
        assert [run.algorithm for run in runs] == ["Dijkstra", "FT"]
        for run in runs:
            assert run.n_selected <= 4
            assert run.evaluated_flow >= 0.0
            assert run.elapsed_seconds >= 0.0

    def test_algorithm_run_as_row(self):
        run = AlgorithmRun(
            algorithm="FT",
            budget=3,
            n_selected=3,
            expected_flow=1.0,
            evaluated_flow=1.1,
            elapsed_seconds=0.01,
        )
        row = run.as_row(x=42)
        assert row["x"] == 42
        assert row["algorithm"] == "FT"

    def test_run_sweep_rows(self):
        config = ExperimentConfig.quick()
        graph_a = erdos_renyi_graph(20, average_degree=3, seed=0)
        graph_b = erdos_renyi_graph(30, average_degree=3, seed=1)
        points = [(20.0, graph_a, 0, 3), (30.0, graph_b, 0, 3)]
        rows = run_sweep(points, ["Dijkstra", "FT"], config=config, seed=0, x_name="n")
        assert len(rows) == 4
        assert {row["n"] for row in rows} == {20.0, 30.0}


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 23, "b": "z"}]
        table = format_table(rows, title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_rows_to_csv(self):
        rows = [{"a": 1.5, "b": "x,y"}, {"a": 2.0, "b": "plain"}]
        csv_text = rows_to_csv(rows)
        lines = csv_text.splitlines()
        assert lines[0] == "a,b"
        assert '"x,y"' in lines[1]

    def test_rows_to_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_summarize_sweep_groups_by_algorithm(self):
        rows = [
            {"algorithm": "FT", "k": 1, "evaluated_flow": 1.0},
            {"algorithm": "FT", "k": 2, "evaluated_flow": 2.0},
            {"algorithm": "Dijkstra", "k": 1, "evaluated_flow": 0.5},
        ]
        series = summarize_sweep(rows, "k")
        assert series["FT"] == [(1, 1.0), (2, 2.0)]
        assert series["Dijkstra"] == [(1, 0.5)]

    def test_compare_algorithms_averages(self):
        rows = [
            {"algorithm": "FT", "evaluated_flow": 1.0},
            {"algorithm": "FT", "evaluated_flow": 3.0},
            {"algorithm": "Dijkstra", "evaluated_flow": 1.0},
        ]
        averages = compare_algorithms(rows)
        assert averages["FT"] == pytest.approx(2.0)
        assert averages["Dijkstra"] == pytest.approx(1.0)


class TestExecutorLifecycle:
    """A failing selector run must never leak worker processes."""

    class _RecordingExecutor(SamplingExecutor):
        def __init__(self):
            self.closed = False

        def map_shards(self, tasks):
            return [run_shard(task) for task in tasks]

        def close(self):
            self.closed = True

    def test_failing_selector_closes_the_shared_executor(self, monkeypatch):
        # run_algorithms now builds its executor through the Session it
        # opens for the run, so the leak guard lives in repro.runtime
        import repro.runtime as runtime_module

        created = []

        def recording_make_executor(spec):
            assert spec == 2
            executor = self._RecordingExecutor()
            created.append(executor)
            return executor

        monkeypatch.setattr(runtime_module, "make_executor", recording_make_executor)
        graph = erdos_renyi_graph(20, average_degree=3, seed=0)
        config = ExperimentConfig(workers=2, n_samples=20, naive_samples=20)
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_algorithms(graph, 0, 2, ["NoSuchAlgorithm"], config=config)
        assert created, "run_algorithms never built the shared executor"
        assert all(executor.closed for executor in created)

    def test_failing_selector_closes_a_real_process_pool(self):
        from repro.parallel.executor import ProcessExecutor

        captured = []
        original_init = ProcessExecutor.__init__

        def capturing_init(executor, workers=None):
            original_init(executor, workers)
            captured.append(executor)

        graph = erdos_renyi_graph(20, average_degree=3, seed=0)
        config = ExperimentConfig(workers=2, n_samples=20, naive_samples=20)
        ProcessExecutor.__init__ = capturing_init
        try:
            with pytest.raises(ValueError, match="unknown algorithm"):
                run_algorithms(graph, 0, 2, ["NoSuchAlgorithm"], config=config)
        finally:
            ProcessExecutor.__init__ = original_init
        assert len(captured) == 1
        assert captured[0].closed

    def test_successful_run_closes_the_executor_too(self, monkeypatch):
        import repro.runtime as runtime_module

        created = []

        def recording_make_executor(spec):
            executor = self._RecordingExecutor()
            created.append(executor)
            return executor

        monkeypatch.setattr(runtime_module, "make_executor", recording_make_executor)
        graph = erdos_renyi_graph(20, average_degree=3, seed=0)
        config = ExperimentConfig(workers=1, n_samples=20, naive_samples=20)
        runs = run_algorithms(graph, 0, 2, ["Dijkstra"], config=config)
        assert len(runs) == 1
        assert created and all(executor.closed for executor in created)


class TestRunQueryBatch:
    def test_answers_match_single_query_estimators(self):
        from repro.experiments.harness import run_query_batch
        from repro.reachability.monte_carlo import monte_carlo_expected_flow
        from repro.service import QueryRequest

        graph = erdos_renyi_graph(30, average_degree=3, seed=1)
        requests = [
            QueryRequest(kind="expected_flow", source=0, n_samples=80, seed=5),
            QueryRequest(kind="pair_reachability", source=0, target=4,
                         n_samples=80, seed=5),
        ]
        config = ExperimentConfig(world_cache_size=8)
        results = run_query_batch(graph, requests, config=config)
        assert results[0].flow == monte_carlo_expected_flow(
            graph, 0, n_samples=80, seed=5
        )
        assert results[1].reachability.n_samples == 80

    def test_shared_evaluator_reuses_its_cache(self):
        from repro.experiments.harness import run_query_batch
        from repro.service import BatchEvaluator, QueryRequest, WorldCache

        graph = erdos_renyi_graph(30, average_degree=3, seed=1)
        requests = [QueryRequest(kind="expected_flow", source=0, n_samples=80, seed=5)]
        evaluator = BatchEvaluator(cache=WorldCache())
        first = run_query_batch(graph, requests, evaluator=evaluator)
        second = run_query_batch(graph, requests, evaluator=evaluator)
        assert not first[0].from_cache
        assert second[0].from_cache
        assert first[0].flow == second[0].flow

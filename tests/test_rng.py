"""Tests for repro.rng."""

import numpy as np
import pytest

from repro.rng import (
    derive_seed,
    ensure_rng,
    iter_rngs,
    seed_sequence,
    spawn_rngs,
    split_seed_sequences,
)


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.allclose(a, b)

    def test_generator_is_passed_through(self):
        rng = np.random.default_rng(1)
        assert ensure_rng(rng) is rng

    def test_different_seeds_differ(self):
        assert not np.allclose(ensure_rng(1).random(5), ensure_rng(2).random(5))


class TestSpawnRngs:
    def test_count_matches(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 2)
        assert not np.allclose(children[0].random(5), children[1].random(5))

    def test_reproducible_for_same_seed(self):
        first = [rng.random(3).tolist() for rng in spawn_rngs(7, 3)]
        second = [rng.random(3).tolist() for rng in spawn_rngs(7, 3)]
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawning_from_generator(self):
        children = spawn_rngs(np.random.default_rng(3), 2)
        assert len(children) == 2

    def test_generator_path_is_reproducible_per_state(self):
        first = [rng.random(3).tolist() for rng in spawn_rngs(np.random.default_rng(3), 2)]
        second = [rng.random(3).tolist() for rng in spawn_rngs(np.random.default_rng(3), 2)]
        assert first == second

    def test_generator_path_advances_parent(self):
        # condensing the generator into a SeedSequence draws entropy, so
        # two successive splits from one generator must differ
        gen = np.random.default_rng(3)
        first = [rng.random(3).tolist() for rng in spawn_rngs(gen, 2)]
        second = [rng.random(3).tolist() for rng in spawn_rngs(gen, 2)]
        assert first != second


class TestChildStreamStability:
    """Pin the exact child streams so refactors cannot silently change them.

    The values encode NumPy's stable SeedSequence spawning semantics; a
    mismatch means the seed-splitting scheme changed and every sharded /
    parallel sampling result changed with it.
    """

    def test_int_seeded_spawn_streams_are_pinned(self):
        streams = [rng.random(2).tolist() for rng in spawn_rngs(7, 3)]
        expected = [
            [0.7978591868433563, 0.05309388325640407],
            [0.4805820057358118, 0.059541806671542186],
            [0.6320442355695731, 0.48677827296439047],
        ]
        assert np.allclose(streams, expected, rtol=0.0, atol=0.0)

    def test_generator_seeded_spawn_streams_are_pinned(self):
        streams = [rng.random(2).tolist() for rng in spawn_rngs(np.random.default_rng(3), 2)]
        expected = [
            [0.15980137092647473, 0.4507940445026689],
            [0.24403297425801407, 0.6209146161208873],
        ]
        assert np.allclose(streams, expected, rtol=0.0, atol=0.0)

    def test_iter_rngs_streams_are_pinned(self):
        iterator = iter_rngs(11)
        streams = [next(iterator).random(2).tolist() for _ in range(2)]
        expected = [
            [0.8904653030263529, 0.839863731228058],
            [0.8069510398541329, 0.4323215609424941],
        ]
        assert np.allclose(streams, expected, rtol=0.0, atol=0.0)

    def test_generator_entropy_condensation_is_pinned(self):
        sequence = seed_sequence(np.random.default_rng(5))
        assert list(sequence.entropy) == [2881021352, 3457461230, 97294837, 3470079269]


class TestSeedSequence:
    def test_int_seed_round_trip(self):
        assert seed_sequence(42).entropy == 42

    def test_none_uses_os_entropy(self):
        a, b = seed_sequence(None), seed_sequence(None)
        assert a.entropy != b.entropy

    def test_split_reproducible_and_independent(self):
        first = split_seed_sequences(9, 4)
        second = split_seed_sequences(9, 4)
        assert [c.generate_state(2).tolist() for c in first] == [
            c.generate_state(2).tolist() for c in second
        ]
        states = {tuple(c.generate_state(2).tolist()) for c in first}
        assert len(states) == 4

    def test_split_negative_count_rejected(self):
        with pytest.raises(ValueError):
            split_seed_sequences(0, -1)

    def test_split_zero_is_empty(self):
        assert split_seed_sequences(0, 0) == []


class TestDeriveSeed:
    def test_none_stays_none(self):
        assert derive_seed(None, 5) is None

    def test_deterministic(self):
        assert derive_seed(3, 7) == derive_seed(3, 7)

    def test_salt_changes_result(self):
        assert derive_seed(3, 1) != derive_seed(3, 2)

    def test_generator_input_gives_int(self):
        assert isinstance(derive_seed(np.random.default_rng(0), 1), int)


def test_iter_rngs_yields_generators():
    iterator = iter_rngs(0)
    first = next(iterator)
    second = next(iterator)
    assert isinstance(first, np.random.Generator)
    assert not np.allclose(first.random(4), second.random(4))

"""Tests for repro.rng."""

import numpy as np
import pytest

from repro.rng import derive_seed, ensure_rng, iter_rngs, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.allclose(a, b)

    def test_generator_is_passed_through(self):
        rng = np.random.default_rng(1)
        assert ensure_rng(rng) is rng

    def test_different_seeds_differ(self):
        assert not np.allclose(ensure_rng(1).random(5), ensure_rng(2).random(5))


class TestSpawnRngs:
    def test_count_matches(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 2)
        assert not np.allclose(children[0].random(5), children[1].random(5))

    def test_reproducible_for_same_seed(self):
        first = [rng.random(3).tolist() for rng in spawn_rngs(7, 3)]
        second = [rng.random(3).tolist() for rng in spawn_rngs(7, 3)]
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawning_from_generator(self):
        children = spawn_rngs(np.random.default_rng(3), 2)
        assert len(children) == 2


class TestDeriveSeed:
    def test_none_stays_none(self):
        assert derive_seed(None, 5) is None

    def test_deterministic(self):
        assert derive_seed(3, 7) == derive_seed(3, 7)

    def test_salt_changes_result(self):
        assert derive_seed(3, 1) != derive_seed(3, 2)

    def test_generator_input_gives_int(self):
        assert isinstance(derive_seed(np.random.default_rng(0), 1), int)


def test_iter_rngs_yields_generators():
    iterator = iter_rngs(0)
    first = next(iterator)
    second = next(iterator)
    assert isinstance(first, np.random.Generator)
    assert not np.allclose(first.random(4), second.random(4))

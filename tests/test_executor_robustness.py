"""Robustness regressions for :class:`repro.parallel.ProcessExecutor`.

Three latent concurrency/lifecycle bugs surfaced while standing a
long-lived server on the executor; each test here pins its fix:

* two threads sharing one executor could each build a process pool in
  ``_ensure_pool`` (one pool's workers leaked forever, ``closed``
  desynced) — creation now happens under a lock;
* a worker killed mid-batch (OOM/SIGKILL) surfaced as an opaque
  ``BrokenProcessPool`` and permanently poisoned the executor — it is
  now discarded and re-raised as the typed, actionable
  :class:`~repro.exceptions.WorkerCrashedError`, and the next call
  rebuilds a fresh pool;
* the ``__del__`` finalizer called ``shutdown(wait=True)`` and could
  hang interpreter exit behind wedged workers — the finalizer path now
  abandons outstanding work (``wait=False, cancel_futures=True``).
"""

import os
import signal
import threading

import numpy as np
import pytest

from repro.exceptions import ExecutorError, ReproError, WorkerCrashedError
from repro.parallel import ProcessExecutor, SerialExecutor, ShardTask
from repro.reachability.backends.base import SamplingProblem
from repro.rng import split_seed_sequences
from repro.types import Edge


def _problem(n_edges: int = 3) -> SamplingProblem:
    edges = [(Edge(i, i + 1), 0.5) for i in range(n_edges)]
    return SamplingProblem.from_edges(edges, source=0)


def _tasks(n_shards: int = 2, backend=None):
    problem = _problem()
    children = split_seed_sequences(3, n_shards)
    return [
        ShardTask(problem=problem, n_samples=4, seed=child, backend=backend)
        for child in children
    ]


class _RecordingPool:
    """Stands in for ProcessPoolExecutor; records construction and shutdown."""

    instances = []

    def __init__(self, max_workers=None, mp_context=None):
        self.max_workers = max_workers
        self.shutdown_calls = []
        _RecordingPool.instances.append(self)
        # widen the historical race window: the first thread parks inside
        # pool construction while the others reach the None check
        barrier = _RecordingPool.construction_barrier
        if barrier is not None:
            try:
                barrier.wait(timeout=5)
            except threading.BrokenBarrierError:
                pass

    construction_barrier = None

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdown_calls.append({"wait": wait, "cancel_futures": cancel_futures})

    def map(self, fn, tasks, chunksize=1):
        return [fn(task) for task in tasks]


@pytest.fixture
def recording_pools(monkeypatch):
    _RecordingPool.instances = []
    _RecordingPool.construction_barrier = None
    monkeypatch.setattr(
        "concurrent.futures.ProcessPoolExecutor", _RecordingPool
    )
    yield _RecordingPool
    _RecordingPool.instances = []
    _RecordingPool.construction_barrier = None


class TestEnsurePoolRace:
    def test_concurrent_first_use_builds_exactly_one_pool(self, recording_pools):
        """N threads racing into a cold executor must share one pool."""
        n_threads = 8
        executor = ProcessExecutor(2)
        start = threading.Barrier(n_threads)
        seen = []
        errors = []

        def use():
            try:
                start.wait(timeout=5)
                seen.append(executor._ensure_pool())
            except Exception as error:  # pragma: no cover - fails the assert below
                errors.append(error)

        threads = [threading.Thread(target=use) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        assert len(recording_pools.instances) == 1
        assert len(seen) == n_threads
        assert all(pool is seen[0] for pool in seen)
        assert executor.closed is False

    def test_race_window_inside_construction_still_single_pool(self, recording_pools):
        """Even a thread parked *inside* pool construction admits no second build."""
        executor = ProcessExecutor(2)
        # the barrier is released by the second participant: the main
        # thread, after it has had every chance to race in
        recording_pools.construction_barrier = threading.Barrier(2)
        first_pool = []
        builder = threading.Thread(
            target=lambda: first_pool.append(executor._ensure_pool())
        )
        builder.start()
        # while the builder is parked mid-construction, racing in must
        # block on the lock rather than start a second construction
        racer = threading.Thread(target=executor._ensure_pool)
        racer.start()
        recording_pools.construction_barrier.wait(timeout=5)
        builder.join(timeout=10)
        racer.join(timeout=10)
        assert len(recording_pools.instances) == 1

    def test_close_use_close_keeps_flag_in_sync(self, recording_pools):
        executor = ProcessExecutor(2)
        executor._ensure_pool()
        assert executor.closed is False
        executor.close()
        assert executor.closed is True
        executor._ensure_pool()  # reuse after close rebuilds
        assert executor.closed is False
        executor.close()
        assert executor.closed is True
        assert len(recording_pools.instances) == 2


class _SuicideBackend:
    """A 'backend' whose sampling kills its own worker process (OOM stand-in)."""

    def sample_reachability(self, problem, n_samples, rng):
        os.kill(os.getpid(), signal.SIGKILL)


class TestWorkerDeath:
    def test_killed_worker_raises_typed_error_and_recovers(self):
        executor = ProcessExecutor(2)
        try:
            with pytest.raises(WorkerCrashedError) as excinfo:
                executor.map_shards(_tasks(backend=_SuicideBackend()))
            # typed: catchable as the library's base error and as the
            # executor-failure family
            assert isinstance(excinfo.value, ReproError)
            assert isinstance(excinfo.value, ExecutorError)
            # actionable: the message explains the likely cause and the fix
            message = str(excinfo.value)
            assert "out-of-memory" in message
            assert "retrying" in message
            assert excinfo.value.workers == 2
            # the broken pool was discarded, not left poisoning the executor
            assert executor._pool is None
            # the next call transparently rebuilds and produces the same
            # bits as the serial reference
            good = _tasks(n_shards=3)
            recovered = executor.map_shards(good)
            reference = SerialExecutor().map_shards(good)
            assert len(recovered) == len(reference)
            for ours, theirs in zip(recovered, reference):
                assert np.array_equal(ours, theirs)
        finally:
            executor.close()
        assert executor.closed is True


class TestFinalizer:
    def test_del_abandons_workers_instead_of_waiting(self, recording_pools):
        executor = ProcessExecutor(2)
        pool = executor._ensure_pool()
        executor.__del__()
        assert pool.shutdown_calls == [{"wait": False, "cancel_futures": True}]
        assert executor._pool is None
        assert executor.closed is True

    def test_close_still_waits_for_clean_shutdown(self, recording_pools):
        executor = ProcessExecutor(2)
        pool = executor._ensure_pool()
        executor.close()
        assert pool.shutdown_calls == [{"wait": True, "cancel_futures": False}]

    def test_del_before_first_use_is_harmless(self):
        executor = ProcessExecutor(2)
        executor.__del__()
        assert executor.closed is True

"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import math
from typing import List, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.biconnected import biconnected_edge_components
from repro.algorithms.traversal import connected_component
from repro.algorithms.union_find import UnionFind
from repro.ftree.builder import build_ftree
from repro.ftree.ftree import FTree
from repro.ftree.sampler import ComponentSampler
from repro.graph.uncertain_graph import UncertainGraph
from repro.reachability.analytic import is_mono_connected
from repro.reachability.bounds import reachability_bounds
from repro.reachability.confidence import normal_confidence_interval, wilson_confidence_interval
from repro.reachability.exact import exact_expected_flow, exact_reachability
from repro.types import Edge

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
MAX_VERTICES = 8
MAX_EDGES = 12


@st.composite
def uncertain_graphs(draw) -> UncertainGraph:
    """Random small uncertain graphs (vertex 0 always exists and is the query)."""
    n_vertices = draw(st.integers(min_value=2, max_value=MAX_VERTICES))
    graph = UncertainGraph()
    for vertex in range(n_vertices):
        weight = draw(st.sampled_from([0.5, 1.0, 2.0, 3.0]))
        graph.add_vertex(vertex, weight=weight)
    possible_edges = [
        (u, v) for u in range(n_vertices) for v in range(u + 1, n_vertices)
    ]
    n_edges = draw(st.integers(min_value=1, max_value=min(MAX_EDGES, len(possible_edges))))
    chosen = draw(
        st.lists(
            st.sampled_from(possible_edges),
            min_size=n_edges,
            max_size=n_edges,
            unique=True,
        )
    )
    for u, v in chosen:
        probability = draw(st.floats(min_value=0.05, max_value=1.0, allow_nan=False))
        graph.add_edge(u, v, probability)
    return graph


def _connected_insertion_order(graph: UncertainGraph, query) -> List[Edge]:
    """Order the query component's edges so that each insertion touches the component."""
    connected = {query}
    order: List[Edge] = []
    remaining = graph.edge_list()
    changed = True
    while remaining and changed:
        changed = False
        for edge in list(remaining):
            if edge.u in connected or edge.v in connected:
                order.append(edge)
                connected.update(edge.endpoints())
                remaining.remove(edge)
                changed = True
    return order


def _exact_sampler() -> ComponentSampler:
    return ComponentSampler(n_samples=10, exact_threshold=20, seed=0)


# ----------------------------------------------------------------------
# F-tree correctness properties
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(uncertain_graphs())
def test_incremental_ftree_flow_equals_exact_enumeration(graph):
    """The F-tree expected flow equals brute-force possible-world enumeration."""
    order = _connected_insertion_order(graph, 0)
    ftree = FTree(graph, 0, sampler=_exact_sampler())
    for edge in order:
        ftree.insert_edge(edge.u, edge.v)
    ftree.check_invariants()
    exact = exact_expected_flow(graph, 0, edges=order).expected_flow
    assert ftree.expected_flow() == pytest.approx(exact, abs=1e-9)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(uncertain_graphs())
def test_builder_ftree_flow_equals_exact_enumeration(graph):
    order = _connected_insertion_order(graph, 0)
    built = build_ftree(graph, order, 0, sampler=_exact_sampler())
    built.check_invariants()
    exact = exact_expected_flow(graph, 0, edges=order).expected_flow
    assert built.expected_flow() == pytest.approx(exact, abs=1e-9)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(uncertain_graphs())
def test_incremental_and_builder_produce_same_bi_components(graph):
    order = _connected_insertion_order(graph, 0)
    incremental = FTree(graph, 0, sampler=_exact_sampler())
    for edge in order:
        incremental.insert_edge(edge.u, edge.v)
    built = build_ftree(graph, order, 0, sampler=_exact_sampler())

    def bi_partition(ftree: FTree):
        return {
            frozenset(component.edges())
            for component in ftree.components()
            if not component.is_mono
        }

    assert bi_partition(incremental) == bi_partition(built)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(uncertain_graphs())
def test_flow_is_monotone_in_the_edge_set(graph):
    """Adding an edge never decreases the expected flow (the basis of greedy growth)."""
    order = _connected_insertion_order(graph, 0)
    ftree = FTree(graph, 0, sampler=_exact_sampler())
    previous_flow = 0.0
    for edge in order:
        ftree.insert_edge(edge.u, edge.v)
        flow = ftree.expected_flow()
        assert flow >= previous_flow - 1e-9
        previous_flow = flow


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(uncertain_graphs())
def test_reachability_probabilities_are_valid(graph):
    order = _connected_insertion_order(graph, 0)
    ftree = FTree(graph, 0, sampler=_exact_sampler())
    for edge in order:
        ftree.insert_edge(edge.u, edge.v)
    reach = ftree.reachability_to_query()
    for probability in reach.values():
        assert -1e-12 <= probability <= 1.0 + 1e-12
    assert set(reach) == connected_component(graph, 0, edges=order)


# ----------------------------------------------------------------------
# decomposition properties
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(uncertain_graphs())
def test_biconnected_components_partition_the_edges(graph):
    components = biconnected_edge_components(graph)
    all_edges = [edge for component in components for edge in component]
    assert len(all_edges) == len(set(all_edges)) == graph.n_edges


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(uncertain_graphs())
def test_forest_detection_matches_cycle_existence(graph):
    """is_mono_connected is exactly 'the graph has no cycle'."""
    has_cycle = any(len(component) > 1 for component in biconnected_edge_components(graph))
    assert is_mono_connected(graph) == (not has_cycle)


# ----------------------------------------------------------------------
# reachability bound / estimator properties
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(uncertain_graphs(), st.integers(min_value=1, max_value=MAX_VERTICES - 1))
def test_bounds_bracket_exact_reachability(graph, target):
    if not graph.has_vertex(target):
        target = 1
    exact = exact_reachability(graph, 0, target).probability
    lower, upper = reachability_bounds(graph, 0, target)
    assert lower <= exact + 1e-9
    assert upper >= exact - 1e-9


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=1, max_value=500), st.data())
def test_confidence_intervals_contain_the_point_estimate(n, data):
    successes = data.draw(st.integers(min_value=0, max_value=n))
    for builder in (normal_confidence_interval, wilson_confidence_interval):
        interval = builder(successes, n, alpha=0.05)
        assert 0.0 <= interval.lower <= interval.upper <= 1.0
        assert interval.lower - 1e-12 <= successes / n <= interval.upper + 1e-12


# ----------------------------------------------------------------------
# supporting data structures
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40))
def test_union_find_matches_naive_connectivity(pairs: List[Tuple[int, int]]):
    uf = UnionFind(range(16))
    adjacency = {v: set() for v in range(16)}
    for a, b in pairs:
        uf.union(a, b)
        adjacency[a].add(b)
        adjacency[b].add(a)

    def naive_connected(start, goal):
        seen, stack = {start}, [start]
        while stack:
            current = stack.pop()
            if current == goal:
                return True
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return start == goal

    for a in range(0, 16, 5):
        for b in range(0, 16, 3):
            assert uf.connected(a, b) == naive_connected(a, b)


@settings(max_examples=100, deadline=None)
@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_edge_canonicalisation_is_symmetric(u, v):
    if u == v:
        with pytest.raises(ValueError):
            Edge(u, v)
    else:
        assert Edge(u, v) == Edge(v, u)
        assert hash(Edge(u, v)) == hash(Edge(v, u))


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(uncertain_graphs())
def test_world_probabilities_sum_to_one(graph):
    from repro.graph.possible_world import enumerate_worlds

    total = sum(probability for _, probability in enumerate_worlds(graph))
    assert math.isclose(total, 1.0, rel_tol=1e-9)

"""Resource profiling and Prometheus exposition.

Four contracts are load-bearing:

* **Attribution exactness** — a span's CPU delta is sandwiched by
  per-thread ``time.thread_time`` measurements taken around it, even
  with 8 threads burning CPU concurrently (CPU time is per-thread;
  allocation deltas, being process-wide tracemalloc readings, are pinned
  single-threaded).
* **Self vs. cumulative** — ``self >= 0`` everywhere, parents' cumulative
  totals dominate their children's, and self times sum exactly to the
  root cumulative total.
* **Collapsed-stack round-trip** — ``format → parse →
  totals_from_collapsed`` reconstructs every cumulative total exactly.
* **Bit-identical results** — a profiled run returns the same bits as an
  unprofiled one, and the Prometheus text served by the scrape endpoint
  and the ``metrics_text`` control kind agrees with the ``metrics``
  snapshot.
"""

import asyncio
import json
import threading
import time
import urllib.request

import pytest

from repro.exceptions import ReproError
from repro.graph.generators import erdos_renyi_graph
from repro.runtime import RuntimeConfig, Session, defaults
from repro.service import QueryRequest, request_to_dict
from repro.telemetry import InMemoryExporter, Telemetry
from repro.telemetry.expo import (
    MetricsHTTPServer,
    WindowRates,
    render_registry,
    render_server_text,
    sanitize_metric_name,
)
from repro.telemetry.profile import (
    ProfileSpanRecord,
    ProfilingTelemetry,
    collapsed_stacks,
    format_collapsed,
    format_hot_spans,
    hot_spans,
    parse_collapsed,
    span_totals,
    totals_from_collapsed,
)
from repro.telemetry.registry import Histogram, MetricsRegistry
from repro.telemetry.spans import SpanRecord

N_THREADS = 8


@pytest.fixture(autouse=True)
def _no_ambient_telemetry():
    """Pin the ambient default off so tests see only their own pipelines."""
    before = defaults.telemetry
    defaults.telemetry = None
    yield
    defaults.telemetry = before


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(30, average_degree=4.0, seed=3)


def _spin(iterations: int = 200_000) -> int:
    total = 0
    for i in range(iterations):
        total += i
    return total


# ----------------------------------------------------------------------
# per-span resource deltas
# ----------------------------------------------------------------------
class TestResourceDeltas:
    def test_cpu_delta_is_exact_per_thread_under_8_threads(self):
        """Each span's CPU delta is sandwiched by its own thread's clock.

        ``time.thread_time`` is per-thread, so even with 8 threads
        burning CPU concurrently, a span can only account for CPU its
        own thread spent between enter and exit.
        """
        tel = ProfilingTelemetry()
        results = [None] * N_THREADS

        def worker(index: int) -> None:
            before = time.thread_time()
            with tel.span(f"work-{index}") as handle:
                _spin()
            after = time.thread_time()
            results[index] = (handle.record.cpu_s, after - before)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        tel.close()
        for cpu_s, envelope in results:
            assert cpu_s > 0.0
            # the span interval is strictly inside the measured envelope
            assert cpu_s <= envelope + 1e-9

    def test_waiting_span_does_not_absorb_other_threads_cpu(self):
        tel = ProfilingTelemetry()
        stop = threading.Event()

        def burner() -> None:
            while not stop.is_set():
                _spin(50_000)

        burners = [threading.Thread(target=burner) for _ in range(3)]
        for thread in burners:
            thread.start()
        try:
            with tel.span("sleeper") as handle:
                time.sleep(0.15)
        finally:
            stop.set()
            for thread in burners:
                thread.join()
        tel.close()
        record = handle.record
        # wall time saw the sleep; per-thread CPU saw (almost) none of it
        assert record.duration_s >= 0.14
        assert record.cpu_s < 0.05

    def test_allocation_delta_tracks_a_known_allocation(self):
        tel = ProfilingTelemetry()
        with tel.span("alloc") as handle:
            block = bytearray(512 * 1024)
        tel.close()
        assert handle.record.alloc_bytes >= 512 * 1024
        assert len(block) == 512 * 1024  # keep it alive through the span

    def test_gc_collections_are_counted(self):
        import gc

        tel = ProfilingTelemetry()
        with tel.span("collected") as handle:
            gc.collect()
        tel.close()
        assert handle.record.gc_collections >= 1

    def test_profiled_spans_nest_and_serialize(self):
        tel = ProfilingTelemetry(exporters=[memory := InMemoryExporter()])
        with tel.span("outer"):
            with tel.span("inner"):
                _spin(10_000)
        tel.close()
        [root] = memory.spans
        assert isinstance(root, ProfileSpanRecord)
        assert [child.name for child in root.children] == ["inner"]
        payload = root.to_dict()
        assert {"cpu_s", "alloc_bytes", "gc_collections"} <= set(payload)
        assert payload["children"][0]["name"] == "inner"

    def test_tracemalloc_lifecycle_is_owned(self):
        import tracemalloc

        already = tracemalloc.is_tracing()
        tel = ProfilingTelemetry()
        assert tracemalloc.is_tracing()
        tel.close()
        assert tracemalloc.is_tracing() == already


# ----------------------------------------------------------------------
# self-vs-cumulative attribution and the collapsed-stack export
# ----------------------------------------------------------------------
def _synthetic_tree() -> SpanRecord:
    """root(10ms) -> a(4ms) -> [a1(1ms), a2(2ms)], b(3ms)."""

    def span(name: str, ms: float, children=()) -> SpanRecord:
        record = SpanRecord(name)
        record.duration_s = ms / 1000.0
        record.children = list(children)
        return record

    return span(
        "root",
        10.0,
        [span("a", 4.0, [span("a1", 1.0), span("a2", 2.0)]), span("b", 3.0)],
    )


class TestAttribution:
    def test_self_vs_cumulative_invariants_on_synthetic_tree(self):
        totals = span_totals([_synthetic_tree()])
        assert totals["root"]["cum_us"] == 10_000
        assert totals["root"]["self_us"] == 10_000 - 4_000 - 3_000
        assert totals["a"]["cum_us"] == 4_000
        assert totals["a"]["self_us"] == 4_000 - 1_000 - 2_000
        assert totals["a1"]["self_us"] == totals["a1"]["cum_us"] == 1_000
        # self times across the tree sum exactly to the root cumulative
        assert sum(entry["self_us"] for entry in totals.values()) == 10_000

    def test_self_never_negative_even_when_children_overrun(self):
        # float jitter: children measured longer than their parent
        parent = SpanRecord("p")
        parent.duration_s = 0.0009999
        child = SpanRecord("c")
        child.duration_s = 0.0010001
        parent.children = [child]
        totals = span_totals([parent])
        assert totals["p"]["self_us"] == 0
        assert totals["p"]["cum_us"] == totals["c"]["cum_us"]

    def test_invariants_on_a_real_profiled_run(self, graph):
        tel = ProfilingTelemetry(exporters=[memory := InMemoryExporter()])
        with Session(RuntimeConfig(telemetry=tel, profile=True)) as session:
            session.expected_flow(graph, 0, n_samples=200, seed=5)
        tel.close()
        assert memory.spans
        totals = span_totals(memory.spans)
        for name, entry in totals.items():
            assert entry["self_us"] >= 0, name
            assert entry["cum_us"] >= entry["self_us"], name

    def test_collapsed_stack_round_trip_reconstructs_totals_exactly(self):
        roots = [_synthetic_tree()]
        text = format_collapsed(roots)
        reconstructed = totals_from_collapsed(parse_collapsed(text))
        assert reconstructed == {
            "root": 10_000,
            "root;a": 4_000,
            "root;a;a1": 1_000,
            "root;a;a2": 2_000,
            "root;b": 3_000,
        }

    def test_collapsed_round_trip_on_a_real_profiled_run(self, graph):
        tel = ProfilingTelemetry(exporters=[memory := InMemoryExporter()])
        with Session(RuntimeConfig(telemetry=tel, profile=True)) as session:
            session.batch(
                graph,
                [QueryRequest(kind="expected_flow", source=0, n_samples=150, seed=2)],
            )
        tel.close()
        stacks = collapsed_stacks(memory.spans)
        assert stacks  # something was profiled
        reconstructed = totals_from_collapsed(parse_collapsed(format_collapsed(memory.spans)))

        def expected(span, prefix, out):
            path = f"{prefix};{span.name}" if prefix else span.name
            child_total = sum(expected(c, path, out) for c in span.children)
            cum = max(round(span.duration_s * 1e6), child_total)
            out[path] = out.get(path, 0) + cum
            return cum

        want = {}
        for root in memory.spans:
            expected(root, "", want)
        for path, cum in want.items():
            if cum > 0:
                assert reconstructed[path] == cum

    def test_parse_collapsed_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_collapsed("justoneword\n")

    def test_hot_spans_rank_by_self_time(self):
        ranked = hot_spans([_synthetic_tree()], limit=2)
        # root and b tie at 3000us self; the name breaks the tie
        assert [name for name, _ in ranked] == ["b", "root"]
        table = format_hot_spans([_synthetic_tree()])
        assert "span" in table and "root" in table and "self ms" in table


# ----------------------------------------------------------------------
# resolution chain and bit-identical results
# ----------------------------------------------------------------------
class TestProfileResolution:
    def test_profile_config_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(profile=True, telemetry=False)
        with pytest.raises(ValueError):
            RuntimeConfig(profile=True, telemetry=Telemetry())
        with pytest.raises(TypeError):
            RuntimeConfig(profile="yes")
        assert RuntimeConfig(profile=True).as_dict()["profile"] is True
        assert RuntimeConfig().as_dict()["profile"] is None

    def test_profile_true_builds_owned_profiling_pipeline(self):
        session = Session(RuntimeConfig(profile=True))
        try:
            assert isinstance(session.telemetry, ProfilingTelemetry)
            assert session.telemetry.enabled
        finally:
            session.close()

    def test_profile_shares_a_passed_profiling_instance(self):
        tel = ProfilingTelemetry()
        session = Session(RuntimeConfig(profile=True, telemetry=tel))
        assert session.telemetry is tel
        session.close()
        assert tel.enabled  # shared instances are left alone
        tel.close()

    def test_profiled_run_is_bit_identical_to_unprofiled(self, graph):
        with Session() as session:
            plain = session.expected_flow(graph, 0, n_samples=400, seed=9)
        with Session(RuntimeConfig(profile=True)) as session:
            profiled = session.expected_flow(graph, 0, n_samples=400, seed=9)
        with Session(RuntimeConfig(telemetry=True)) as session:
            traced = session.expected_flow(graph, 0, n_samples=400, seed=9)
        assert profiled.expected_flow == plain.expected_flow
        assert profiled.variance == plain.variance
        assert profiled.reachability == plain.reachability
        assert traced.expected_flow == plain.expected_flow

    def test_profiled_batch_is_bit_identical(self, graph):
        requests = [
            QueryRequest(kind="expected_flow", source=0, n_samples=120, seed=1),
            QueryRequest(kind="pair_reachability", source=0, target=3, n_samples=120, seed=1),
        ]
        with Session() as session:
            plain = [request_to_dict(r) for r in requests]  # keep requests fixed
            baseline = session.batch(graph, requests)
        with Session(RuntimeConfig(profile=True)) as session:
            profiled = session.batch(graph, requests)
        assert plain == [request_to_dict(r) for r in requests]
        assert [r.value for r in profiled] == [r.value for r in baseline]


# ----------------------------------------------------------------------
# Histogram.quantile
# ----------------------------------------------------------------------
class TestHistogramQuantile:
    def test_interpolates_within_the_target_bucket(self):
        hist = Histogram("h")
        hist.observe(0.002)
        hist.observe(0.004)
        # rank 1 of 2 lands at the top of the (0.001, 0.0025] bucket
        assert hist.quantile(0.5) == pytest.approx(0.0025)
        # estimate past the max clamps to the exactly tracked max
        assert hist.quantile(0.99) == pytest.approx(0.004)

    def test_bounds_cases(self):
        hist = Histogram("h")
        assert hist.quantile(0.5) is None
        hist.observe(0.007)
        assert hist.quantile(0.0) == pytest.approx(0.007)
        assert hist.quantile(1.0) == pytest.approx(0.007)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_overflow_bucket_reports_the_exact_max(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(95.0)  # overflow bucket
        assert hist.quantile(0.99) == pytest.approx(95.0)

    def test_estimates_never_leave_the_observed_range(self):
        hist = Histogram("h")
        for value in (0.0003, 0.0004, 0.0009, 0.012):
            hist.observe(value)
        for q in (0.0, 0.25, 0.5, 0.75, 0.95, 1.0):
            estimate = hist.quantile(q)
            assert 0.0003 <= estimate <= 0.012


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
def _parse_samples(text: str):
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = float(value)
    return samples


class TestExposition:
    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("engine.worlds_sampled") == "repro_engine_worlds_sampled"
        assert sanitize_metric_name("cache.world.hit-rate") == "repro_cache_world_hit_rate"
        assert sanitize_metric_name("9lives", prefix="") == "_9lives"

    def test_render_registry_counters_gauges_and_cumulative_buckets(self):
        registry = MetricsRegistry()
        registry.counter("engine.worlds_sampled").add(7)
        registry.gauge("executor.workers").set(4)
        hist = registry.histogram("service.latency", bounds=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 5.0):
            hist.observe(value)
        text = render_registry(registry.snapshot())
        assert "# TYPE repro_engine_worlds_sampled_total counter" in text
        assert "# TYPE repro_service_latency histogram" in text
        samples = _parse_samples(text)
        assert samples["repro_engine_worlds_sampled_total"] == 7
        assert samples["repro_executor_workers"] == 4
        # bucket series are cumulative and end in the +Inf total
        assert samples['repro_service_latency_bucket{le="0.001"}'] == 1
        assert samples['repro_service_latency_bucket{le="0.01"}'] == 2
        assert samples['repro_service_latency_bucket{le="0.1"}'] == 3
        assert samples['repro_service_latency_bucket{le="+Inf"}'] == 4
        assert samples["repro_service_latency_count"] == 4
        assert samples["repro_service_latency_sum"] == pytest.approx(5.0555)
        # quantile gauges match the histogram's own estimator
        assert samples['repro_service_latency_quantile{quantile="0.5"}'] == pytest.approx(
            hist.quantile(0.5)
        )
        assert samples['repro_service_latency_quantile{quantile="0.99"}'] == pytest.approx(
            hist.quantile(0.99)
        )

    def test_render_server_text_flattens_the_metrics_payload(self):
        payload = {
            "requests": {
                "admitted": 5,
                "answered": 4,
                "answered_by_kind": {"expected_flow": 4},
                "failed": 1,
                "rejected": {"over_capacity": 2},
                "bad_requests": 0,
                "control": 3,
            },
            "coalescing": {
                "batches": 2,
                "batched_requests": 4,
                "largest_batch": 3,
                "mean_batch_size": 2.0,
            },
            "latency_ms": {"count": 4, "mean": 2.0, "p50": 1.5, "p95": 3.0, "p99": 3.5, "max": 4.0},
            "cache": {"hits": 10.0, "misses": 2.0, "hit_rate": 10 / 12},
            "executor": {"workers": 2, "shard_size": 256, "sharded": True},
            "inflight": 1,
            "max_inflight": 256,
            "tenants": 1,
            "rates": {"qps": 1.5, "hit_rate": 0.8, "rejection_rate": 0.0, "window_s": 5.0},
            "telemetry": None,
        }
        samples = _parse_samples(render_server_text(payload))
        assert samples["repro_server_admitted_total"] == 5
        assert samples["repro_server_answered_total"] == 4
        assert samples['repro_server_rejected_total{error_type="over_capacity"}'] == 2
        assert samples['repro_server_answered_by_kind_total{kind="expected_flow"}'] == 4
        assert samples["repro_server_batches_total"] == 2
        assert samples["repro_server_latency_ms_p99"] == 3.5
        assert samples["repro_server_cache_hits"] == 10
        assert samples["repro_server_executor_workers"] == 2
        assert samples["repro_server_rate_qps"] == 1.5
        assert samples["repro_server_inflight"] == 1

    def test_window_rates_from_snapshot_deltas(self):
        rates = WindowRates()
        first = {
            "requests": {"admitted": 10, "answered": 10, "rejected": {}},
            "cache": {"hits": 4.0, "misses": 4.0},
        }
        assert rates.update(100.0, first) is None  # baseline only
        second = {
            "requests": {"admitted": 30, "answered": 25, "rejected": {"over_capacity": 5}},
            "cache": {"hits": 16.0, "misses": 8.0},
        }
        window = rates.update(110.0, second)
        assert window["qps"] == pytest.approx(1.5)  # 15 answered / 10 s
        assert window["hit_rate"] == pytest.approx(12 / 16)
        assert window["rejection_rate"] == pytest.approx(5 / 25)
        assert window["window_s"] == pytest.approx(10.0)
        # an idle window reports no traffic-dependent rates
        idle = rates.update(120.0, second)
        assert idle["qps"] == 0.0
        assert idle["hit_rate"] is None
        assert idle["rejection_rate"] is None

    def test_metrics_http_server_serves_and_404s(self):
        registry = MetricsRegistry()
        registry.counter("demo.hits").add(3)
        server = MetricsHTTPServer(lambda: render_registry(registry.snapshot())).start()
        try:
            host, port = server.address
            body = urllib.request.urlopen(f"http://{host}:{port}/metrics").read().decode()
            assert _parse_samples(body)["repro_demo_hits_total"] == 3
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"http://{host}:{port}/nope")
        finally:
            server.stop()


# ----------------------------------------------------------------------
# the two serving transports agree with the snapshot
# ----------------------------------------------------------------------
class TestServedExposition:
    def test_scrape_and_metrics_text_round_trip_against_snapshot(self, graph):
        from repro.server import ReproServer, ServerClient, protocol

        async def scenario():
            server = ReproServer(
                graph,
                port=0,
                metrics_port=0,
                rate_interval_s=0.05,
                runtime=RuntimeConfig(telemetry=Telemetry(), world_cache=16),
            )
            await server.start()
            host, port = server.address
            client = await ServerClient.connect(host, port)
            try:
                for i in range(3):
                    response = await client.query(
                        {"kind": "expected_flow", "query": 0, "n_samples": 80, "seed": i}
                    )
                    assert response["ok"]
                await asyncio.sleep(0.12)  # let the rate task tick
                snapshot = await client.request({"kind": protocol.KIND_METRICS})
                text_response = await client.request(
                    {"kind": protocol.KIND_METRICS_TEXT}
                )
                metrics_host, metrics_port = server.metrics_address
                loop = asyncio.get_running_loop()
                scraped = await loop.run_in_executor(
                    None,
                    lambda: urllib.request.urlopen(
                        f"http://{metrics_host}:{metrics_port}/metrics", timeout=10
                    ).read().decode(),
                )
            finally:
                await client.close()
                await server.stop()
            return snapshot, text_response, scraped

        snapshot, text_response, scraped = asyncio.run(scenario())
        assert text_response["ok"] and text_response["kind"] == "metrics_text"
        for text in (scraped, text_response["text"]):
            samples = _parse_samples(text)
            # counter values match the metrics control-kind snapshot
            assert samples["repro_server_answered_total"] == snapshot["requests"]["answered"]
            assert samples["repro_server_admitted_total"] == snapshot["requests"]["admitted"]
            assert samples["repro_server_batches_total"] == snapshot["coalescing"]["batches"]
            # the shared telemetry registry rides along
            assert samples["repro_server_answered_total"] == samples["repro_server_answered_total"]
            assert "repro_server_latency_seconds_bucket" in text
            # the periodic snapshot-delta task published windowed rates
            assert "repro_server_rate_qps" in samples

    def test_metrics_endpoint_disabled_by_default(self, graph):
        from repro.server import ReproServer

        async def scenario():
            server = ReproServer(graph, port=0, rate_interval_s=0.0)
            await server.start()
            try:
                with pytest.raises(RuntimeError):
                    server.metrics_address
            finally:
                await server.stop()

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# CLI: --profile wiring and the --trace-out lifecycle fix
# ----------------------------------------------------------------------
class TestProfilingCLI:
    @pytest.fixture
    def graph_file(self, tmp_path, graph):
        from repro.graph.io import write_json

        path = tmp_path / "graph.json"
        write_json(graph, path)
        return path

    def test_telemetry_profile_json_reconstructs_totals(self, graph_file, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "telemetry",
                    "--graph",
                    str(graph_file),
                    "--samples",
                    "100",
                    "--profile",
                    "--json",
                ]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        profile = document["profile"]
        reconstructed = totals_from_collapsed(parse_collapsed(profile["collapsed"]))
        for name, entry in profile["span_totals"].items():
            assert entry["self_us"] >= 0, name
        # the collapsed export carries the span tree's exact totals
        root_names = {span["name"] for span in document["spans"]}
        for path, cum in reconstructed.items():
            assert cum > 0
            assert path.split(";")[0] in root_names
        assert profile["hot_spans"][0]["self_us"] >= profile["hot_spans"][-1]["self_us"]

    def test_flame_out_writes_collapsed_stacks(self, graph_file, tmp_path, capsys):
        from repro.cli import main

        flame = tmp_path / "profile.folded"
        assert (
            main(
                [
                    "telemetry",
                    "--graph",
                    str(graph_file),
                    "--samples",
                    "100",
                    "--flame-out",
                    str(flame),
                ]
            )
            == 0
        )
        stacks = parse_collapsed(flame.read_text(encoding="utf-8"))
        assert stacks
        assert all(weight > 0 for weight in stacks.values())

    def test_trace_out_flushed_and_closed_when_batch_fails(
        self, graph_file, tmp_path, monkeypatch
    ):
        """Satellite regression: the JSONL exporter must not lose its file
        handle when a workload subcommand raises mid-run."""
        from repro.cli import main
        from repro.telemetry import JSONLExporter

        closed = []
        original_close = JSONLExporter.close

        def recording_close(self):
            closed.append(self.path)
            original_close(self)

        monkeypatch.setattr(JSONLExporter, "close", recording_close)

        def failing_batch(self, graph, requests, warm=False):
            with self.telemetry.span("doomed.work"):
                pass
            raise ReproError("injected mid-batch failure")

        monkeypatch.setattr(Session, "batch", failing_batch)
        requests_file = tmp_path / "requests.jsonl"
        requests_file.write_text(
            '{"kind": "expected_flow", "query": 0}\n', encoding="utf-8"
        )
        trace_path = tmp_path / "trace.jsonl"
        with pytest.raises(SystemExit, match="injected mid-batch failure"):
            main(
                [
                    "batch",
                    "--graph",
                    str(graph_file),
                    "--requests",
                    str(requests_file),
                    "--trace-out",
                    str(trace_path),
                ]
            )
        # the span exported before the failure reached the file, and the
        # handle was closed on the error path
        assert trace_path in closed
        lines = trace_path.read_text(encoding="utf-8").strip().splitlines()
        assert any("doomed.work" in line for line in lines)

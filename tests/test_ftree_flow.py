"""Tests for F-tree flow evaluation, confidence intervals and estimation cost."""

import pytest

from repro.ftree.builder import build_ftree
from repro.ftree.ftree import FTree
from repro.ftree.memo import MemoCache
from repro.ftree.sampler import ComponentSampler
from repro.graph.generators import cycle_graph, path_graph
from repro.reachability.exact import exact_expected_flow


class TestExpectedFlow:
    def test_flow_on_tree_is_exact_and_deterministic(self, small_path):
        ftree = build_ftree(
            small_path,
            small_path.edge_list(),
            0,
            sampler=ComponentSampler(n_samples=1, exact_threshold=0, seed=0),
        )
        assert ftree.expected_flow() == pytest.approx(0.875)

    def test_include_query_adds_query_weight(self, small_path):
        small_path.set_weight(0, 5.0)
        ftree = build_ftree(small_path, small_path.edge_list(), 0)
        assert ftree.expected_flow(include_query=True) == pytest.approx(
            ftree.expected_flow() + 5.0
        )

    def test_sampled_flow_converges_to_exact(self):
        graph = cycle_graph(7, probability=0.6)
        sampler = ComponentSampler(n_samples=3000, exact_threshold=0, seed=3)
        ftree = build_ftree(graph, graph.edge_list(), 0, sampler=sampler)
        exact = exact_expected_flow(graph, 0).expected_flow
        assert ftree.expected_flow() == pytest.approx(exact, rel=0.06)

    def test_weights_are_respected(self):
        graph = path_graph(3, probability=0.5)
        graph.set_weight(2, 8.0)
        ftree = build_ftree(graph, graph.edge_list(), 0)
        assert ftree.expected_flow() == pytest.approx(0.5 * 1.0 + 0.25 * 8.0)

    def test_empty_tree_has_zero_flow(self, small_path):
        assert FTree(small_path, 0).expected_flow() == 0.0


class TestFlowInterval:
    def test_tree_interval_has_zero_width(self, small_path):
        ftree = build_ftree(small_path, small_path.edge_list(), 0)
        lower, upper = ftree.flow_interval()
        assert lower == pytest.approx(upper)
        assert lower == pytest.approx(0.875)

    def test_sampled_interval_brackets_exact_flow(self):
        graph = cycle_graph(7, probability=0.5)
        sampler = ComponentSampler(n_samples=400, exact_threshold=0, seed=5)
        ftree = build_ftree(graph, graph.edge_list(), 0, sampler=sampler)
        exact = exact_expected_flow(graph, 0).expected_flow
        lower, upper = ftree.flow_interval(alpha=0.01)
        assert lower <= exact <= upper
        assert lower <= ftree.expected_flow() <= upper

    def test_include_query_shifts_both_bounds(self, small_path):
        small_path.set_weight(0, 2.0)
        ftree = build_ftree(small_path, small_path.edge_list(), 0)
        lower, upper = ftree.flow_interval(include_query=True)
        assert lower == pytest.approx(0.875 + 2.0)
        assert upper == pytest.approx(0.875 + 2.0)


class TestEstimationCost:
    def test_tree_has_zero_cost(self, small_path):
        ftree = build_ftree(small_path, small_path.edge_list(), 0)
        assert ftree.pending_estimation_cost() == 0

    def test_cycle_cost_before_and_after_estimation(self):
        graph = cycle_graph(6, probability=0.5)
        sampler = ComponentSampler(n_samples=50, exact_threshold=0, seed=0)
        ftree = build_ftree(graph, graph.edge_list(), 0, sampler=sampler)
        assert ftree.pending_estimation_cost() == graph.n_edges
        ftree.expected_flow()  # triggers the estimation
        assert ftree.pending_estimation_cost() == 0

    def test_memoized_component_has_zero_cost(self):
        graph = cycle_graph(6, probability=0.5)
        memo = MemoCache()
        sampler = ComponentSampler(n_samples=50, exact_threshold=0, seed=0, memo=memo)
        first = build_ftree(graph, graph.edge_list(), 0, sampler=sampler)
        first.expected_flow()
        second = build_ftree(graph, graph.edge_list(), 0, sampler=sampler)
        assert second.pending_estimation_cost() == 0


class TestConnectedVertices:
    def test_connected_vertices_track_insertions(self, small_path):
        ftree = FTree(small_path, 0)
        assert ftree.connected_vertices() == {0}
        ftree.insert_edge(0, 1)
        assert ftree.connected_vertices() == {0, 1}
        assert ftree.n_selected == 1
        assert ftree.selected_edges == {next(iter(small_path.edges()))} or ftree.n_selected == 1

    def test_owner_of_query_is_none(self, small_path):
        ftree = FTree(small_path, 0)
        assert ftree.owner_of(0) is None
        assert ftree.owner_of(3) is None  # not connected yet

"""Tests for exact reachability / flow via possible-world enumeration."""

import pytest

from repro.exceptions import ExactEnumerationError, VertexNotFoundError
from repro.graph.generators import path_graph, star_graph
from repro.reachability.exact import (
    exact_expected_flow,
    exact_reachability,
    exact_reachability_all,
)
from repro.types import Edge


class TestExactReachability:
    def test_single_edge(self):
        graph = path_graph(2, probability=0.3)
        assert exact_reachability(graph, 0, 1).probability == pytest.approx(0.3)

    def test_path_is_product(self):
        graph = path_graph(4, probability=0.5)
        assert exact_reachability(graph, 0, 3).probability == pytest.approx(0.125)

    def test_triangle_two_terminal(self, triangle_graph):
        # P(0 <-> 1) = p01 + (1 - p01) * p02 * p12
        expected = 0.5 + 0.5 * 0.7 * 0.6
        assert exact_reachability(triangle_graph, 0, 1).probability == pytest.approx(expected)

    def test_self_reachability_is_one(self, triangle_graph):
        assert exact_reachability(triangle_graph, 1, 1).probability == pytest.approx(1.0)

    def test_disconnected_vertex(self):
        graph = path_graph(2, probability=0.5)
        graph.add_vertex(9)
        assert exact_reachability(graph, 0, 9).probability == 0.0

    def test_all_reachabilities(self, triangle_graph):
        probabilities = exact_reachability_all(triangle_graph, 0)
        assert probabilities[0] == pytest.approx(1.0)
        assert all(0.0 <= p <= 1.0 for p in probabilities.values())

    def test_unknown_vertices(self, triangle_graph):
        with pytest.raises(VertexNotFoundError):
            exact_reachability(triangle_graph, 0, 99)
        with pytest.raises(VertexNotFoundError):
            exact_reachability_all(triangle_graph, 99)

    def test_edge_restriction(self, triangle_graph):
        restricted = exact_reachability(triangle_graph, 0, 1, edges=[Edge(0, 1)])
        assert restricted.probability == pytest.approx(0.5)

    def test_estimate_is_marked_exact(self, triangle_graph):
        assert exact_reachability(triangle_graph, 0, 1).is_exact


class TestExactFlow:
    def test_star_flow(self):
        graph = star_graph(4, probability=0.5, weight=2.0)
        flow = exact_expected_flow(graph, 0)
        assert flow.expected_flow == pytest.approx(4 * 0.5 * 2.0)

    def test_include_query(self, triangle_graph):
        excluded = exact_expected_flow(triangle_graph, 0, include_query=False)
        included = exact_expected_flow(triangle_graph, 0, include_query=True)
        assert included.expected_flow == pytest.approx(excluded.expected_flow + 1.0)
        assert 0 in included.reachability
        assert 0 not in excluded.reachability

    def test_weights_are_honoured(self):
        graph = path_graph(3, probability=0.5)
        graph.set_weight(2, 10.0)
        flow = exact_expected_flow(graph, 0)
        assert flow.expected_flow == pytest.approx(0.5 * 1.0 + 0.25 * 10.0)

    def test_limit_enforced(self):
        graph = path_graph(25, probability=0.5)
        with pytest.raises(ExactEnumerationError):
            exact_expected_flow(graph, 0, limit=10)

    def test_flow_estimate_is_exact(self, triangle_graph):
        assert exact_expected_flow(triangle_graph, 0).is_exact

"""Shared type aliases and small value objects used across the package.

The library identifies vertices by arbitrary hashable objects (integers
in all built-in generators) and identifies undirected edges by
:class:`Edge`, an order-insensitive, hashable pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Tuple

#: A vertex identifier.  Any hashable object is accepted; the built-in
#: generators use consecutive integers starting at zero.
VertexId = Hashable

#: A raw (unordered) pair of endpoints, as accepted by most public APIs.
EdgePair = Tuple[VertexId, VertexId]


@dataclass(frozen=True, order=True)
class Edge:
    """An undirected edge, normalised so that ``Edge(u, v) == Edge(v, u)``.

    The two endpoints are stored in a canonical (sorted by ``repr``-stable
    key) order, which makes :class:`Edge` safe to use as a dictionary key
    and as a member of sets regardless of the orientation the caller used.

    Examples
    --------
    >>> Edge(2, 1) == Edge(1, 2)
    True
    >>> Edge(1, 2).other(1)
    2
    """

    u: VertexId
    v: VertexId

    def __init__(self, u: VertexId, v: VertexId) -> None:
        if u == v:
            raise ValueError(f"self loop on vertex {u!r} is not a valid edge")
        first, second = _canonical_order(u, v)
        object.__setattr__(self, "u", first)
        object.__setattr__(self, "v", second)

    def endpoints(self) -> EdgePair:
        """Return the two endpoints as a tuple ``(u, v)`` in canonical order."""
        return (self.u, self.v)

    def other(self, vertex: VertexId) -> VertexId:
        """Return the endpoint that is not ``vertex``.

        Raises
        ------
        ValueError
            If ``vertex`` is not an endpoint of this edge.
        """
        if vertex == self.u:
            return self.v
        if vertex == self.v:
            return self.u
        raise ValueError(f"vertex {vertex!r} is not an endpoint of {self!r}")

    def is_incident_to(self, vertex: VertexId) -> bool:
        """Return True if ``vertex`` is one of the two endpoints."""
        return vertex == self.u or vertex == self.v

    def __iter__(self):
        yield self.u
        yield self.v

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Edge({self.u!r}, {self.v!r})"


def _canonical_order(u: VertexId, v: VertexId) -> EdgePair:
    """Order two endpoints deterministically.

    Endpoints of the same orderable type are sorted by their natural
    order; mixed or unorderable types fall back to sorting by
    ``(type name, repr)`` which is stable across processes.
    """
    try:
        if u <= v:  # type: ignore[operator]
            return u, v
        return v, u
    except TypeError:
        key_u = (type(u).__name__, repr(u))
        key_v = (type(v).__name__, repr(v))
        if key_u <= key_v:
            return u, v
        return v, u


def as_edge(item: "Edge | EdgePair") -> Edge:
    """Coerce an :class:`Edge` or a raw pair into an :class:`Edge`."""
    if isinstance(item, Edge):
        return item
    u, v = item
    return Edge(u, v)


def as_edges(items: Iterable["Edge | EdgePair"]) -> list[Edge]:
    """Coerce an iterable of edges or pairs into a list of :class:`Edge`."""
    return [as_edge(item) for item in items]

"""repro — Information Flow Maximization in Probabilistic Graphs.

A reproduction of Frey, Züfle, Emrich & Renz, *"Efficient Information
Flow Maximization in Probabilistic Graphs"* (IEEE TKDE 30(5), 2018 /
ICDE 2018 extended abstract).

Quickstart
----------
>>> from repro import erdos_renyi_graph, make_selector
>>> graph = erdos_renyi_graph(200, average_degree=4, seed=7)
>>> selector = make_selector("FT+M", n_samples=200, seed=7)
>>> result = selector.select(graph, query=0, budget=15)
>>> result.n_selected
15

The package is organised as:

* :mod:`repro.graph` — the uncertain graph model, possible worlds and
  synthetic generators;
* :mod:`repro.algorithms` — deterministic graph algorithms (BFS, Tarjan
  biconnected components, Dijkstra, spanning trees);
* :mod:`repro.reachability` — Monte-Carlo, exact and analytic estimators
  of reachability probability and expected information flow;
* :mod:`repro.ftree` — the F-tree decomposition (the paper's core
  contribution);
* :mod:`repro.selection` — the edge-selection algorithms compared in the
  paper's evaluation;
* :mod:`repro.datasets` — named datasets (synthetic surrogates of the
  paper's real networks);
* :mod:`repro.parallel` — sharded possible-world sampling with
  deterministic seed-splitting, process-pool executors and adaptive
  CI-driven stopping;
* :mod:`repro.service` — the batched multi-query evaluation service:
  mixed batches of flow/reachability queries planned onto shared world
  batches, with a digest-keyed LRU world cache;
* :mod:`repro.server` — the async serving tier: a JSONL-over-TCP front
  end that coalesces concurrently-arriving queries into shared
  evaluation batches, with per-tenant sessions, admission control and
  a health/metrics surface;
* :mod:`repro.digest` — the stable content-hashing scheme shared by the
  F-tree memo and the world cache;
* :mod:`repro.runtime` — the unified Session API: one frozen
  :class:`~repro.runtime.RuntimeConfig` bundling every runtime knob
  (backend, CRN mode, workers, shard size, sample/seed policy, world
  cache) and a contextvar-scoped :class:`~repro.runtime.Session` facade
  (``with repro.session(...):``) that replaces the five legacy
  process-wide ``set_default_*`` globals;
* :mod:`repro.telemetry` — the unified observability layer: a
  thread-safe metrics registry plus nested tracing spans, resolved like
  every other runtime knob and instrumented through engine, executor,
  caches, service and server (disabled by default at zero cost);
* :mod:`repro.experiments` — the harness that regenerates every figure
  of the evaluation section.
"""

import logging as _logging

from repro.types import Edge, VertexId
from repro.graph import (
    UncertainGraph,
    PossibleWorld,
    enumerate_worlds,
    erdos_renyi_graph,
    partitioned_graph,
    wsn_graph,
    grid_road_graph,
    social_circle_graph,
    collaboration_graph,
    preferential_attachment_graph,
)
from repro.reachability import (
    monte_carlo_expected_flow,
    exact_expected_flow,
    mono_connected_expected_flow,
)
from repro.parallel import (
    AdaptiveSettings,
    ProcessExecutor,
    SerialExecutor,
    make_executor,
)
from repro.service import (
    BatchEvaluator,
    QueryRequest,
    QueryResult,
    WorldCache,
)
from repro.server import ReproServer, ServerClient, ServerConfig
from repro.distributed import RemoteExecutor
from repro.ftree import FTree, ComponentSampler, MemoCache, build_ftree
from repro.selection import (
    DijkstraSelector,
    NaiveGreedySelector,
    FTreeGreedySelector,
    RandomSelector,
    exhaustive_optimal_selection,
    make_selector,
    ALGORITHM_NAMES,
    SelectionResult,
)
from repro.telemetry import (
    MetricsRegistry,
    Telemetry,
    current_telemetry,
    traced,
)
from repro import runtime
from repro.runtime import RuntimeConfig, Session, current_config, session

# library convention: the embedding application decides where log records
# go; without a configured handler the repro tree stays silent
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

__version__ = "1.0.0"

__all__ = [
    "Edge",
    "VertexId",
    "UncertainGraph",
    "PossibleWorld",
    "enumerate_worlds",
    "erdos_renyi_graph",
    "partitioned_graph",
    "wsn_graph",
    "grid_road_graph",
    "social_circle_graph",
    "collaboration_graph",
    "preferential_attachment_graph",
    "monte_carlo_expected_flow",
    "exact_expected_flow",
    "mono_connected_expected_flow",
    "AdaptiveSettings",
    "ProcessExecutor",
    "SerialExecutor",
    "make_executor",
    "BatchEvaluator",
    "QueryRequest",
    "QueryResult",
    "WorldCache",
    "ReproServer",
    "ServerClient",
    "ServerConfig",
    "RemoteExecutor",
    "FTree",
    "ComponentSampler",
    "MemoCache",
    "build_ftree",
    "DijkstraSelector",
    "NaiveGreedySelector",
    "FTreeGreedySelector",
    "RandomSelector",
    "exhaustive_optimal_selection",
    "make_selector",
    "ALGORITHM_NAMES",
    "SelectionResult",
    "MetricsRegistry",
    "Telemetry",
    "current_telemetry",
    "traced",
    "runtime",
    "RuntimeConfig",
    "Session",
    "current_config",
    "session",
    "__version__",
]

"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class GraphError(ReproError):
    """Base class for errors concerning the uncertain graph model."""


class VertexNotFoundError(GraphError, KeyError):
    """A vertex referenced by the caller does not exist in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} does not exist in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """An edge referenced by the caller does not exist in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) does not exist in the graph")
        self.u = u
        self.v = v


class DuplicateVertexError(GraphError, ValueError):
    """An attempt was made to add a vertex that already exists."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} already exists in the graph")
        self.vertex = vertex


class DuplicateEdgeError(GraphError, ValueError):
    """An attempt was made to add an edge that already exists."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) already exists in the graph")
        self.u = u
        self.v = v


class InvalidProbabilityError(GraphError, ValueError):
    """An edge probability falls outside the half-open interval (0, 1]."""

    def __init__(self, value: float) -> None:
        super().__init__(
            f"edge probability must lie in (0, 1], got {value!r}"
        )
        self.value = value


class InvalidWeightError(GraphError, ValueError):
    """A vertex weight is negative or not a finite number."""

    def __init__(self, value: float) -> None:
        super().__init__(
            f"vertex weight must be a non-negative finite number, got {value!r}"
        )
        self.value = value


class SelfLoopError(GraphError, ValueError):
    """Self loops carry no information flow and are rejected."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"self loop on vertex {vertex!r} is not allowed")
        self.vertex = vertex


class FTreeError(ReproError):
    """Base class for F-tree structural errors."""


class FTreeInvariantError(FTreeError):
    """An internal consistency check of the F-tree failed."""


class DisconnectedInsertionError(FTreeError, ValueError):
    """An edge insertion would leave the inserted edge disconnected from Q.

    The F-tree only represents the connected component of the query
    vertex, so at least one endpoint of every inserted edge must already
    be known to the tree (paper Section 5.4, Case I is excluded).
    """

    def __init__(self, u: object, v: object) -> None:
        super().__init__(
            f"neither endpoint of edge ({u!r}, {v!r}) is connected to the query vertex"
        )
        self.u = u
        self.v = v


class SelectionError(ReproError):
    """Base class for edge-selection failures."""


class BudgetError(SelectionError, ValueError):
    """The requested edge budget is invalid (negative, or zero where unsupported)."""

    def __init__(self, budget: int) -> None:
        super().__init__(f"edge budget must be a non-negative integer, got {budget!r}")
        self.budget = budget


class EstimationError(ReproError):
    """Base class for reachability-estimation failures."""


class SampleSizeError(EstimationError, ValueError):
    """The number of Monte-Carlo samples requested is not a positive integer."""

    def __init__(self, n_samples: int) -> None:
        super().__init__(f"sample size must be a positive integer, got {n_samples!r}")
        self.n_samples = n_samples


class ExactEnumerationError(EstimationError, ValueError):
    """Exact possible-world enumeration was requested on a graph that is too large."""

    def __init__(self, n_edges: int, limit: int) -> None:
        super().__init__(
            f"exact enumeration over 2^{n_edges} possible worlds exceeds the limit of 2^{limit}"
        )
        self.n_edges = n_edges
        self.limit = limit


class ExecutorError(ReproError):
    """Base class for sharded-sampling executor failures."""


class WorkerCrashedError(ExecutorError, RuntimeError):
    """A worker process died mid-batch (OOM kill, SIGKILL, hard crash).

    The executor discards its broken pool when raising this, so the
    *next* ``map_shards`` call transparently rebuilds a fresh pool —
    retrying the same request is safe and yields the same bits (every
    shard carries its own pre-split seed).
    """

    def __init__(self, workers: int, detail: str = "") -> None:
        hint = f" ({detail})" if detail else ""
        super().__init__(
            f"a sampling worker process died mid-batch{hint}; this usually "
            f"means the OS killed it (out-of-memory) or it crashed hard. "
            f"The broken {workers}-worker pool has been discarded — retrying "
            f"the call rebuilds a fresh pool and produces identical results; "
            f"if it recurs, lower the worker count or shard size to reduce "
            f"per-worker memory"
        )
        self.workers = workers


class TransportTimeoutError(ReproError, TimeoutError):
    """A network read/connect deadline expired before the peer answered.

    Raised by the serving tier's :class:`~repro.server.ServerClient`
    (read/connect timeouts) and by the distributed transport
    (:mod:`repro.distributed.wire`) — one typed error for every
    "the peer went quiet" failure, so callers can retry or fail over
    without string-matching socket errors.
    """

    def __init__(self, operation: str, timeout: float) -> None:
        super().__init__(
            f"{operation} timed out after {timeout:.1f}s; the peer may be "
            f"dead, partitioned or overloaded — raise the timeout or check "
            f"the remote endpoint"
        )
        self.operation = operation
        self.timeout = timeout


class DistributedError(ExecutorError):
    """Base class for multi-node execution failures (:mod:`repro.distributed`)."""


class WireFormatError(DistributedError, ValueError):
    """A payload cannot be expressed in (or parsed from) the wire protocol.

    Raised when serializing a shard whose backend has no registry name or
    whose vertex ids are not JSON-representable, and when decoding a
    malformed or version-incompatible message.
    """


class NoWorkersError(DistributedError, RuntimeError):
    """No registered worker was available within the wait deadline.

    The coordinator holds pending shards while its fleet is empty (so a
    worker restart mid-run is survivable), but gives up after
    ``worker_wait_timeout`` seconds rather than hanging forever.
    """

    def __init__(self, address: str, waited: float) -> None:
        super().__init__(
            f"no sampling workers connected to the coordinator at {address} "
            f"within {waited:.1f}s; start workers with "
            f"'repro-flow worker --connect {address}' (or raise "
            f"worker_wait_timeout)"
        )
        self.address = address
        self.waited = waited


class ShardRetryExceededError(DistributedError, RuntimeError):
    """One shard failed on every worker it was assigned to.

    Retrying a shard is bit-safe (it carries its own pre-split seed), so
    exceeding the retry budget means a systematic failure — a poisoned
    input, a backend missing on every worker — not scheduling bad luck.
    """

    def __init__(self, shard_index: int, attempts: int, detail: str = "") -> None:
        hint = f": {detail}" if detail else ""
        super().__init__(
            f"shard {shard_index} failed {attempts} time(s) across "
            f"reassignments and exhausted its retry budget{hint}; the "
            f"failure is systematic (same shard, different workers) — "
            f"check the worker logs"
        )
        self.shard_index = shard_index
        self.attempts = attempts


class DatasetError(ReproError):
    """A named dataset is unknown or could not be generated/loaded."""


class ExperimentError(ReproError):
    """An experiment configuration is inconsistent or an experiment run failed."""

"""Randomness helpers.

Every stochastic routine in the library takes a ``seed`` argument that may
be ``None`` (non-deterministic), an integer, or an existing
:class:`numpy.random.Generator`.  :func:`ensure_rng` normalises all three
cases, and :func:`spawn_rngs` derives independent child generators for
parallel or repeated use without accidentally correlating streams.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

import numpy as np

#: Accepted forms of a random source.
SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None`` for OS-entropy seeding, an ``int`` for a reproducible
        stream, or an existing generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Uses :class:`numpy.random.SeedSequence` spawning so that the children
    do not overlap even when ``seed`` identifies a single stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def iter_rngs(seed: SeedLike) -> Iterator[np.random.Generator]:
    """Yield an endless stream of independent generators derived from ``seed``."""
    root = ensure_rng(seed)
    while True:
        yield np.random.default_rng(int(root.integers(0, 2**63 - 1)))


def derive_seed(seed: SeedLike, salt: int) -> Optional[int]:
    """Derive a reproducible integer seed from ``seed`` and an integer salt.

    Returns ``None`` when ``seed`` is ``None`` so that non-deterministic
    behaviour propagates.  Used by experiment configurations to give each
    repetition and each algorithm its own deterministic stream.
    """
    if seed is None:
        return None
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**31 - 1))
    return int((int(seed) * 1_000_003 + salt * 7_919) % (2**63 - 1))

"""Randomness helpers.

Every stochastic routine in the library takes a ``seed`` argument that may
be ``None`` (non-deterministic), an integer, or an existing
:class:`numpy.random.Generator`.  :func:`ensure_rng` normalises all three
cases, and :func:`spawn_rngs` derives independent child generators for
parallel or repeated use without accidentally correlating streams.

All child-stream derivation goes through :class:`numpy.random.SeedSequence`
spawning (:func:`seed_sequence` normalises every seed form into a
sequence first).  Spawning guarantees non-overlapping child streams by
construction; the earlier scheme of drawing raw 63-bit integers as child
seeds risked birthday collisions — two workers silently sampling the
same worlds — once enough children were spawned.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Union

import numpy as np

#: Accepted forms of a random source.
SeedLike = Union[None, int, np.random.Generator]

#: Entropy words drawn when a live generator is condensed into a seed
#: sequence (128 bits, matching SeedSequence's own pool word count).
_GENERATOR_ENTROPY_WORDS = 4


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None`` for OS-entropy seeding, an ``int`` for a reproducible
        stream, or an existing generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def seed_sequence(seed: SeedLike = None) -> np.random.SeedSequence:
    """Normalise any accepted seed form into a :class:`numpy.random.SeedSequence`.

    ``None`` and ``int`` seeds map to ``SeedSequence(seed)`` directly.  A
    live generator is condensed by drawing 128 bits of entropy from it —
    this advances the generator, so successive calls yield independent
    (but, for a seeded generator, fully reproducible) sequences; the
    generator's future output stays uncorrelated with every child
    spawned from the returned sequence.
    """
    if isinstance(seed, np.random.Generator):
        entropy = seed.integers(0, 2**32, size=_GENERATOR_ENTROPY_WORDS, dtype=np.uint32)
        return np.random.SeedSequence([int(word) for word in entropy])
    return np.random.SeedSequence(seed)


def split_seed_sequences(seed: SeedLike, count: int) -> List[np.random.SeedSequence]:
    """Split ``seed`` into ``count`` independent child seed sequences.

    The deterministic seed-splitting primitive of the parallel sampling
    executor: child ``i`` is the ``i``-th spawn of ``seed_sequence(seed)``,
    so the children depend only on the seed (and, for a generator, its
    state) — never on worker count or execution order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return seed_sequence(seed).spawn(count)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Uses :class:`numpy.random.SeedSequence` spawning for every seed form
    (a live generator is condensed via :func:`seed_sequence`), so the
    children do not overlap even when ``seed`` identifies a single
    stream and cannot collide by a birthday accident.
    """
    return [np.random.default_rng(child) for child in split_seed_sequences(seed, count)]


def iter_rngs(seed: SeedLike) -> Iterator[np.random.Generator]:
    """Yield an endless stream of independent generators derived from ``seed``.

    Children come from incremental :class:`numpy.random.SeedSequence`
    spawning, so the stream of generators is reproducible per seed and
    free of the birthday-collision risk of drawing raw integer seeds.
    """
    sequence = seed_sequence(seed)
    while True:
        yield np.random.default_rng(sequence.spawn(1)[0])


def derive_seed(seed: SeedLike, salt: int) -> Optional[int]:
    """Derive a reproducible integer seed from ``seed`` and an integer salt.

    Returns ``None`` when ``seed`` is ``None`` so that non-deterministic
    behaviour propagates.  Used by experiment configurations to give each
    repetition and each algorithm its own deterministic stream.
    """
    if seed is None:
        return None
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**31 - 1))
    return int((int(seed) * 1_000_003 + salt * 7_919) % (2**63 - 1))

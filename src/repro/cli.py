"""Command-line interface.

Five subcommands cover the common workflows::

    repro-flow generate --dataset erdos --size 500 --out graph.json
    repro-flow select   --graph graph.json --query 0 --budget 20 --algorithm FT+M
    repro-flow evaluate --graph graph.json --query 0 --edges edges.txt
    repro-flow batch    --graph graph.json --requests queries.jsonl --out results.jsonl
    repro-flow experiment --figure 7b

(``python -m repro.cli`` works identically when the console script is
not installed.)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.exceptions import ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import ALL_FIGURES, FigureResult
from repro.experiments.harness import evaluate_flow, pick_query_vertex
from repro.experiments.reporting import format_table, rows_to_csv
from repro.graph.io import read_json, write_json
from repro.graph.validation import graph_stats
from repro.parallel.executor import make_executor, set_default_executor
from repro.parallel.plan import set_default_shard_size
from repro.reachability.backends import BACKEND_NAMES, DEFAULT_BACKEND, set_default_backend
from repro.selection.registry import ALGORITHM_NAMES, make_selector, set_default_crn
from repro.service import BatchEvaluator, request_from_dict, result_to_dict
from repro.types import Edge


_WORKERS_HELP = (
    "worker processes for sharded possible-world sampling (default: "
    "unsharded single-process; results are identical for any worker "
    "count at a fixed seed and shard size)"
)
_SHARD_SIZE_HELP = "possible worlds per shard when --workers is set"


def _add_parallel_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=None, help=_WORKERS_HELP)
    parser.add_argument("--shard-size", type=int, default=None, help=_SHARD_SIZE_HELP)


def _validate_parallel_flags(args: argparse.Namespace) -> None:
    """Fail fast with a clean message instead of a deep-stack traceback."""
    if args.workers is not None and args.workers <= 0:
        raise SystemExit(f"--workers must be positive, got {args.workers}")
    if args.shard_size is not None and args.shard_size <= 0:
        raise SystemExit(f"--shard-size must be positive, got {args.shard_size}")


def build_parser() -> argparse.ArgumentParser:
    """Create the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-flow",
        description="Information flow maximization in probabilistic graphs (F-tree reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a named dataset and save it as JSON")
    generate.add_argument("--dataset", choices=DATASET_NAMES, required=True)
    generate.add_argument("--size", type=int, default=None, help="number of vertices")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", type=Path, required=True, help="output JSON path")

    select = subparsers.add_parser("select", help="run an edge-selection algorithm on a graph")
    select.add_argument("--graph", type=Path, required=True, help="graph JSON produced by 'generate'")
    select.add_argument("--query", default=None, help="query vertex id (default: highest degree)")
    select.add_argument("--budget", type=int, required=True)
    select.add_argument("--algorithm", choices=ALGORITHM_NAMES, default="FT+M")
    select.add_argument("--samples", type=int, default=500)
    select.add_argument("--seed", type=int, default=0)
    select.add_argument(
        "--backend", choices=BACKEND_NAMES, default=DEFAULT_BACKEND,
        help="possible-world sampling backend",
    )
    select.add_argument(
        "--resample-per-candidate", action="store_true",
        help="disable common-random-numbers scoring: redraw a fresh world batch "
             "per probed candidate (the paper's literal, slower reference mode)",
    )
    _add_parallel_flags(select)
    select.add_argument("--out", type=Path, default=None, help="write selected edges to this file")

    evaluate = subparsers.add_parser("evaluate", help="evaluate the expected flow of a selected edge set")
    evaluate.add_argument("--graph", type=Path, required=True)
    evaluate.add_argument("--query", default=None)
    evaluate.add_argument("--edges", type=Path, required=True, help="file with one 'u v' pair per line")
    evaluate.add_argument("--samples", type=int, default=1000)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument(
        "--backend", choices=BACKEND_NAMES, default=DEFAULT_BACKEND,
        help="possible-world sampling backend",
    )
    _add_parallel_flags(evaluate)

    batch = subparsers.add_parser(
        "batch",
        help="answer a JSONL batch of flow/reachability queries from shared sampled worlds",
    )
    batch.add_argument("--graph", type=Path, required=True, help="graph JSON produced by 'generate'")
    batch.add_argument(
        "--requests", type=Path, required=True,
        help="JSONL file with one query request per line (see repro.service.requests)",
    )
    batch.add_argument(
        "--out", type=Path, default=None,
        help="write JSONL results to this file (default: stdout)",
    )
    batch.add_argument("--samples", type=int, default=1000,
                       help="default sample count for requests that do not set one")
    batch.add_argument("--seed", type=int, default=0,
                       help="default seed for requests that do not set one")
    batch.add_argument(
        "--backend", choices=BACKEND_NAMES, default=DEFAULT_BACKEND,
        help="default possible-world sampling backend",
    )
    batch.add_argument(
        "--cache-size", type=int, default=64,
        help="world-cache entry bound (0 disables caching)",
    )
    batch.add_argument(
        "--warm", action="store_true",
        help="pre-sample every needed world batch into the cache before answering "
             "(the answering pass is then served entirely from cache)",
    )
    _add_parallel_flags(batch)

    experiment = subparsers.add_parser("experiment", help="reproduce one of the paper's figures")
    experiment.add_argument(
        "--figure", choices=sorted(ALL_FIGURES) + ["all"], required=True,
        help="figure id, or 'all' to regenerate every figure",
    )
    experiment.add_argument("--csv", action="store_true", help="emit CSV instead of a table")
    experiment.add_argument("--quick", action="store_true", help="use the tiny smoke-test configuration")
    experiment.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="override the possible-world sampling backend",
    )
    experiment.add_argument(
        "--resample-per-candidate", action="store_true",
        help="run every sampling-based selector in the per-candidate "
             "resampling reference mode instead of the CRN default",
    )
    _add_parallel_flags(experiment)
    experiment.add_argument(
        "--output-dir", type=Path, default=None,
        help="write one CSV per figure (plus SUMMARY.md) into this directory",
    )

    return parser


def _parse_vertex(raw: Optional[str], graph) -> object:
    """Interpret a vertex id given on the command line (int when possible)."""
    if raw is None:
        return pick_query_vertex(graph)
    if graph.has_vertex(raw):
        return raw
    try:
        candidate = int(raw)
    except ValueError:
        candidate = raw
    if not graph.has_vertex(candidate):
        raise SystemExit(f"query vertex {raw!r} does not exist in the graph")
    return candidate


def _command_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, n_vertices=args.size, seed=args.seed)
    write_json(graph, args.out)
    stats = graph_stats(graph)
    print(f"wrote {args.out}: {stats.n_vertices} vertices, {stats.n_edges} edges")
    return 0


def _command_select(args: argparse.Namespace) -> int:
    _validate_parallel_flags(args)
    graph = read_json(args.graph)
    query = _parse_vertex(args.query, graph)
    # build the executor once here (instead of passing the raw worker
    # count down) so one pool serves the whole selection and its worker
    # processes are released even when the selector raises
    executor = make_executor(args.workers)
    try:
        selector = make_selector(
            args.algorithm,
            n_samples=args.samples,
            seed=args.seed,
            backend=args.backend,
            crn=not args.resample_per_candidate,
            executor=executor,
            shard_size=args.shard_size,
        )
        result = selector.select(graph, query, args.budget)
    finally:
        if executor is not None:
            executor.close()
    print(f"algorithm      : {result.algorithm}")
    print(f"query vertex   : {query}")
    print(f"backend        : {args.backend}")
    print(f"sampling mode  : {'resample-per-candidate' if args.resample_per_candidate else 'crn'}")
    workers = "unsharded" if args.workers is None else str(args.workers)
    print(f"workers        : {workers}")
    print(f"edges selected : {result.n_selected} / budget {args.budget}")
    print(f"expected flow  : {result.expected_flow:.4f}")
    print(f"runtime        : {result.elapsed_seconds:.3f}s")
    if args.out is not None:
        lines = [f"{edge.u} {edge.v}" for edge in result.selected_edges]
        args.out.write_text("\n".join(lines) + "\n", encoding="utf-8")
        print(f"selected edges written to {args.out}")
    return 0


def _read_edge_file(path: Path, graph) -> List[Edge]:
    edges: List[Edge] = []
    for line_number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise SystemExit(f"{path}:{line_number}: malformed edge line {line!r}")
        u, v = parts[0], parts[1]

        def resolve(token: str) -> object:
            if graph.has_vertex(token):
                return token
            try:
                as_int = int(token)
            except ValueError:
                return token
            return as_int if graph.has_vertex(as_int) else token

        edges.append(Edge(resolve(u), resolve(v)))
    return edges


def _command_evaluate(args: argparse.Namespace) -> int:
    _validate_parallel_flags(args)
    graph = read_json(args.graph)
    query = _parse_vertex(args.query, graph)
    edges = _read_edge_file(args.edges, graph)
    executor = make_executor(args.workers)
    try:
        flow = evaluate_flow(
            graph,
            edges,
            query,
            n_samples=args.samples,
            seed=args.seed,
            backend=args.backend,
            executor=executor,
            shard_size=args.shard_size,
        )
    finally:
        if executor is not None:
            executor.close()
    print(f"query vertex  : {query}")
    print(f"edges         : {len(edges)}")
    print(f"expected flow : {flow:.4f}")
    return 0


def _read_request_file(path: Path, graph, default_n_samples: int, default_seed: int):
    requests = []
    for line_number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            payload = json.loads(line)
            requests.append(
                request_from_dict(
                    payload,
                    graph=graph,
                    default_n_samples=default_n_samples,
                    default_seed=default_seed,
                )
            )
        except (ValueError, TypeError) as error:
            raise SystemExit(f"{path}:{line_number}: bad request: {error}") from error
    if not requests:
        raise SystemExit(f"{path}: no requests found")
    return requests


def _command_batch(args: argparse.Namespace) -> int:
    _validate_parallel_flags(args)
    if args.samples <= 0:
        raise SystemExit(f"--samples must be positive, got {args.samples}")
    if args.cache_size < 0:
        raise SystemExit(f"--cache-size must be >= 0, got {args.cache_size}")
    graph = read_json(args.graph)
    requests = _read_request_file(args.requests, graph, args.samples, args.seed)
    with BatchEvaluator(
        backend=args.backend,
        executor=args.workers,
        shard_size=args.shard_size,
        cache=args.cache_size,
    ) as evaluator:
        try:
            if args.warm:
                evaluator.warm(graph, requests)
            results = evaluator.evaluate(graph, requests)
        except ReproError as error:
            raise SystemExit(f"batch evaluation failed: {error}") from error
        plan = evaluator.last_plan  # the plan evaluate() just built
        stats = evaluator.cache_stats()
    lines = [json.dumps(result_to_dict(result)) for result in results]
    if args.out is not None:
        args.out.write_text("\n".join(lines) + "\n", encoding="utf-8")
    else:
        for line in lines:
            print(line)
    summary = sys.stdout if args.out is not None else sys.stderr
    print(f"requests       : {len(requests)}", file=summary)
    print(f"world batches  : {len(plan.groups)} (amortization {plan.amortization:.1f}x)", file=summary)
    print(f"sampled/reused : {evaluator.batches_sampled}/{evaluator.batches_reused}", file=summary)
    if stats:
        print(
            f"cache          : {int(stats['entries'])} entries, "
            f"{int(stats['hits'])} hits / {int(stats['misses'])} misses "
            f"(hit rate {stats['hit_rate']:.0%})",
            file=summary,
        )
    if args.out is not None:
        print(f"results written to {args.out}", file=summary)
    return 0


def _figure_rows(result) -> List[dict]:
    if isinstance(result, FigureResult):
        return result.rows
    if isinstance(result, dict):
        rows: List[dict] = []
        for panel in result.values():
            rows.extend(panel.rows)
        return rows
    raise SystemExit(f"unexpected figure result type {type(result)!r}")


def _command_experiment(args: argparse.Namespace) -> int:
    # validate before touching the process-wide defaults, so a bad value
    # cannot leave a pool installed (or leak worker processes)
    _validate_parallel_flags(args)
    if args.workers is None:
        if args.shard_size is not None:
            print("note: --shard-size has no effect without --workers", file=sys.stderr)
        return _command_experiment_crn(args)
    # redirect every executor=None resolution, so per-figure default
    # configurations shard their sampling over one shared pool
    previous_executor = set_default_executor(args.workers)
    previous_shard = (
        set_default_shard_size(args.shard_size) if args.shard_size is not None else None
    )
    try:
        return _command_experiment_crn(args)
    finally:
        if previous_shard is not None:
            set_default_shard_size(previous_shard)
        closing = set_default_executor(previous_executor)
        if closing is not None:
            closing.close()


def _command_experiment_crn(args: argparse.Namespace) -> int:
    if args.resample_per_candidate:
        # redirect every crn=None resolution, so per-figure default
        # configurations honour the flag too
        previous_crn = set_default_crn(False)
        try:
            return _command_experiment_backend(args)
        finally:
            set_default_crn(previous_crn)
    return _command_experiment_backend(args)


def _command_experiment_backend(args: argparse.Namespace) -> int:
    if args.backend is not None:
        # redirect every backend=None resolution, so per-figure default
        # configurations (and the variance ablation) honour the flag too
        previous_backend = set_default_backend(args.backend)
        try:
            return _run_experiment(args)
        finally:
            set_default_backend(previous_backend)
    return _run_experiment(args)


def _run_experiment(args: argparse.Namespace) -> int:
    config = ExperimentConfig.quick() if args.quick else None
    if args.figure == "all" or args.output_dir is not None:
        from repro.experiments.runner import run_all_figures, summary_table

        figures = None if args.figure == "all" else [args.figure]
        artifacts = run_all_figures(
            output_dir=args.output_dir, figures=figures, config=config
        )
        print(summary_table(artifacts))
        if args.output_dir is not None:
            print(f"\nCSV files written to {args.output_dir}")
        return 0
    figure_fn = ALL_FIGURES[args.figure]
    if config is not None and args.figure not in ("variance",):
        result = figure_fn(config=config)
    else:
        result = figure_fn()
    rows = _figure_rows(result)
    if args.csv:
        print(rows_to_csv(rows))
    else:
        print(format_table(rows, title=f"Figure {args.figure}"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "select": _command_select,
        "evaluate": _command_evaluate,
        "batch": _command_batch,
        "experiment": _command_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

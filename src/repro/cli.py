"""Command-line interface.

Eight subcommands cover the common workflows::

    repro-flow generate --dataset erdos --size 500 --out graph.json
    repro-flow select   --graph graph.json --query 0 --budget 20 --algorithm FT+M
    repro-flow evaluate --graph graph.json --query 0 --edges edges.txt
    repro-flow batch    --graph graph.json --requests queries.jsonl --out results.jsonl
    repro-flow serve    --graph graph.json --port 7421
    repro-flow backends
    repro-flow telemetry --graph graph.json
    repro-flow experiment --figure 7b

(``python -m repro.cli`` works identically when the console script is
not installed.)

All four workload subcommands share one **runtime flag group**
(``--backend --workers --shard-size --resample-per-candidate
--cache-size``) that builds a single
:class:`~repro.runtime.RuntimeConfig`; each command then runs inside
``with repro.session(config):``, so every layer underneath — selectors,
estimators, the batch evaluator, the figure harness — resolves its knobs
from that one scoped configuration and owned pools/caches are released
on exit, even on error paths.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.exceptions import ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import ALL_FIGURES, FigureResult
from repro.experiments.harness import pick_query_vertex
from repro.experiments.reporting import format_table, rows_to_csv
from repro.graph.io import read_json, write_json
from repro.graph.validation import graph_stats
from repro.reachability.backends import BACKEND_NAMES
from repro.runtime import RuntimeConfig, current_config, session as runtime_session
from repro.selection.registry import ALGORITHM_NAMES
from repro.service import request_from_dict, result_to_dict
from repro.types import Edge


_WORKERS_HELP = (
    "worker processes for sharded possible-world sampling: a count, or "
    "'remote:HOST:PORT' to coordinate remote worker agents (start them "
    "with 'repro-flow worker --connect HOST:PORT'). Default: unsharded "
    "single-process; results are identical for any worker count or "
    "fleet at a fixed seed and shard size"
)
_SHARD_SIZE_HELP = "possible worlds per shard when --workers is set"


def _parse_workers_flag(value: str):
    """``--workers`` accepts a count or a ``remote:HOST:PORT`` spec."""
    from repro.parallel.executor import REMOTE_SPEC_PREFIX, parse_remote_spec

    if value.startswith(REMOTE_SPEC_PREFIX):
        try:
            parse_remote_spec(value)
        except ValueError as error:
            raise argparse.ArgumentTypeError(str(error)) from None
        return value
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a worker count or 'remote:HOST:PORT', got {value!r}"
        ) from None
    if count <= 0:
        raise argparse.ArgumentTypeError(f"--workers must be positive, got {count}")
    return count


def add_runtime_flags(
    parser: argparse.ArgumentParser, cache_size_default: Optional[int] = None
) -> None:
    """Attach the shared runtime flag group to a subcommand parser.

    One group — ``--backend --workers --shard-size
    --resample-per-candidate --cache-size`` — shared verbatim by
    ``select``, ``evaluate``, ``batch`` and ``experiment``; the parsed
    values build one :class:`~repro.runtime.RuntimeConfig` via
    :func:`runtime_config_from_args`.
    """
    group = parser.add_argument_group(
        "runtime", "scoped runtime configuration (one repro.session per command)"
    )
    group.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="possible-world sampling backend (default: library default)",
    )
    group.add_argument("--workers", type=_parse_workers_flag, default=None, help=_WORKERS_HELP)
    group.add_argument("--shard-size", type=int, default=None, help=_SHARD_SIZE_HELP)
    group.add_argument(
        "--resample-per-candidate", action="store_true",
        help="disable common-random-numbers scoring: redraw a fresh world batch "
             "per probed candidate (the paper's literal, slower reference mode)",
    )
    group.add_argument(
        "--cache-size", type=int, default=cache_size_default,
        help="world-cache entry bound for service-backed evaluation "
             "(0 disables caching; default: %(default)s)",
    )
    group.add_argument(
        "--trace", action="store_true",
        help="run with telemetry enabled and print the span tree and "
             "metrics registry to stderr when the command finishes",
    )
    group.add_argument(
        "--trace-out", type=Path, default=None,
        help="additionally write every finished span to this JSONL file "
             "(implies --trace)",
    )
    group.add_argument(
        "--profile", action="store_true",
        help="trace with resource profiling: every span additionally "
             "records CPU time, tracemalloc allocation deltas and GC "
             "collections, and a hot-span table is printed (implies --trace; "
             "results are bit-for-bit identical with or without)",
    )
    group.add_argument(
        "--flame-out", type=Path, default=None,
        help="write the profiled span trees in collapsed-stack format "
             "(one 'a;b;c weight' line, flamegraph.pl/speedscope input) "
             "to this file (implies --profile)",
    )


def _build_trace_telemetry(args: argparse.Namespace):
    """Build the ``--trace``/``--trace-out`` pipeline for a command.

    Returns ``(telemetry, memory_exporter)`` — both ``None`` when tracing
    was not requested.  The in-memory exporter is what
    :func:`_emit_trace_report` renders after the session closes.
    """
    trace = getattr(args, "trace", False)
    trace_out = getattr(args, "trace_out", None)
    profile = _profiling_requested(args)
    if not trace and trace_out is None and not profile:
        return None, None
    from repro.telemetry import InMemoryExporter, JSONLExporter, Telemetry

    memory = InMemoryExporter()
    exporters: List[object] = [memory]
    if trace_out is not None:
        exporters.append(JSONLExporter(trace_out))
    if profile:
        from repro.telemetry.profile import ProfilingTelemetry

        return ProfilingTelemetry(exporters=exporters), memory
    return Telemetry(exporters=exporters), memory


def _profiling_requested(args: argparse.Namespace) -> bool:
    """``--profile``, or ``--flame-out`` (which implies it)."""
    return bool(
        getattr(args, "profile", False) or getattr(args, "flame_out", None) is not None
    )


def _format_registry(snapshot: dict) -> List[str]:
    """Render a registry snapshot as aligned ``name value`` lines."""
    lines: List[str] = []
    for kind in ("counters", "gauges"):
        section = snapshot.get(kind, {})
        if section:
            lines.append(f"{kind}:")
            width = max(len(name) for name in section)
            for name, value in section.items():
                lines.append(f"  {name:<{width}}  {value}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        width = max(len(name) for name in histograms)
        for name, summary in histograms.items():
            lines.append(
                f"  {name:<{width}}  count={summary['count']} "
                f"sum={summary['sum']:.6g} min={summary['min']:.6g} "
                f"max={summary['max']:.6g}"
            )
    return lines


def _emit_trace_report(args: argparse.Namespace, stream=None) -> None:
    """Print the span tree(s) and registry of a traced command run."""
    telemetry, memory = getattr(args, "trace_state", (None, None))
    if telemetry is None:
        return
    from repro.telemetry import format_span_tree

    telemetry.close()  # flush the JSONL file before reporting
    out = stream if stream is not None else sys.stderr
    registry_lines = _format_registry(telemetry.snapshot())
    if not memory.spans and not registry_lines:
        # e.g. an F-tree selection whose components were all enumerated
        # exactly: nothing sampled, nothing to report
        print("trace: no instrumented work was recorded", file=out)
    for root in memory.spans:
        print(format_span_tree(root), file=out)
    for line in registry_lines:
        print(line, file=out)
    if getattr(telemetry, "profiling", False) and memory.spans:
        from repro.telemetry.profile import format_hot_spans

        print(file=out)
        print(format_hot_spans(memory.spans), file=out)
    _write_flame(args, memory, out)
    trace_out = getattr(args, "trace_out", None)
    if trace_out is not None:
        print(f"span trace written to {trace_out}", file=out)


def _write_flame(args: argparse.Namespace, memory, out) -> None:
    """Write the ``--flame-out`` collapsed-stack file, if requested."""
    flame_out = getattr(args, "flame_out", None)
    if flame_out is None or memory is None:
        return
    from repro.telemetry.profile import format_collapsed

    flame_out.write_text(format_collapsed(memory.spans) + "\n", encoding="utf-8")
    print(f"collapsed stacks written to {flame_out}", file=out)


def runtime_config_from_args(
    args: argparse.Namespace, n_samples: Optional[int] = None, seed=None
) -> RuntimeConfig:
    """Build the command's RuntimeConfig from the shared flag group.

    Validation errors surface as a clean ``SystemExit`` message instead
    of a deep-stack traceback.
    """
    # RuntimeConfig accepts workers=0 as "pin unsharded sampling", but on
    # the CLI unsharded is already the default — keep rejecting the
    # historically invalid flag value loudly
    if isinstance(args.workers, int) and args.workers <= 0:
        raise SystemExit(f"--workers must be positive, got {args.workers}")
    telemetry, memory = _build_trace_telemetry(args)
    args.trace_state = (telemetry, memory)
    try:
        return RuntimeConfig(
            backend=args.backend,
            crn=False if args.resample_per_candidate else None,
            workers=args.workers,
            shard_size=args.shard_size,
            n_samples=n_samples,
            seed=seed,
            world_cache=args.cache_size,
            telemetry=telemetry,
            profile=True if _profiling_requested(args) else None,
        )
    except (TypeError, ValueError) as error:
        raise SystemExit(str(error)) from error


def build_parser() -> argparse.ArgumentParser:
    """Create the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-flow",
        description="Information flow maximization in probabilistic graphs (F-tree reproduction)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="enable INFO-level logging (-vv for DEBUG); goes before the subcommand",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a named dataset and save it as JSON")
    generate.add_argument("--dataset", choices=DATASET_NAMES, required=True)
    generate.add_argument("--size", type=int, default=None, help="number of vertices")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", type=Path, required=True, help="output JSON path")

    select = subparsers.add_parser("select", help="run an edge-selection algorithm on a graph")
    select.add_argument("--graph", type=Path, required=True, help="graph JSON produced by 'generate'")
    select.add_argument("--query", default=None, help="query vertex id (default: highest degree)")
    select.add_argument("--budget", type=int, required=True)
    select.add_argument("--algorithm", choices=ALGORITHM_NAMES, default="FT+M")
    select.add_argument("--samples", type=int, default=500)
    select.add_argument("--seed", type=int, default=0)
    add_runtime_flags(select)
    select.add_argument("--out", type=Path, default=None, help="write selected edges to this file")

    evaluate = subparsers.add_parser("evaluate", help="evaluate the expected flow of a selected edge set")
    evaluate.add_argument("--graph", type=Path, required=True)
    evaluate.add_argument("--query", default=None)
    evaluate.add_argument("--edges", type=Path, required=True, help="file with one 'u v' pair per line")
    evaluate.add_argument("--samples", type=int, default=1000)
    evaluate.add_argument("--seed", type=int, default=0)
    add_runtime_flags(evaluate)

    batch = subparsers.add_parser(
        "batch",
        help="answer a JSONL batch of flow/reachability queries from shared sampled worlds",
    )
    batch.add_argument("--graph", type=Path, required=True, help="graph JSON produced by 'generate'")
    batch.add_argument(
        "--requests", type=Path, required=True,
        help="JSONL file with one query request per line (see repro.service.requests)",
    )
    batch.add_argument(
        "--out", type=Path, default=None,
        help="write JSONL results to this file (default: stdout)",
    )
    batch.add_argument("--samples", type=int, default=1000,
                       help="default sample count for requests that do not set one")
    batch.add_argument("--seed", type=int, default=0,
                       help="default seed for requests that do not set one")
    batch.add_argument(
        "--warm", action="store_true",
        help="pre-sample every needed world batch into the cache before answering "
             "(the answering pass is then served entirely from cache)",
    )
    add_runtime_flags(batch, cache_size_default=64)

    serve = subparsers.add_parser(
        "serve",
        help="stand a JSONL-over-TCP query server on a graph (coalescing, "
             "admission control, health/metrics)",
    )
    serve.add_argument("--graph", type=Path, required=True, help="graph JSON produced by 'generate'")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7421,
                       help="listen port (0 binds an ephemeral port; the bound "
                            "address is printed on startup)")
    serve.add_argument("--samples", type=int, default=1000,
                       help="default sample count for requests that do not set one")
    serve.add_argument("--seed", type=int, default=0,
                       help="default seed for requests that do not set one")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="most requests coalesced into one evaluation batch")
    serve.add_argument("--batch-window-ms", type=float, default=2.0,
                       help="how long the dispatcher waits for co-arriving requests")
    serve.add_argument("--max-inflight", type=int, default=256,
                       help="admission bound: requests beyond it are rejected "
                            "with an explicit over_capacity response")
    serve.add_argument("--warm", type=Path, default=None,
                       help="JSONL request file whose world batches are pre-sampled "
                            "into the cache before the server accepts connections")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="additionally expose a Prometheus /metrics scrape "
                            "endpoint on this HTTP port (0 binds an ephemeral "
                            "port; the bound address is printed on startup)")
    serve.add_argument("--metrics-host", default="127.0.0.1",
                       help="bind address of the /metrics endpoint")
    add_runtime_flags(serve, cache_size_default=64)

    subparsers.add_parser(
        "backends",
        help="list the registered sampling backends with availability "
             "(and why an optional backend is unavailable)",
    )

    worker = subparsers.add_parser(
        "worker",
        help="run a distributed sampling worker agent: register with a "
             "coordinator (--workers remote:HOST:PORT on another command, "
             "or a repro.RemoteExecutor) and evaluate shard tasks",
    )
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator endpoint to register with")
    worker.add_argument("--name", default=None,
                        help="worker name reported to the coordinator "
                             "(default: hostname:pid)")
    worker.add_argument("--connect-timeout", type=float, default=10.0,
                        metavar="SECONDS",
                        help="TCP connect + registration deadline (default: 10)")

    telemetry_cmd = subparsers.add_parser(
        "telemetry",
        help="run a query workload with tracing forced on and dump the "
             "span tree plus the metrics registry",
    )
    telemetry_cmd.add_argument("--graph", type=Path, required=True,
                               help="graph JSON produced by 'generate'")
    telemetry_cmd.add_argument(
        "--requests", type=Path, default=None,
        help="JSONL request file to run (default: a synthesized mixed "
             "workload over the graph)",
    )
    telemetry_cmd.add_argument("--samples", type=int, default=500,
                               help="default sample count for requests that do not set one")
    telemetry_cmd.add_argument("--seed", type=int, default=0,
                               help="default seed for requests that do not set one")
    telemetry_cmd.add_argument(
        "--json", action="store_true",
        help="emit one JSON document (spans + metrics) instead of text",
    )
    add_runtime_flags(telemetry_cmd, cache_size_default=64)

    experiment = subparsers.add_parser("experiment", help="reproduce one of the paper's figures")
    experiment.add_argument(
        "--figure", choices=sorted(ALL_FIGURES) + ["all"], required=True,
        help="figure id, or 'all' to regenerate every figure",
    )
    experiment.add_argument("--csv", action="store_true", help="emit CSV instead of a table")
    experiment.add_argument("--quick", action="store_true", help="use the tiny smoke-test configuration")
    add_runtime_flags(experiment)
    experiment.add_argument(
        "--output-dir", type=Path, default=None,
        help="write one CSV per figure (plus SUMMARY.md) into this directory",
    )

    return parser


def _parse_vertex(raw: Optional[str], graph) -> object:
    """Interpret a vertex id given on the command line (int when possible)."""
    if raw is None:
        return pick_query_vertex(graph)
    if graph.has_vertex(raw):
        return raw
    try:
        candidate = int(raw)
    except ValueError:
        candidate = raw
    if not graph.has_vertex(candidate):
        raise SystemExit(f"query vertex {raw!r} does not exist in the graph")
    return candidate


def _command_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, n_vertices=args.size, seed=args.seed)
    write_json(graph, args.out)
    stats = graph_stats(graph)
    print(f"wrote {args.out}: {stats.n_vertices} vertices, {stats.n_edges} edges")
    return 0


def _command_select(args: argparse.Namespace) -> int:
    # build (and validate) the runtime config before touching the graph
    # file, so a bad flag exits before any I/O
    config = runtime_config_from_args(args, n_samples=args.samples, seed=args.seed)
    graph = read_json(args.graph)
    query = _parse_vertex(args.query, graph)
    with runtime_session(config) as session:
        result = session.select(graph, query, args.budget, algorithm=args.algorithm)
        resolved = current_config()  # the knobs the run actually used
    print(f"algorithm      : {result.algorithm}")
    print(f"query vertex   : {query}")
    print(f"backend        : {resolved.backend}")
    print(f"sampling mode  : {'crn' if resolved.crn else 'resample-per-candidate'}")
    workers = resolved.as_dict()["workers"]  # executor specs reduced to a count
    print(f"workers        : {'unsharded' if workers in (None, 0) else workers}")
    print(f"edges selected : {result.n_selected} / budget {args.budget}")
    print(f"expected flow  : {result.expected_flow:.4f}")
    print(f"runtime        : {result.elapsed_seconds:.3f}s")
    if args.out is not None:
        lines = [f"{edge.u} {edge.v}" for edge in result.selected_edges]
        args.out.write_text("\n".join(lines) + "\n", encoding="utf-8")
        print(f"selected edges written to {args.out}")
    _emit_trace_report(args)
    return 0


def _read_edge_file(path: Path, graph) -> List[Edge]:
    edges: List[Edge] = []
    for line_number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise SystemExit(f"{path}:{line_number}: malformed edge line {line!r}")
        u, v = parts[0], parts[1]

        def resolve(token: str) -> object:
            if graph.has_vertex(token):
                return token
            try:
                as_int = int(token)
            except ValueError:
                return token
            return as_int if graph.has_vertex(as_int) else token

        edges.append(Edge(resolve(u), resolve(v)))
    return edges


def _command_evaluate(args: argparse.Namespace) -> int:
    config = runtime_config_from_args(args, seed=args.seed)
    graph = read_json(args.graph)
    query = _parse_vertex(args.query, graph)
    edges = _read_edge_file(args.edges, graph)
    with runtime_session(config) as session:
        flow = session.evaluate_flow(
            graph, edges, query, n_samples=args.samples, seed=args.seed
        )
    print(f"query vertex  : {query}")
    print(f"edges         : {len(edges)}")
    print(f"expected flow : {flow:.4f}")
    _emit_trace_report(args)
    return 0


def _read_request_file(path: Path, graph, default_n_samples: int, default_seed: int):
    requests = []
    for line_number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            payload = json.loads(line)
            requests.append(
                request_from_dict(
                    payload,
                    graph=graph,
                    default_n_samples=default_n_samples,
                    default_seed=default_seed,
                )
            )
        except (ValueError, TypeError) as error:
            raise SystemExit(f"{path}:{line_number}: bad request: {error}") from error
    if not requests:
        raise SystemExit(f"{path}: no requests found")
    return requests


def _command_batch(args: argparse.Namespace) -> int:
    config = runtime_config_from_args(args)
    if args.samples <= 0:
        raise SystemExit(f"--samples must be positive, got {args.samples}")
    graph = read_json(args.graph)
    requests = _read_request_file(args.requests, graph, args.samples, args.seed)
    with runtime_session(config) as session:
        try:
            results = session.batch(graph, requests, warm=args.warm)
        except ReproError as error:
            raise SystemExit(f"batch evaluation failed: {error}") from error
        evaluator = session.evaluator
        plan = evaluator.last_plan  # the plan batch() just built
        sampled, reused = evaluator.batches_sampled, evaluator.batches_reused
        stats = evaluator.cache_stats()
    lines = [json.dumps(result_to_dict(result)) for result in results]
    if args.out is not None:
        args.out.write_text("\n".join(lines) + "\n", encoding="utf-8")
    else:
        for line in lines:
            print(line)
    summary = sys.stdout if args.out is not None else sys.stderr
    print(f"requests       : {len(requests)}", file=summary)
    print(f"world batches  : {len(plan.groups)} (amortization {plan.amortization:.1f}x)", file=summary)
    print(f"sampled/reused : {sampled}/{reused}", file=summary)
    if stats:
        print(
            f"cache          : {int(stats['entries'])} entries, "
            f"{int(stats['hits'])} hits / {int(stats['misses'])} misses "
            f"(hit rate {stats['hit_rate']:.0%})",
            file=summary,
        )
    if args.out is not None:
        print(f"results written to {args.out}", file=summary)
    _emit_trace_report(args)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server import ServerConfig, load_warm_requests

    config = runtime_config_from_args(args)
    if args.samples <= 0:
        raise SystemExit(f"--samples must be positive, got {args.samples}")
    graph = read_json(args.graph)
    warm_requests = ()
    if args.warm is not None:
        try:
            warm_requests = tuple(
                load_warm_requests(args.warm, graph, args.samples, args.seed)
            )
        except ValueError as error:
            raise SystemExit(str(error)) from error
    try:
        server_config = ServerConfig(
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            batch_window_ms=args.batch_window_ms,
            max_inflight=args.max_inflight,
            default_n_samples=args.samples,
            default_seed=args.seed,
            runtime=config,
            warm_requests=warm_requests,
            metrics_port=args.metrics_port,
            metrics_host=args.metrics_host,
        )
    except (TypeError, ValueError) as error:
        raise SystemExit(str(error)) from error
    try:
        return asyncio.run(_serve_until_signalled(graph, server_config))
    except KeyboardInterrupt:  # pragma: no cover - interactive abort fallback
        return 0
    finally:
        _emit_trace_report(args)


async def _serve_until_signalled(graph, server_config) -> int:
    """Run a server until SIGINT/SIGTERM, then drain gracefully."""
    import asyncio
    import signal

    from repro.server import ReproServer

    server = ReproServer(graph, server_config)
    await server.start()
    host, port = server.address
    # machine-readable startup line: scripts launching `serve --port 0`
    # parse the ephemeral port from here (hence the explicit flush)
    print(f"repro-flow serving {graph.name or 'graph'} on {host}:{port}", flush=True)
    if server_config.metrics_port is not None:
        metrics_host, metrics_port = server.metrics_address
        print(
            f"repro-flow metrics on http://{metrics_host}:{metrics_port}/metrics",
            flush=True,
        )
    if server_config.warm_requests:
        print(
            f"warmed {len(server_config.warm_requests)} requests into the cache",
            file=sys.stderr,
        )
    loop = asyncio.get_running_loop()
    stop_event = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop_event.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-unix
            pass
    try:
        await stop_event.wait()
    finally:
        print("draining in-flight requests ...", file=sys.stderr)
        await server.stop()
        snapshot = server.metrics.snapshot()
        requests = snapshot["requests"]
        print(
            f"served {requests['answered']} requests "
            f"({requests['failed']} failed, {sum(requests['rejected'].values())} rejected)",
            file=sys.stderr,
        )
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    """Delegate to the worker agent's own entry point (shared argv shape)."""
    from repro.distributed.worker import main as worker_main

    argv = ["--connect", args.connect, "--connect-timeout", str(args.connect_timeout)]
    if args.name is not None:
        argv += ["--name", args.name]
    return worker_main(argv)


def _figure_rows(result) -> List[dict]:
    if isinstance(result, FigureResult):
        return result.rows
    if isinstance(result, dict):
        rows: List[dict] = []
        for panel in result.values():
            rows.extend(panel.rows)
        return rows
    raise SystemExit(f"unexpected figure result type {type(result)!r}")


def _command_backends(args: argparse.Namespace) -> int:
    from repro.reachability.backends import backend_availability, get_default_backend

    default = get_default_backend()
    for name, reason in backend_availability().items():
        if reason is None:
            status = "available"
            if name == default:
                status += " (default)"
        else:
            status = f"unavailable: {reason}"
        print(f"{name:<12} {status}")
    return 0


def _synthesize_requests(graph, n_samples: int, seed: int):
    """A small deterministic mixed workload for ``repro-flow telemetry``.

    One expected-flow query at the natural query vertex, pair queries
    toward a few other vertices (sharing that batch via the planner),
    and one component query — enough to light up every layer.
    """
    from repro.service.requests import QueryRequest

    source = pick_query_vertex(graph)
    others = [vertex for vertex in graph.vertices() if vertex != source][:3]
    requests = [
        QueryRequest(kind="expected_flow", source=source, n_samples=n_samples, seed=seed)
    ]
    for target in others:
        requests.append(
            QueryRequest(
                kind="pair_reachability", source=source, target=target,
                n_samples=n_samples, seed=seed,
            )
        )
    if others:
        members = {source, *others}
        component_edges = tuple(
            edge for edge in graph.edges() if edge.u in members and edge.v in members
        )
        if component_edges:
            requests.append(
                QueryRequest(
                    kind="component_reachability", source=source,
                    targets=tuple(others), edges=component_edges,
                    n_samples=n_samples, seed=seed,
                )
            )
    return requests


def _command_telemetry(args: argparse.Namespace) -> int:
    # tracing is the whole point of this subcommand — force it on so the
    # shared flag group needs no extra --trace
    args.trace = True
    config = runtime_config_from_args(args)
    if args.samples <= 0:
        raise SystemExit(f"--samples must be positive, got {args.samples}")
    graph = read_json(args.graph)
    if args.requests is not None:
        requests = _read_request_file(args.requests, graph, args.samples, args.seed)
    else:
        requests = _synthesize_requests(graph, args.samples, args.seed)
    telemetry, memory = args.trace_state
    with runtime_session(config) as session:
        # one root span over the whole workload, so the per-layer times
        # underneath it visibly sum to (approximately) the wall time
        with telemetry.span(
            "cli.telemetry", graph=graph.name or "graph", n_requests=len(requests)
        ):
            try:
                session.batch(graph, requests)
            except ReproError as error:
                raise SystemExit(f"telemetry workload failed: {error}") from error
    telemetry.close()
    profiled = getattr(telemetry, "profiling", False)
    if args.json:
        document = {
            "spans": [root.to_dict() for root in memory.spans],
            "metrics": telemetry.snapshot(),
        }
        if profiled:
            from repro.telemetry.profile import (
                format_collapsed,
                hot_spans,
                span_totals,
            )

            document["profile"] = {
                "span_totals": span_totals(memory.spans),
                "hot_spans": [
                    {"name": name, **entry} for name, entry in hot_spans(memory.spans)
                ],
                "collapsed": format_collapsed(memory.spans),
            }
        print(json.dumps(document, indent=2, default=repr))
        _write_flame(args, memory, sys.stderr)
        return 0
    from repro.telemetry import format_span_tree

    print(f"workload: {len(requests)} requests against {args.graph}")
    print()
    for root in memory.spans:
        print(format_span_tree(root))
    print()
    for line in _format_registry(telemetry.snapshot()):
        print(line)
    if profiled and memory.spans:
        from repro.telemetry.profile import format_hot_spans

        print()
        print(format_hot_spans(memory.spans))
    _write_flame(args, memory, sys.stdout)
    trace_out = getattr(args, "trace_out", None)
    if trace_out is not None:
        print(f"span trace written to {trace_out}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    # validate before opening the session, so a bad value cannot build
    # (or leak) a worker pool
    config = runtime_config_from_args(args)
    if args.workers is None and args.shard_size is not None:
        print("note: --shard-size has no effect without --workers", file=sys.stderr)
    # one session for the whole experiment: every per-figure default
    # configuration resolves backend/crn/executor/shard-size from it, and
    # an owned pool is released on exit even when a figure raises
    with runtime_session(config):
        status = _run_experiment(args)
    _emit_trace_report(args)
    return status


def _run_experiment(args: argparse.Namespace) -> int:
    config = ExperimentConfig.quick() if args.quick else None
    if args.figure == "all" or args.output_dir is not None:
        from repro.experiments.runner import run_all_figures, summary_table

        figures = None if args.figure == "all" else [args.figure]
        artifacts = run_all_figures(
            output_dir=args.output_dir, figures=figures, config=config
        )
        print(summary_table(artifacts))
        if args.output_dir is not None:
            print(f"\nCSV files written to {args.output_dir}")
        return 0
    figure_fn = ALL_FIGURES[args.figure]
    if config is not None and args.figure not in ("variance",):
        result = figure_fn(config=config)
    else:
        result = figure_fn()
    rows = _figure_rows(result)
    if args.csv:
        print(rows_to_csv(rows))
    else:
        print(format_table(rows, title=f"Figure {args.figure}"))
    return 0


def _configure_logging(verbosity: int) -> None:
    """Wire ``-v``/``-vv`` to stdlib logging for the repro tree."""
    if verbosity <= 0:
        return
    level = logging.INFO if verbosity == 1 else logging.DEBUG
    logging.basicConfig(
        level=level,
        stream=sys.stderr,
        format="%(levelname)s %(name)s: %(message)s",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.verbose)
    handlers = {
        "generate": _command_generate,
        "select": _command_select,
        "evaluate": _command_evaluate,
        "batch": _command_batch,
        "serve": _command_serve,
        "backends": _command_backends,
        "worker": _command_worker,
        "telemetry": _command_telemetry,
        "experiment": _command_experiment,
    }
    try:
        return handlers[args.command](args)
    finally:
        # --trace-out must never lose its file handle: when a workload
        # subcommand raises (bad batch, SystemExit, ...), the JSONL
        # exporter is flushed and closed here — Telemetry.close() is
        # idempotent, so the success paths' own close is unaffected
        telemetry, _memory = getattr(args, "trace_state", (None, None))
        if telemetry is not None:
            telemetry.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

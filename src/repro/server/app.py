"""The asyncio serving tier: coalescing, admission control, sessions.

:class:`ReproServer` stands a long-lived JSONL-over-TCP endpoint (plain
``asyncio.start_server``, stdlib only) on top of the batched evaluation
service.  The moving parts, in request order:

1. **Admission** — each line is parsed and validated on the event loop
   (exactly the :func:`repro.service.validate_request` rules), then
   either *rejected immediately* with an explicit error response — the
   server is draining, or the in-flight bound
   (:attr:`ServerConfig.max_inflight`) is reached — or enqueued.
   Rejection is always a response, never a hang: backpressure is part
   of the protocol (see :mod:`repro.server.protocol`).
2. **Coalescing** — a single dispatcher task drains the queue into
   batches: everything already waiting is taken at once, then the
   window (:attr:`ServerConfig.batch_window_ms`) is waited out for
   co-arriving requests, up to :attr:`ServerConfig.max_batch`.
   Concurrently arriving requests from *different connections* thereby
   land in one :class:`~repro.service.evaluator.BatchEvaluator` call,
   where the :class:`~repro.service.planner.QueryPlanner` collapses
   them onto shared world batches — the whole point of the tier.
3. **Evaluation** — batches run on one dedicated worker thread (the
   event loop stays responsive for health/metrics and admission), each
   tenant's slice through that tenant's contextvar-scoped
   :class:`repro.runtime.Session`.  All tenants share the server's
   executor and world cache; what a session scopes per tenant is the
   configuration (and any future per-tenant knobs), so one tenant's
   requests can never leak configuration into another's.
4. **Response** — per-request writer tasks send each answer as soon as
   its future resolves, tagged with the request's ``id`` (responses may
   interleave across a pipelining connection) and its measured latency.

The determinism contract survives the socket: an answer served over TCP
is bit-for-bit the answer a direct
:meth:`~repro.service.evaluator.BatchEvaluator.evaluate` call returns
for the same ``(seed, backend, shard plan)`` — coalescing changes *when*
worlds are sampled, never *which*.

Lifecycle: :meth:`ReproServer.start` optionally warms the world cache
(:attr:`ServerConfig.warm_requests`) before accepting connections;
:meth:`ReproServer.stop` drains gracefully — stop listening, reject new
work, finish every admitted request, flush every response, then release
sessions, pool and evaluation thread.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import logging
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ReproError
from repro.graph.uncertain_graph import UncertainGraph
from repro.parallel.plan import get_default_shard_size
from repro.runtime import RuntimeConfig, Session
from repro.server import protocol
from repro.server.metrics import ServerMetrics
from repro.telemetry.expo import MetricsHTTPServer, WindowRates, render_server_text
from repro.service.cache import get_default_world_cache
from repro.service.evaluator import validate_request
from repro.service.requests import (
    QueryRequest,
    request_from_dict,
    result_to_dict,
)
from repro.telemetry import get_default_telemetry

logger = logging.getLogger(__name__)

#: Tenant key of requests that do not name one.
DEFAULT_TENANT = ""


@dataclass(frozen=True)
class ServerConfig:
    """Everything a :class:`ReproServer` is configured by.

    Attributes
    ----------
    host, port:
        Listen address; port ``0`` binds an ephemeral port (the bound
        address is :attr:`ReproServer.address` after ``start``).
    max_batch:
        Coalescing bound: at most this many queued requests are
        dispatched as one evaluation batch.
    batch_window_ms:
        Coalescing window: after the first request of a batch arrives,
        how long the dispatcher waits for co-arriving requests before
        dispatching (``0`` dispatches whatever is already queued).
    max_inflight:
        Admission bound on requests admitted but not yet answered
        (queued + evaluating); requests beyond it receive an explicit
        ``over_capacity`` rejection response immediately.
    default_n_samples, default_seed:
        Fallbacks for requests that do not pin their own.
    runtime:
        The :class:`~repro.runtime.RuntimeConfig` every tenant session
        derives from (backend, workers, shard size, world-cache spec).
    warm_requests:
        Requests whose world batches are pre-sampled into the cache
        before the server starts accepting connections.
    metrics_port:
        When not ``None``, :meth:`ReproServer.start` additionally stands
        up a ``/metrics`` HTTP scrape endpoint
        (:class:`repro.telemetry.expo.MetricsHTTPServer`) on
        ``(metrics_host, metrics_port)``; port ``0`` binds an ephemeral
        port (read :attr:`ReproServer.metrics_address`).
    metrics_host:
        Bind address of the scrape endpoint.
    rate_interval_s:
        Period of the windowed-rate task (qps, cache hit-rate,
        rejection-rate from snapshot deltas); ``0`` disables it.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch: int = 64
    batch_window_ms: float = 2.0
    max_inflight: int = 256
    default_n_samples: int = 1000
    default_seed: int = 0
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    warm_requests: Tuple[QueryRequest, ...] = ()
    metrics_port: Optional[int] = None
    metrics_host: str = "127.0.0.1"
    rate_interval_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch!r}")
        if self.batch_window_ms < 0:
            raise ValueError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms!r}"
            )
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight!r}")
        if self.default_n_samples <= 0:
            raise ValueError(
                f"default_n_samples must be positive, got {self.default_n_samples!r}"
            )
        if not isinstance(self.runtime, RuntimeConfig):
            raise TypeError(f"runtime must be a RuntimeConfig, got {self.runtime!r}")
        if self.metrics_port is not None and not (0 <= self.metrics_port <= 65535):
            raise ValueError(
                f"metrics_port must be a port number, got {self.metrics_port!r}"
            )
        if self.rate_interval_s < 0:
            raise ValueError(
                f"rate_interval_s must be >= 0, got {self.rate_interval_s!r}"
            )
        object.__setattr__(self, "warm_requests", tuple(self.warm_requests))


class _Pending:
    """One admitted query request travelling through the coalescing queue."""

    __slots__ = ("request_id", "tenant", "request", "future", "enqueued_at")

    def __init__(self, request_id, tenant, request, future, enqueued_at):
        self.request_id = request_id
        self.tenant = tenant
        self.request = request
        self.future = future
        self.enqueued_at = enqueued_at


class ReproServer:
    """A JSONL-over-TCP query server over one uncertain graph.

    Parameters
    ----------
    graph:
        The graph every query runs against.
    config:
        A :class:`ServerConfig`; keyword ``overrides`` are applied on
        top (``ReproServer(graph, port=7421, max_batch=32)``).
    """

    def __init__(
        self,
        graph: UncertainGraph,
        config: Optional[ServerConfig] = None,
        **overrides,
    ) -> None:
        base = config if config is not None else ServerConfig()
        if overrides:
            import dataclasses

            base = dataclasses.replace(base, **overrides)
        self.graph = graph
        self.config = base
        self._root = Session(base.runtime)
        # the pipeline is resolved once, at construction: the session's
        # (owned/shared/pinned-off) pipeline when the runtime names one,
        # else whatever is ambient *now* — the server outlives request
        # contexts, so late resolution would be a per-request surprise
        session_telemetry = self._root.telemetry
        self.telemetry = (
            session_telemetry if session_telemetry is not None else get_default_telemetry()
        )
        self.metrics = ServerMetrics(telemetry=self.telemetry)
        self._window_rates = WindowRates()
        self._metrics_http: Optional[MetricsHTTPServer] = None
        self._rates_task: Optional[asyncio.Task] = None
        self._sessions: Dict[str, Session] = {DEFAULT_TENANT: self._root}
        self._queue: "asyncio.Queue[_Pending]" = asyncio.Queue()
        self._inflight = 0
        self._draining = False
        self._started = False
        self._stopped = False
        self._started_at: Optional[float] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._response_tasks: set = set()
        self._writers: set = set()
        self._eval_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-server-eval"
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The actually bound ``(host, port)`` (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> "ReproServer":
        """Warm the cache, start the dispatcher, begin accepting connections."""
        if self._started:
            raise RuntimeError("server is already started")
        self._started = True
        loop = asyncio.get_running_loop()
        if self.config.warm_requests:
            requests = list(self.config.warm_requests)
            await loop.run_in_executor(
                self._eval_pool, self._root.warm, self.graph, requests
            )
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-server-dispatch"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self._started_at = time.monotonic()
        if self.config.metrics_port is not None:
            self._metrics_http = MetricsHTTPServer(
                self.metrics_text,
                host=self.config.metrics_host,
                port=self.config.metrics_port,
            ).start()
        if self.config.rate_interval_s > 0:
            # seed the rate baseline now so the first tick has a window
            self._update_rates()
            self._rates_task = asyncio.create_task(
                self._rates_loop(), name="repro-server-rates"
            )
        return self

    async def serve_forever(self) -> None:
        """Serve until cancelled (then drain gracefully)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    async def stop(self) -> None:
        """Graceful drain: finish admitted work, flush responses, release.

        New requests are rejected with ``shutting_down`` the moment the
        drain begins; every request admitted before it completes and its
        response is written before connections close.  Idempotent.
        """
        if self._stopped:
            return
        self._stopped = True
        self._draining = True
        if self._metrics_http is not None:
            self._metrics_http.stop()
            self._metrics_http = None
        if self._rates_task is not None:
            self._rates_task.cancel()
            await asyncio.gather(self._rates_task, return_exceptions=True)
            self._rates_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # finish everything already admitted (the dispatcher marks each
        # queue item done only after its futures are resolved) ...
        await self._queue.join()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            await asyncio.gather(self._dispatcher, return_exceptions=True)
        # ... and flush every response before tearing connections down
        if self._response_tasks:
            await asyncio.gather(*list(self._response_tasks), return_exceptions=True)
        for writer in list(self._writers):
            writer.close()
        for writer in list(self._writers):
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - client raced us
                pass
        self._writers.clear()
        self._eval_pool.shutdown(wait=True)
        for session in list(self._sessions.values()):
            if session is not self._root:
                session.close()
        self._root.close()

    # ------------------------------------------------------------------
    # per-tenant sessions
    # ------------------------------------------------------------------
    def _tenant_runtime(self) -> RuntimeConfig:
        """The runtime a tenant session derives from: the server's config
        with owned resources replaced by the *resolved shared instances*,
        so every tenant shares one pool and one world cache."""
        runtime = self.config.runtime
        executor = self._root.executor
        if executor is not None:
            runtime = runtime.replace(workers=executor)
        cache = self._root.world_cache
        if cache is not None:
            runtime = runtime.replace(world_cache=cache)
        if self.telemetry.enabled:
            # tenants emit into the server's pipeline, not a private one
            runtime = runtime.replace(telemetry=self.telemetry)
        return runtime

    def _session_for(self, tenant: str) -> Session:
        session = self._sessions.get(tenant)
        if session is None:
            session = Session(self._tenant_runtime())
            self._sessions[tenant] = session
        return session

    @property
    def tenants(self) -> List[str]:
        """Tenants that have a live session (the default tenant is ``""``)."""
        return sorted(self._sessions)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _cache_stats(self) -> Dict[str, float]:
        cache = self._root.world_cache
        if cache is None and self.config.runtime.world_cache is None:
            cache = get_default_world_cache()
        return {} if cache is None else cache.stats()

    def _executor_info(self) -> Dict[str, object]:
        executor = self._root.executor
        if executor is None:
            return {"workers": None, "shard_size": None, "sharded": False}
        shard_size = self.config.runtime.shard_size
        return {
            "workers": executor.workers,
            "shard_size": (
                shard_size if shard_size is not None else get_default_shard_size()
            ),
            "sharded": True,
        }

    def _health_payload(self) -> Dict[str, object]:
        return {
            "kind": protocol.KIND_HEALTH,
            "status": "draining" if self._draining else "ok",
            "graph": {
                "name": self.graph.name,
                "n_vertices": self.graph.n_vertices,
                "n_edges": self.graph.n_edges,
            },
            "uptime_s": (
                None
                if self._started_at is None
                else round(time.monotonic() - self._started_at, 3)
            ),
            "inflight": self._inflight,
            "tenants": len(self._sessions),
        }

    def _metrics_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"kind": protocol.KIND_METRICS}
        payload.update(self.metrics.snapshot())
        payload["cache"] = self._cache_stats()
        payload["executor"] = self._executor_info()
        payload["inflight"] = self._inflight
        payload["max_inflight"] = self.config.max_inflight
        payload["tenants"] = len(self._sessions)
        # the shared-registry view: engine/executor/cache/server counters
        # in one merged snapshot (None when the pipeline is disabled)
        payload["telemetry"] = (
            self.telemetry.snapshot() if self.telemetry.enabled else None
        )
        return payload

    def metrics_text(self) -> str:
        """The merged observability payload as Prometheus exposition text.

        Thread-safe (the scrape endpoint calls it from HTTP handler
        threads); both serving paths — the ``metrics_text`` control kind
        and the ``/metrics`` HTTP endpoint — render through here, so
        they always agree.
        """
        return render_server_text(self._metrics_payload())

    @property
    def metrics_address(self) -> Tuple[str, int]:
        """Bound ``(host, port)`` of the ``/metrics`` scrape endpoint."""
        if self._metrics_http is None:
            raise RuntimeError("metrics endpoint is not enabled/started")
        return self._metrics_http.address

    def _update_rates(self) -> None:
        self.metrics.set_rates(
            self._window_rates.update(time.monotonic(), self._metrics_payload())
        )

    async def _rates_loop(self) -> None:
        """Periodically fold lifetime totals into windowed rate gauges."""
        interval = self.config.rate_interval_s
        while True:
            await asyncio.sleep(interval)
            try:
                self._update_rates()
            except Exception:  # pragma: no cover - defensive
                logger.exception("windowed-rate update failed")

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _admit(self, raw_line: bytes) -> Union[Dict[str, object], _Pending]:
        """Parse, validate and admit one request line.

        Returns a response dict for anything answered inline (control
        kinds, malformed requests, rejections) or the enqueued
        :class:`_Pending` for an admitted query.
        """
        try:
            payload = protocol.decode_line(raw_line)
        except (ValueError, UnicodeDecodeError) as error:
            self.metrics.observe_bad_request()
            return protocol.error_response(
                None, protocol.ERR_BAD_REQUEST, f"malformed request line: {error}"
            )
        request_id = payload.pop("id", None)
        kind = payload.get("kind")
        if kind == protocol.KIND_HEALTH:
            self.metrics.observe_control()
            return protocol.ok_response(request_id, self._health_payload())
        if kind == protocol.KIND_METRICS:
            self.metrics.observe_control()
            return protocol.ok_response(request_id, self._metrics_payload())
        if kind == protocol.KIND_METRICS_TEXT:
            self.metrics.observe_control()
            return protocol.ok_response(
                request_id,
                {"kind": protocol.KIND_METRICS_TEXT, "text": self.metrics_text()},
            )
        tenant = payload.pop("tenant", DEFAULT_TENANT)
        if not isinstance(tenant, str):
            self.metrics.observe_bad_request()
            return protocol.error_response(
                request_id, protocol.ERR_BAD_REQUEST,
                f"tenant must be a string, got {tenant!r}",
            )
        try:
            request = request_from_dict(
                payload,
                graph=self.graph,
                default_n_samples=self.config.default_n_samples,
                default_seed=self.config.default_seed,
            )
            validate_request(self.graph, request)
        except (ValueError, TypeError, ReproError) as error:
            logger.debug("bad request %r: %s", request_id, error)
            self.metrics.observe_bad_request()
            return protocol.error_response(
                request_id, protocol.ERR_BAD_REQUEST, str(error)
            )
        # backpressure: both rejections are explicit responses — a client
        # must never hang because the server is busy or going away
        if self._draining:
            logger.warning("rejected request %r: server is draining", request_id)
            self.metrics.observe_rejected(protocol.ERR_SHUTTING_DOWN)
            return protocol.error_response(
                request_id, protocol.ERR_SHUTTING_DOWN,
                "server is draining and accepts no new work",
            )
        if self._inflight >= self.config.max_inflight:
            logger.warning(
                "rejected request %r: in-flight bound (%d) reached",
                request_id,
                self.config.max_inflight,
            )
            self.metrics.observe_rejected(protocol.ERR_OVER_CAPACITY)
            return protocol.error_response(
                request_id, protocol.ERR_OVER_CAPACITY,
                f"server is at its in-flight request bound "
                f"({self.config.max_inflight}); retry later",
            )
        loop = asyncio.get_running_loop()
        pending = _Pending(
            request_id=request_id,
            tenant=tenant,
            request=request,
            future=loop.create_future(),
            enqueued_at=loop.time(),
        )
        self._inflight += 1
        self.metrics.observe_admitted()
        self._queue.put_nowait(pending)
        return pending

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        connection_tasks: set = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                outcome = self._admit(line)
                if isinstance(outcome, dict):
                    await self._write(writer, write_lock, outcome)
                    continue
                task = asyncio.create_task(
                    self._respond(writer, write_lock, outcome)
                )
                connection_tasks.add(task)
                self._response_tasks.add(task)
                task.add_done_callback(connection_tasks.discard)
                task.add_done_callback(self._response_tasks.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-read; in-flight work still drains
        finally:
            # answers for a vanished client still resolve (decrementing
            # the in-flight count); only the final close is ours to do
            if connection_tasks:
                await asyncio.gather(*list(connection_tasks), return_exceptions=True)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _write(self, writer, write_lock: asyncio.Lock, response: dict) -> None:
        async with write_lock:
            writer.write(protocol.encode_line(response))
            await writer.drain()

    async def _respond(self, writer, write_lock: asyncio.Lock, pending: _Pending) -> None:
        """Wait for one answer, account for it, and write it out."""
        try:
            status, payload = await pending.future
        finally:
            self._inflight -= 1
        loop = asyncio.get_running_loop()
        latency = loop.time() - pending.enqueued_at
        if status == "ok":
            body = result_to_dict(payload)
            body["latency_ms"] = round(1000.0 * latency, 3)
            response = protocol.ok_response(pending.request_id, body)
            self.metrics.observe_answered(pending.request.kind, latency)
        else:
            error_type, message = payload
            response = protocol.error_response(pending.request_id, error_type, message)
            self.metrics.observe_failed()
        try:
            await self._write(writer, write_lock, response)
        except (ConnectionError, OSError, RuntimeError):
            pass  # client disconnected before its answer was ready

    # ------------------------------------------------------------------
    # coalescing dispatcher
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        window = self.config.batch_window_ms / 1000.0
        while True:
            batch = [await self._queue.get()]
            # take everything already waiting — requests that piled up
            # while the previous batch was evaluating coalesce for free
            while len(batch) < self.config.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            # then wait out the coalescing window for co-arrivals
            if window > 0 and len(batch) < self.config.max_batch:
                deadline = loop.time() + window
                while len(batch) < self.config.max_batch:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(self._queue.get(), remaining)
                        )
                    except asyncio.TimeoutError:
                        break
            try:
                await self._execute_batch(batch)
            finally:
                for _ in batch:
                    self._queue.task_done()

    async def _execute_batch(self, batch: Sequence[_Pending]) -> None:
        """Evaluate one coalesced batch, one slice per tenant."""
        self.metrics.observe_batch(len(batch))
        by_tenant: Dict[str, List[_Pending]] = {}
        for pending in batch:
            by_tenant.setdefault(pending.tenant, []).append(pending)
        loop = asyncio.get_running_loop()
        for tenant, members in by_tenant.items():
            session = self._session_for(tenant)
            requests = [pending.request for pending in members]
            try:
                results = await loop.run_in_executor(
                    self._eval_pool, session.batch, self.graph, requests
                )
            except ReproError as error:
                outcome = ("error", (protocol.ERR_EVALUATION, str(error)))
                for pending in members:
                    pending.future.set_result(outcome)
            except Exception as error:  # pragma: no cover - defensive
                outcome = ("error", (protocol.ERR_INTERNAL, repr(error)))
                for pending in members:
                    pending.future.set_result(outcome)
            else:
                for pending, result in zip(members, results):
                    pending.future.set_result(("ok", result))


async def serve(
    graph: UncertainGraph, config: Optional[ServerConfig] = None, **overrides
) -> ReproServer:
    """Build, start and return a server (the embedding entry point)::

        server = await serve(graph, port=0, max_batch=32)
        host, port = server.address
        ...
        await server.stop()
    """
    server = ReproServer(graph, config, **overrides)
    await server.start()
    return server


def load_warm_requests(
    path, graph, default_n_samples: int, default_seed: int
) -> List[QueryRequest]:
    """Read a JSONL request file into warm-up requests (used by the CLI)."""
    requests: List[QueryRequest] = []
    for line_number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            requests.append(
                request_from_dict(
                    json.loads(line),
                    graph=graph,
                    default_n_samples=default_n_samples,
                    default_seed=default_seed,
                )
            )
        except (ValueError, TypeError) as error:
            raise ValueError(f"{path}:{line_number}: bad warm-up request: {error}")
    return requests


__all__ = [
    "DEFAULT_TENANT",
    "ReproServer",
    "ServerConfig",
    "load_warm_requests",
    "serve",
]

"""Observability counters of the serving tier.

:class:`ServerMetrics` aggregates everything the ``metrics`` control
kind reports that the server itself owns — request outcomes, coalescing
effectiveness, and a fixed-bucket latency histogram from which the
percentile fields (p50/p95/p99) are interpolated via
:meth:`~repro.telemetry.registry.Histogram.quantile`.  The histogram
replaced the earlier bounded sliding window of raw latencies: constant
memory regardless of traffic, no per-snapshot sort, and the same
estimator the Prometheus exposition layer
(:mod:`repro.telemetry.expo`) serves, so a scrape and a ``metrics``
control response can never disagree about a percentile.  Cache and
executor statistics are *not* duplicated here; the server overlays
``WorldCache.stats()`` and the executor's worker/shard configuration
into the same snapshot at report time, so one ``metrics`` response is
the whole observability surface.

All mutators take one internal lock: counters are bumped from the event
loop *and* read from arbitrary threads (tests, embedding applications),
and a torn read would defeat the point of an observability surface —
the same reasoning as :attr:`repro.service.cache.WorldCache.hit_rate`.

When the server runs with a live :class:`repro.telemetry.Telemetry`
pipeline, every mutator additionally forwards into its shared
:class:`~repro.telemetry.registry.MetricsRegistry` under ``server.*``
names, so one registry snapshot spans engine, executor, caches *and*
the serving tier.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Optional

from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.registry import Histogram

#: Coalesced-batch-size histogram bounds (batches are small by design).
_BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


def percentile(sorted_values, q: float) -> Optional[float]:
    """Nearest-rank percentile of an ascending sequence (``None`` if empty).

    Retained as a standalone helper (benchmarks summarize raw latency
    lists with it); :class:`ServerMetrics` itself now interpolates
    percentiles from its histogram buckets.
    """
    if not sorted_values:
        return None
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class ServerMetrics:
    """Request, rejection, coalescing and latency counters.

    Parameters
    ----------
    telemetry:
        A :class:`repro.telemetry.Telemetry` pipeline to forward every
        counter into (``server.*`` registry names).  Defaults to the
        disabled singleton — forwarding then costs one attribute check
        per mutator.
    """

    def __init__(self, telemetry: Optional[Telemetry] = None) -> None:
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._lock = threading.Lock()
        #: query requests admitted to the coalescing queue
        self.admitted = 0
        #: successful query responses, total and by request kind
        self.answered = 0
        self.answered_by_kind: Dict[str, int] = {}
        #: error responses for *admitted* requests (evaluation failures)
        self.failed = 0
        #: explicit admission-control rejections, by error type
        self.rejected: Dict[str, int] = {}
        #: malformed / invalid requests turned away at parse time
        self.bad_requests = 0
        #: health/metrics control requests served
        self.control = 0
        #: coalescing: batches dispatched and the requests they carried
        self.batches = 0
        self.batched_requests = 0
        self.largest_batch = 0
        # private (never shared with a telemetry registry): percentiles
        # must work with telemetry disabled, and a shared instrument
        # could be reset out from under us
        self._latency_hist = Histogram("server.latency_seconds")
        #: windowed rates published by the server's periodic
        #: snapshot-delta task (:class:`repro.telemetry.expo.WindowRates`)
        self._rates: Optional[Dict[str, Optional[float]]] = None

    # ------------------------------------------------------------------
    # mutators
    # ------------------------------------------------------------------
    def observe_admitted(self) -> None:
        with self._lock:
            self.admitted += 1
        tel = self._telemetry
        if tel.enabled:
            tel.count("server.admitted")

    def observe_answered(self, kind: str, latency_seconds: float) -> None:
        with self._lock:
            self.answered += 1
            self.answered_by_kind[kind] = self.answered_by_kind.get(kind, 0) + 1
        self._latency_hist.observe(latency_seconds)
        tel = self._telemetry
        if tel.enabled:
            tel.count("server.answered")
            tel.observe("server.latency_seconds", latency_seconds)

    def observe_failed(self) -> None:
        with self._lock:
            self.failed += 1
        tel = self._telemetry
        if tel.enabled:
            tel.count("server.failed")

    def observe_rejected(self, error_type: str) -> None:
        with self._lock:
            self.rejected[error_type] = self.rejected.get(error_type, 0) + 1
        tel = self._telemetry
        if tel.enabled:
            tel.count("server.rejected")

    def observe_bad_request(self) -> None:
        with self._lock:
            self.bad_requests += 1
        tel = self._telemetry
        if tel.enabled:
            tel.count("server.bad_requests")

    def observe_control(self) -> None:
        with self._lock:
            self.control += 1
        tel = self._telemetry
        if tel.enabled:
            tel.count("server.control")

    def observe_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            self.largest_batch = max(self.largest_batch, size)
        tel = self._telemetry
        if tel.enabled:
            tel.count("server.batches")
            tel.count("server.batched_requests", size)
            tel.observe("server.batch_size", size, bounds=_BATCH_SIZE_BUCKETS)

    def set_rates(self, rates: Optional[Dict[str, Optional[float]]]) -> None:
        """Publish the latest windowed rates into the snapshot."""
        with self._lock:
            self._rates = dict(rates) if rates is not None else None

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """One consistent view of every counter (all numbers JSON-safe)."""
        hist = self._latency_hist.summary()
        with self._lock:
            batches = self.batches
            rates = dict(self._rates) if self._rates is not None else None
            snapshot: Dict[str, object] = {
                "requests": {
                    "admitted": self.admitted,
                    "answered": self.answered,
                    "answered_by_kind": dict(self.answered_by_kind),
                    "failed": self.failed,
                    "rejected": dict(self.rejected),
                    "bad_requests": self.bad_requests,
                    "control": self.control,
                },
                "coalescing": {
                    "batches": batches,
                    "batched_requests": self.batched_requests,
                    "largest_batch": self.largest_batch,
                    "mean_batch_size": (
                        self.batched_requests / batches if batches else None
                    ),
                },
            }
        count = hist["count"]
        mean = hist["mean"]
        latency: Dict[str, object] = {
            "count": count,
            "mean": None if mean is None else 1000.0 * float(mean),
        }
        for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            value = self._latency_hist.quantile(q)
            latency[name] = None if value is None else 1000.0 * value
        peak = hist["max"]
        latency["max"] = None if peak is None else 1000.0 * float(peak)
        snapshot["latency_ms"] = latency
        if rates is not None:
            snapshot["rates"] = rates
        return snapshot


__all__ = ["ServerMetrics", "percentile"]

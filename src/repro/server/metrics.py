"""Observability counters of the serving tier.

:class:`ServerMetrics` aggregates everything the ``metrics`` control
kind reports that the server itself owns — request outcomes, coalescing
effectiveness, and a bounded sliding window of per-request latencies
from which the percentile fields (p50/p95/p99) are computed.  Cache and
executor statistics are *not* duplicated here; the server overlays
``WorldCache.stats()`` and the executor's worker/shard configuration
into the same snapshot at report time, so one ``metrics`` response is
the whole observability surface.

All mutators take one internal lock: counters are bumped from the event
loop *and* read from arbitrary threads (tests, embedding applications),
and a torn read would defeat the point of an observability surface —
the same reasoning as :attr:`repro.service.cache.WorldCache.hit_rate`.

When the server runs with a live :class:`repro.telemetry.Telemetry`
pipeline, every mutator additionally forwards into its shared
:class:`~repro.telemetry.registry.MetricsRegistry` under ``server.*``
names, so one registry snapshot spans engine, executor, caches *and*
the serving tier; :meth:`ServerMetrics.snapshot` stays the
latency-percentile view it always was.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Dict, Optional

from repro.telemetry import NULL_TELEMETRY, Telemetry

#: Coalesced-batch-size histogram bounds (batches are small by design).
_BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


def percentile(sorted_values, q: float) -> Optional[float]:
    """Nearest-rank percentile of an ascending sequence (``None`` if empty)."""
    if not sorted_values:
        return None
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class ServerMetrics:
    """Request, rejection, coalescing and latency counters.

    Parameters
    ----------
    latency_window:
        Number of most-recent request latencies retained for the
        percentile fields.  Totals (counts, means) cover the server's
        whole lifetime; percentiles describe the window.
    telemetry:
        A :class:`repro.telemetry.Telemetry` pipeline to forward every
        counter into (``server.*`` registry names).  Defaults to the
        disabled singleton — forwarding then costs one attribute check
        per mutator.
    """

    def __init__(
        self,
        latency_window: int = 2048,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if latency_window <= 0:
            raise ValueError(f"latency_window must be positive, got {latency_window!r}")
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._lock = threading.Lock()
        #: query requests admitted to the coalescing queue
        self.admitted = 0
        #: successful query responses, total and by request kind
        self.answered = 0
        self.answered_by_kind: Dict[str, int] = {}
        #: error responses for *admitted* requests (evaluation failures)
        self.failed = 0
        #: explicit admission-control rejections, by error type
        self.rejected: Dict[str, int] = {}
        #: malformed / invalid requests turned away at parse time
        self.bad_requests = 0
        #: health/metrics control requests served
        self.control = 0
        #: coalescing: batches dispatched and the requests they carried
        self.batches = 0
        self.batched_requests = 0
        self.largest_batch = 0
        self._latencies: deque = deque(maxlen=latency_window)
        self._latency_total = 0.0
        self._latency_count = 0

    # ------------------------------------------------------------------
    # mutators
    # ------------------------------------------------------------------
    def observe_admitted(self) -> None:
        with self._lock:
            self.admitted += 1
        tel = self._telemetry
        if tel.enabled:
            tel.count("server.admitted")

    def observe_answered(self, kind: str, latency_seconds: float) -> None:
        with self._lock:
            self.answered += 1
            self.answered_by_kind[kind] = self.answered_by_kind.get(kind, 0) + 1
            self._latencies.append(latency_seconds)
            self._latency_total += latency_seconds
            self._latency_count += 1
        tel = self._telemetry
        if tel.enabled:
            tel.count("server.answered")
            tel.observe("server.latency_seconds", latency_seconds)

    def observe_failed(self) -> None:
        with self._lock:
            self.failed += 1
        tel = self._telemetry
        if tel.enabled:
            tel.count("server.failed")

    def observe_rejected(self, error_type: str) -> None:
        with self._lock:
            self.rejected[error_type] = self.rejected.get(error_type, 0) + 1
        tel = self._telemetry
        if tel.enabled:
            tel.count("server.rejected")

    def observe_bad_request(self) -> None:
        with self._lock:
            self.bad_requests += 1
        tel = self._telemetry
        if tel.enabled:
            tel.count("server.bad_requests")

    def observe_control(self) -> None:
        with self._lock:
            self.control += 1
        tel = self._telemetry
        if tel.enabled:
            tel.count("server.control")

    def observe_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            self.largest_batch = max(self.largest_batch, size)
        tel = self._telemetry
        if tel.enabled:
            tel.count("server.batches")
            tel.count("server.batched_requests", size)
            tel.observe("server.batch_size", size, bounds=_BATCH_SIZE_BUCKETS)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """One consistent view of every counter (all numbers JSON-safe)."""
        with self._lock:
            window = sorted(self._latencies)
            batches = self.batches
            snapshot: Dict[str, object] = {
                "requests": {
                    "admitted": self.admitted,
                    "answered": self.answered,
                    "answered_by_kind": dict(self.answered_by_kind),
                    "failed": self.failed,
                    "rejected": dict(self.rejected),
                    "bad_requests": self.bad_requests,
                    "control": self.control,
                },
                "coalescing": {
                    "batches": batches,
                    "batched_requests": self.batched_requests,
                    "largest_batch": self.largest_batch,
                    "mean_batch_size": (
                        self.batched_requests / batches if batches else None
                    ),
                },
                "latency_ms": {
                    "count": self._latency_count,
                    "window": len(window),
                    "mean": (
                        1000.0 * self._latency_total / self._latency_count
                        if self._latency_count
                        else None
                    ),
                },
            }
        latency: Dict[str, object] = snapshot["latency_ms"]  # type: ignore[assignment]
        for name, q in (("p50", 50.0), ("p95", 95.0), ("p99", 99.0)):
            value = percentile(window, q)
            latency[name] = None if value is None else 1000.0 * value
        peak = window[-1] if window else None
        latency["max"] = None if peak is None else 1000.0 * peak
        return snapshot


__all__ = ["ServerMetrics", "percentile"]

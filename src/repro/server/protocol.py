"""The serving tier's JSONL-over-TCP wire protocol.

One JSON object per ``\\n``-terminated line, in both directions.  A
request is the :mod:`repro.service.requests` JSONL object format plus
two transport fields::

    {"id": 17, "tenant": "team-a", "kind": "expected_flow",
     "query": 0, "n_samples": 500, "seed": 7}

``id`` (optional, any JSON value) is echoed verbatim on the response so
clients may pipeline requests on one connection — responses are **not**
guaranteed to arrive in request order.  ``tenant`` (optional string)
selects the per-tenant :class:`repro.runtime.Session` the request is
evaluated under; omitted means the server's default tenant.

Two *control* kinds bypass the coalescing queue and are answered inline
even when the server is saturated or draining:

* ``{"kind": "health"}`` → liveness plus the served graph's shape;
* ``{"kind": "metrics"}`` → the observability snapshot
  (request/latency counters, coalescing stats, ``WorldCache.stats()``,
  executor workers/shard size);
* ``{"kind": "metrics_text"}`` → the same snapshot rendered as
  Prometheus exposition text (the ``text`` response field) — byte-for-
  byte what the ``/metrics`` HTTP scrape endpoint serves.

Every response carries ``"ok"``.  Success::

    {"id": 17, "ok": true, "kind": "expected_flow", "query": 0,
     "expected_flow": 12.25, ..., "latency_ms": 3.1}

Failure — including the explicit admission-control rejections, which are
*responses*, never dropped connections or hangs::

    {"id": 17, "ok": false,
     "error": {"type": "over_capacity",
               "message": "server is at its in-flight request bound (256); retry"}}

Error types: :data:`ERR_BAD_REQUEST` (malformed JSON, unknown fields,
unknown vertices), :data:`ERR_OVER_CAPACITY` (admission control —
retry later), :data:`ERR_SHUTTING_DOWN` (the server is draining),
:data:`ERR_EVALUATION` (the engine rejected the admitted batch), and
:data:`ERR_INTERNAL` (unexpected server-side failure).
"""

from __future__ import annotations

import json
from typing import Dict, Optional

#: Control request kinds, answered inline on the event loop.
KIND_HEALTH = "health"
KIND_METRICS = "metrics"
KIND_METRICS_TEXT = "metrics_text"
CONTROL_KINDS = (KIND_HEALTH, KIND_METRICS, KIND_METRICS_TEXT)

#: Error ``type`` values a client can dispatch on.
ERR_BAD_REQUEST = "bad_request"
ERR_OVER_CAPACITY = "over_capacity"
ERR_SHUTTING_DOWN = "shutting_down"
ERR_EVALUATION = "evaluation_failed"
ERR_INTERNAL = "internal"

#: Rejection types that signal backpressure (retrying later can succeed).
BACKPRESSURE_ERRORS = (ERR_OVER_CAPACITY, ERR_SHUTTING_DOWN)


def encode_line(payload: Dict[str, object]) -> bytes:
    """Serialise one response/request object into its wire line."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, object]:
    """Parse one wire line into a JSON object (``ValueError`` on garbage)."""
    payload = json.loads(line.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError(f"protocol lines must be JSON objects, got {payload!r}")
    return payload


def ok_response(request_id: object, payload: Dict[str, object]) -> Dict[str, object]:
    """Build a success envelope around a result payload."""
    response: Dict[str, object] = {"id": request_id, "ok": True}
    response.update(payload)
    return response


def error_response(
    request_id: object, error_type: str, message: str
) -> Dict[str, object]:
    """Build a failure envelope (also used for admission rejections)."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": error_type, "message": message},
    }


def is_rejection(response: Dict[str, object]) -> bool:
    """True when a response is an explicit backpressure rejection."""
    if response.get("ok"):
        return False
    error = response.get("error")
    return isinstance(error, dict) and error.get("type") in BACKPRESSURE_ERRORS


def request_line(
    payload: Dict[str, object],
    request_id: object = None,
    tenant: Optional[str] = None,
) -> bytes:
    """Attach transport fields to a request object and encode it."""
    wire = dict(payload)
    if request_id is not None:
        wire["id"] = request_id
    if tenant is not None:
        wire["tenant"] = tenant
    return encode_line(wire)


__all__ = [
    "BACKPRESSURE_ERRORS",
    "CONTROL_KINDS",
    "ERR_BAD_REQUEST",
    "ERR_EVALUATION",
    "ERR_INTERNAL",
    "ERR_OVER_CAPACITY",
    "ERR_SHUTTING_DOWN",
    "KIND_HEALTH",
    "KIND_METRICS",
    "KIND_METRICS_TEXT",
    "decode_line",
    "encode_line",
    "error_response",
    "is_rejection",
    "ok_response",
    "request_line",
]

"""A small asyncio client for the serving tier's JSONL protocol.

:class:`ServerClient` speaks :mod:`repro.server.protocol` over one TCP
connection and correlates pipelined responses back to their requests by
``id``, so callers can fire many queries concurrently on a single
connection::

    client = await ServerClient.connect(host, port)
    responses = await asyncio.gather(
        *(client.query(request_to_dict(r)) for r in requests)
    )
    health = await client.health()
    await client.close()

It exists for the benchmark harness, the test suite, and as executable
documentation of the wire format; production callers on other stacks
need nothing beyond a line-oriented socket and a JSON codec.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Optional

from repro.server import protocol


class ServerClient:
    """One JSONL connection with id-based response correlation."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._waiting: Dict[object, asyncio.Future] = {}
        #: responses with no waiting request (unsolicited / ``id``-less
        #: errors, e.g. the reply to a malformed line) land here
        self.unmatched: "asyncio.Queue[dict]" = asyncio.Queue()
        self._pump = asyncio.create_task(self._pump_responses())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServerClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _pump_responses(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = protocol.decode_line(line)
                future = self._waiting.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
                else:
                    self.unmatched.put_nowait(response)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            for future in self._waiting.values():
                if not future.done():
                    future.set_exception(ConnectionError("server closed the connection"))
            self._waiting.clear()

    async def request(self, payload: dict, tenant: Optional[str] = None) -> dict:
        """Send one request object and await its correlated response."""
        request_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._waiting[request_id] = future
        self._writer.write(protocol.request_line(payload, request_id=request_id, tenant=tenant))
        await self._writer.drain()
        return await future

    # convenience wrappers -------------------------------------------------
    async def query(self, payload: dict, tenant: Optional[str] = None) -> dict:
        """Alias of :meth:`request` for query payloads (readability)."""
        return await self.request(payload, tenant=tenant)

    async def health(self) -> dict:
        return await self.request({"kind": protocol.KIND_HEALTH})

    async def metrics(self) -> dict:
        return await self.request({"kind": protocol.KIND_METRICS})

    async def send_raw(self, line: bytes) -> None:
        """Write raw bytes (for protocol-abuse tests); responses to raw
        lines surface on :attr:`unmatched`."""
        self._writer.write(line)
        await self._writer.drain()

    async def close(self) -> None:
        self._pump.cancel()
        await asyncio.gather(self._pump, return_exceptions=True)
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


__all__ = ["ServerClient"]

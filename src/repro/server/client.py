"""A small asyncio client for the serving tier's JSONL protocol.

:class:`ServerClient` speaks :mod:`repro.server.protocol` over one TCP
connection and correlates pipelined responses back to their requests by
``id``, so callers can fire many queries concurrently on a single
connection::

    client = await ServerClient.connect(host, port)
    responses = await asyncio.gather(
        *(client.query(request_to_dict(r)) for r in requests)
    )
    health = await client.health()
    await client.close()

A dead or wedged peer no longer hangs the caller forever: ``connect``
and every request accept a deadline (``connect_timeout`` /
``read_timeout``, overridable per call) and raise the typed
:class:`~repro.exceptions.TransportTimeoutError` when it expires —
``timeout=None`` keeps the historical wait-forever behaviour.

It exists for the benchmark harness, the test suite, and as executable
documentation of the wire format; production callers on other stacks
need nothing beyond a line-oriented socket and a JSON codec.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Optional

from repro.exceptions import TransportTimeoutError
from repro.server import protocol

#: Sentinel distinguishing "use the client default" from an explicit
#: ``timeout=None`` (wait forever) on per-request overrides.
_USE_DEFAULT = object()


class ServerClient:
    """One JSONL connection with id-based response correlation.

    Parameters
    ----------
    read_timeout:
        Default deadline in seconds for every awaited response;
        ``None`` waits forever (the pre-timeout behaviour).  On expiry
        the request's waiter is withdrawn and
        :class:`TransportTimeoutError` raised — a late response then
        lands on :attr:`unmatched` instead of leaking a future.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        read_timeout: Optional[float] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.read_timeout = read_timeout
        self._ids = itertools.count(1)
        self._waiting: Dict[object, asyncio.Future] = {}
        #: responses with no waiting request (unsolicited / ``id``-less
        #: errors, e.g. the reply to a malformed line) land here
        self.unmatched: "asyncio.Queue[dict]" = asyncio.Queue()
        self._pump = asyncio.create_task(self._pump_responses())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
    ) -> "ServerClient":
        """Open a connection (``TransportTimeoutError`` past the deadline)."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout=connect_timeout
            )
        except asyncio.TimeoutError as error:
            raise TransportTimeoutError(
                f"connecting to {host}:{port}", connect_timeout or 0.0
            ) from error
        return cls(reader, writer, read_timeout=read_timeout)

    async def _pump_responses(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = protocol.decode_line(line)
                future = self._waiting.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
                else:
                    self.unmatched.put_nowait(response)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            for future in self._waiting.values():
                if not future.done():
                    future.set_exception(ConnectionError("server closed the connection"))
            self._waiting.clear()

    async def request(
        self,
        payload: dict,
        tenant: Optional[str] = None,
        timeout: object = _USE_DEFAULT,
    ) -> dict:
        """Send one request object and await its correlated response.

        ``timeout`` overrides the client's :attr:`read_timeout` for this
        call; pass ``None`` explicitly to wait forever.
        """
        deadline = self.read_timeout if timeout is _USE_DEFAULT else timeout
        request_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._waiting[request_id] = future
        self._writer.write(protocol.request_line(payload, request_id=request_id, tenant=tenant))
        await self._writer.drain()
        if deadline is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout=deadline)
        except asyncio.TimeoutError as error:
            # withdraw the waiter so a late response cannot resolve a
            # future nobody awaits (it surfaces on `unmatched` instead)
            self._waiting.pop(request_id, None)
            raise TransportTimeoutError(
                f"waiting for the response to request {request_id}", deadline
            ) from error

    # convenience wrappers -------------------------------------------------
    async def query(
        self, payload: dict, tenant: Optional[str] = None, timeout: object = _USE_DEFAULT
    ) -> dict:
        """Alias of :meth:`request` for query payloads (readability)."""
        return await self.request(payload, tenant=tenant, timeout=timeout)

    async def health(self) -> dict:
        return await self.request({"kind": protocol.KIND_HEALTH})

    async def metrics(self) -> dict:
        return await self.request({"kind": protocol.KIND_METRICS})

    async def send_raw(self, line: bytes) -> None:
        """Write raw bytes (for protocol-abuse tests); responses to raw
        lines surface on :attr:`unmatched`."""
        self._writer.write(line)
        await self._writer.drain()

    async def close(self) -> None:
        self._pump.cancel()
        await asyncio.gather(self._pump, return_exceptions=True)
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


__all__ = ["ServerClient"]

"""Async serving tier: a JSONL-over-TCP front end for the batch service.

The estimators answer one query, the :mod:`repro.service` layer answers
one *batch* — this subpackage answers a *stream*: it stands a long-lived
asyncio TCP endpoint (stdlib ``asyncio.start_server``, no dependencies)
on top of :class:`~repro.service.evaluator.BatchEvaluator` so many
clients can share one warm process, one world cache, and one sampling
pool:

* :mod:`repro.server.protocol` — the line-oriented wire format:
  request/response envelopes, error types, and the ``health`` /
  ``metrics`` control kinds;
* :mod:`repro.server.app` — :class:`ReproServer` itself: per-tenant
  :class:`~repro.runtime.Session` resolution, the coalescing queue that
  folds concurrently-arriving requests into shared
  :class:`~repro.service.planner.QueryPlanner` groups, admission
  control with bounded in-flight work and explicit ``over_capacity``
  rejections, cache warm-up on startup, and graceful drain on shutdown;
* :mod:`repro.server.metrics` — :class:`ServerMetrics`, the
  request/latency/coalescing counters behind the ``metrics`` kind;
* :mod:`repro.server.client` — :class:`ServerClient`, a pipelining
  asyncio client used by the benchmark harness and tests.

The tier adds *no* semantics: every answer served over the socket is
bit-for-bit identical to a direct
:meth:`~repro.service.evaluator.BatchEvaluator.evaluate` call for the
same ``(seed, backend, shard plan)``.  Start one from the command
line with ``repro serve --graph graph.json`` or in-process via
:func:`repro.server.serve`.
"""

from repro.server.app import (
    DEFAULT_TENANT,
    ReproServer,
    ServerConfig,
    load_warm_requests,
    serve,
)
from repro.server.client import ServerClient
from repro.server.metrics import ServerMetrics, percentile
from repro.server.protocol import (
    BACKPRESSURE_ERRORS,
    CONTROL_KINDS,
    ERR_BAD_REQUEST,
    ERR_EVALUATION,
    ERR_INTERNAL,
    ERR_OVER_CAPACITY,
    ERR_SHUTTING_DOWN,
    KIND_HEALTH,
    KIND_METRICS,
    KIND_METRICS_TEXT,
    decode_line,
    encode_line,
    error_response,
    is_rejection,
    ok_response,
    request_line,
)

__all__ = [
    "BACKPRESSURE_ERRORS",
    "CONTROL_KINDS",
    "DEFAULT_TENANT",
    "ERR_BAD_REQUEST",
    "ERR_EVALUATION",
    "ERR_INTERNAL",
    "ERR_OVER_CAPACITY",
    "ERR_SHUTTING_DOWN",
    "KIND_HEALTH",
    "KIND_METRICS",
    "KIND_METRICS_TEXT",
    "ReproServer",
    "ServerClient",
    "ServerConfig",
    "ServerMetrics",
    "decode_line",
    "encode_line",
    "error_response",
    "is_rejection",
    "ok_response",
    "percentile",
    "request_line",
    "serve",
]

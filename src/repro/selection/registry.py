"""Factory for the paper's named algorithm variants.

The evaluation compares seven algorithms; :func:`make_selector` builds
any of them from its name so the experiment harness, the CLI and the
benchmarks share one source of truth for their configuration.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.parallel.executor import ExecutorLike
from repro.reachability.backends import BackendLike
from repro.rng import SeedLike
from repro.selection.base import EdgeSelector
from repro.selection.dijkstra_tree import DijkstraSelector
from repro.selection.ftree_greedy import FTreeGreedySelector
from repro.selection.greedy_naive import NaiveGreedySelector
from repro.selection.random_baseline import RandomSelector

#: The algorithm names of the paper's evaluation (plus the Random sanity baseline).
ALGORITHM_NAMES = (
    "Naive",
    "Dijkstra",
    "FT",
    "FT+M",
    "FT+M+CI",
    "FT+M+DS",
    "FT+M+CI+DS",
    "Random",
)

#: Initial process-wide default for common-random-numbers candidate
#: scoring (see :func:`set_default_crn` for runtime overrides).
DEFAULT_CRN = True

_default_crn = DEFAULT_CRN


def get_default_crn() -> bool:
    """Return the sampling mode every ``crn=None`` call resolves to."""
    return _default_crn


def set_default_crn(crn: bool) -> bool:
    """Override the process-wide default sampling mode; returns the previous one.

    Mirrors :func:`repro.reachability.backends.set_default_backend`: it
    lets entry points (e.g. the CLI's ``--resample-per-candidate`` flag)
    redirect every unspecified ``crn=None`` resolution — including code
    paths that build their own default configurations — without
    threading the choice through each call site.
    """
    global _default_crn
    previous = _default_crn
    _default_crn = bool(crn)
    return previous


def make_selector(
    name: str,
    n_samples: int = 1000,
    exact_threshold: int = 10,
    delay_base: float = 2.0,
    alpha: float = 0.01,
    seed: SeedLike = None,
    include_query: bool = False,
    backend: BackendLike = None,
    crn: Optional[bool] = None,
    executor: ExecutorLike = None,
    shard_size: Optional[int] = None,
) -> EdgeSelector:
    """Instantiate one of the paper's algorithms by name.

    Parameters
    ----------
    name:
        One of :data:`ALGORITHM_NAMES`.
    n_samples:
        Monte-Carlo sample size used by the sampling-based selectors.
    exact_threshold:
        Bi-connected components with at most this many uncertain edges
        are evaluated exactly by the FT variants.
    delay_base:
        The ``c`` parameter of the delayed-sampling heuristic.
    alpha:
        Significance level for confidence-interval pruning.
    seed:
        Random seed or generator.
    include_query:
        Whether the query vertex's own weight counts towards the flow.
    backend:
        Possible-world sampling backend used by the sampling-based
        selectors (see :data:`repro.reachability.backends.BACKEND_NAMES`).
    crn:
        Common-random-numbers candidate scoring for the sampling-based
        selectors: one shared batch of possible worlds per selection
        round instead of a fresh draw per candidate.  ``None`` (the
        default) defers to :func:`get_default_crn`; ``False`` restores
        the paper's literal per-candidate resampling reference mode.
    executor:
        Sharded-sampling executor for the sampling-based selectors (see
        :mod:`repro.parallel`): a worker count, an executor instance
        (pass one instance to share a process pool across selectors), or
        ``None`` for the process-wide default (normally unsharded).
    shard_size:
        Worlds per shard when an executor is active.
    """
    if crn is None:
        crn = get_default_crn()
    flags = _FT_FLAGS.get(name)
    if flags is not None:
        memoize, confidence, delayed = flags
        return FTreeGreedySelector(
            n_samples=n_samples,
            exact_threshold=exact_threshold,
            memoize=memoize,
            confidence=confidence,
            delayed=delayed,
            delay_base=delay_base,
            alpha=alpha,
            seed=seed,
            include_query=include_query,
            backend=backend,
            crn=crn,
            executor=executor,
            shard_size=shard_size,
        )
    if name == "Naive":
        return NaiveGreedySelector(
            n_samples=n_samples,
            seed=seed,
            include_query=include_query,
            backend=backend,
            crn=crn,
            executor=executor,
            shard_size=shard_size,
        )
    if name == "Dijkstra":
        return DijkstraSelector(include_query=include_query)
    if name == "Random":
        return RandomSelector(
            n_samples=n_samples,
            exact_threshold=exact_threshold,
            seed=seed,
            include_query=include_query,
            backend=backend,
            crn=crn,
            executor=executor,
            shard_size=shard_size,
        )
    raise ValueError(f"unknown algorithm {name!r}; expected one of {ALGORITHM_NAMES}")


#: Mapping of FT variant name to (memoize, confidence, delayed) flags.
_FT_FLAGS: Dict[str, tuple] = {
    "FT": (False, False, False),
    "FT+M": (True, False, False),
    "FT+M+CI": (True, True, False),
    "FT+M+DS": (True, False, True),
    "FT+M+CI+DS": (True, True, True),
}

"""Factory for the paper's named algorithm variants.

The evaluation compares seven algorithms; :func:`make_selector` builds
any of them from its name so the experiment harness, the CLI and the
benchmarks share one source of truth for their configuration.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro._runtime_state import (
    defaults as _runtime_defaults,
    resolve_field,
    warn_deprecated,
)
from repro.parallel.executor import ExecutorLike
from repro.reachability.backends import BackendLike
from repro.rng import SeedLike
from repro.selection.base import EdgeSelector
from repro.selection.dijkstra_tree import DijkstraSelector
from repro.selection.ftree_greedy import FTreeGreedySelector
from repro.selection.greedy_naive import NaiveGreedySelector
from repro.selection.random_baseline import RandomSelector

#: The algorithm names of the paper's evaluation (plus the Random sanity baseline).
ALGORITHM_NAMES = (
    "Naive",
    "Dijkstra",
    "FT",
    "FT+M",
    "FT+M+CI",
    "FT+M+DS",
    "FT+M+CI+DS",
    "Random",
)

#: Sampling mode used when nothing else pins one — neither an explicit
#: ``crn=`` argument, nor an active :func:`repro.session`, nor
#: ``repro.runtime.defaults.crn``.
DEFAULT_CRN = True


def get_default_crn() -> bool:
    """Return the sampling mode every ``crn=None`` call resolves to.

    Resolution order: the innermost active :func:`repro.session` (if it
    pins a mode) → ``repro.runtime.defaults.crn`` → :data:`DEFAULT_CRN`.
    """
    return resolve_field("crn", DEFAULT_CRN)


def set_default_crn(crn: bool) -> bool:
    """Deprecated shim over ``repro.runtime.defaults.crn``.

    Returns the previously resolved default, mirroring the legacy
    contract.  Prefer ``with repro.session(crn=...)`` for scoped
    configuration, or assign ``repro.runtime.defaults.crn`` directly.
    """
    warn_deprecated(
        "repro.selection.set_default_crn()",
        'use "with repro.session(crn=...)" for scoped configuration, '
        "or assign repro.runtime.defaults.crn for a process-wide default",
    )
    previous = _runtime_defaults.crn if _runtime_defaults.crn is not None else DEFAULT_CRN
    _runtime_defaults.crn = bool(crn)
    return previous


def make_selector(
    name: str,
    n_samples: int = 1000,
    exact_threshold: int = 10,
    delay_base: float = 2.0,
    alpha: float = 0.01,
    seed: SeedLike = None,
    include_query: bool = False,
    backend: BackendLike = None,
    crn: Optional[bool] = None,
    executor: ExecutorLike = None,
    shard_size: Optional[int] = None,
) -> EdgeSelector:
    """Instantiate one of the paper's algorithms by name.

    Parameters
    ----------
    name:
        One of :data:`ALGORITHM_NAMES`.
    n_samples:
        Monte-Carlo sample size used by the sampling-based selectors.
    exact_threshold:
        Bi-connected components with at most this many uncertain edges
        are evaluated exactly by the FT variants.
    delay_base:
        The ``c`` parameter of the delayed-sampling heuristic.
    alpha:
        Significance level for confidence-interval pruning.
    seed:
        Random seed or generator.
    include_query:
        Whether the query vertex's own weight counts towards the flow.
    backend:
        Possible-world sampling backend used by the sampling-based
        selectors (see :data:`repro.reachability.backends.BACKEND_NAMES`).
    crn:
        Common-random-numbers candidate scoring for the sampling-based
        selectors: one shared batch of possible worlds per selection
        round instead of a fresh draw per candidate.  ``None`` (the
        default) defers to :func:`get_default_crn`; ``False`` restores
        the paper's literal per-candidate resampling reference mode.
    executor:
        Sharded-sampling executor for the sampling-based selectors (see
        :mod:`repro.parallel`): a worker count, an executor instance
        (pass one instance to share a process pool across selectors), or
        ``None`` for the process-wide default (normally unsharded).
    shard_size:
        Worlds per shard when an executor is active.
    """
    if crn is None:
        crn = get_default_crn()
    flags = _FT_FLAGS.get(name)
    if flags is not None:
        memoize, confidence, delayed = flags
        return FTreeGreedySelector(
            n_samples=n_samples,
            exact_threshold=exact_threshold,
            memoize=memoize,
            confidence=confidence,
            delayed=delayed,
            delay_base=delay_base,
            alpha=alpha,
            seed=seed,
            include_query=include_query,
            backend=backend,
            crn=crn,
            executor=executor,
            shard_size=shard_size,
        )
    if name == "Naive":
        return NaiveGreedySelector(
            n_samples=n_samples,
            seed=seed,
            include_query=include_query,
            backend=backend,
            crn=crn,
            executor=executor,
            shard_size=shard_size,
        )
    if name == "Dijkstra":
        return DijkstraSelector(include_query=include_query)
    if name == "Random":
        return RandomSelector(
            n_samples=n_samples,
            exact_threshold=exact_threshold,
            seed=seed,
            include_query=include_query,
            backend=backend,
            crn=crn,
            executor=executor,
            shard_size=shard_size,
        )
    raise ValueError(f"unknown algorithm {name!r}; expected one of {ALGORITHM_NAMES}")


#: Mapping of FT variant name to (memoize, confidence, delayed) flags.
_FT_FLAGS: Dict[str, tuple] = {
    "FT": (False, False, False),
    "FT+M": (True, False, False),
    "FT+M+CI": (True, True, False),
    "FT+M+DS": (True, False, True),
    "FT+M+CI+DS": (True, True, True),
}

"""Lazy greedy (CELF-style) edge selection on the F-tree.

An extension beyond the paper: the expected information flow is monotone
in the edge set and, in practice, close to submodular — the marginal
gain of an edge can only shrink slightly as other edges are added (it can
grow when a later edge creates a shortcut towards the query vertex,
which is why this remains a heuristic rather than an exact reformulation
of the greedy algorithm).  The lazy-greedy strategy of Leskovec et al.
(CELF) therefore applies: keep candidates in a max-heap keyed by their
*last known* marginal gain, and only re-evaluate the top candidate; if it
stays on top after re-evaluation it is selected without touching the
rest of the frontier.

Compared to the paper's delayed-sampling heuristic, lazy greedy needs no
tuning parameter ``c`` and gives the same selections as plain FT greedy
whenever the gains are truly non-increasing.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.ftree.ftree import FTree
from repro.ftree.memo import MemoCache
from repro.ftree.sampler import ComponentSampler
from repro.graph.uncertain_graph import UncertainGraph
from repro.parallel.executor import ExecutorLike, make_executor
from repro.reachability.backends import BackendLike
from repro.rng import SeedLike, ensure_rng
from repro.selection.base import EdgeSelector, SelectionIteration, SelectionResult, Stopwatch
from repro.selection.candidates import CandidateManager
from repro.types import Edge, VertexId


class LazyGreedySelector(EdgeSelector):
    """CELF-style lazy greedy selection backed by the F-tree.

    Parameters
    ----------
    n_samples:
        Monte-Carlo samples per bi-connected component.
    exact_threshold:
        Components with at most this many uncertain edges are evaluated
        exactly.
    memoize:
        Share component estimates through a memoization cache.
    seed:
        Random seed or generator.
    include_query:
        Whether the query vertex's own weight counts towards the flow.
    backend:
        Possible-world sampling backend name or instance (see
        :mod:`repro.reachability.backends`).
    crn:
        Common-random-numbers candidate scoring (the default): the
        component sampler keys its streams per selection round and
        component content, so re-evaluating the heap's top candidate
        compares against gains measured on the same worlds.  ``False``
        restores the sequential-stream resampling reference behaviour.
    executor:
        Sharded-sampling executor or worker count (see
        :mod:`repro.parallel`); the component sampler shards its
        Monte-Carlo streams over it, keeping selections bit-for-bit
        identical for any worker count.
    shard_size:
        Worlds per shard for the executor path.
    """

    name = "FT+Lazy"

    def __init__(
        self,
        n_samples: int = 1000,
        exact_threshold: int = 10,
        memoize: bool = True,
        seed: SeedLike = None,
        include_query: bool = False,
        backend: BackendLike = None,
        crn: bool = True,
        executor: ExecutorLike = None,
        shard_size: Optional[int] = None,
    ) -> None:
        self.n_samples = n_samples
        self.exact_threshold = exact_threshold
        self.memoize = memoize
        self.include_query = include_query
        self.backend = backend
        self.crn = bool(crn)
        self._executor = make_executor(executor)
        self._shard_size = shard_size
        self._seed = seed

    def select(self, graph: UncertainGraph, query: VertexId, budget: int) -> SelectionResult:
        self._validate(graph, query, budget)
        stopwatch = Stopwatch()
        rng = ensure_rng(self._seed)
        memo = MemoCache() if self.memoize else None
        sampler = ComponentSampler(
            n_samples=self.n_samples,
            exact_threshold=self.exact_threshold,
            seed=rng,
            memo=memo,
            backend=self.backend,
            crn=self.crn,
            executor=self._executor,
            shard_size=self._shard_size,
        )
        ftree = FTree(graph, query, sampler=sampler)
        candidates = CandidateManager(graph, query)
        selected: List[Edge] = []
        iterations: List[SelectionIteration] = []
        current_flow = 0.0
        evaluations = 0

        # heap entries: (-last_known_gain, round_evaluated, tie_breaker, edge)
        heap: List[Tuple[float, int, int, Edge]] = []
        tie_breaker = 0
        for edge in candidates:
            heap.append((-float("inf"), -1, tie_breaker, edge))
            tie_breaker += 1
        heapq.heapify(heap)
        in_heap = {entry[3] for entry in heap}

        for index in range(budget):
            if not candidates.has_candidates():
                break
            iteration_watch = Stopwatch()
            sampler.begin_round(index)
            probed = 0
            best_edge: Optional[Edge] = None
            best_flow = current_flow
            while heap:
                negative_gain, evaluated_round, _, edge = heapq.heappop(heap)
                in_heap.discard(edge)
                if edge not in candidates:
                    continue
                if evaluated_round == index and negative_gain != -float("inf"):
                    # the top entry is fresh for this round: it wins
                    best_edge = edge
                    best_flow = current_flow - negative_gain
                    break
                probe = ftree.clone()
                probe.insert_edge(edge.u, edge.v)
                flow = probe.expected_flow(include_query=self.include_query)
                probed += 1
                evaluations += 1
                gain = flow - current_flow
                tie_breaker += 1
                heapq.heappush(heap, (-gain, index, tie_breaker, edge))
                in_heap.add(edge)
                # if this freshly evaluated candidate is still the best, take it
                if heap and heap[0][3] == edge and heap[0][1] == index:
                    negative_gain, _, _, edge = heapq.heappop(heap)
                    in_heap.discard(edge)
                    best_edge = edge
                    best_flow = current_flow - negative_gain
                    break
            if best_edge is None:
                break
            candidates_before = set(candidates.candidates())
            newly_connected = candidates.mark_selected(best_edge)
            ftree.insert_edge(best_edge.u, best_edge.v)
            selected.append(best_edge)
            gain = best_flow - current_flow
            current_flow = best_flow
            # push any brand-new frontier edges with an optimistic (infinite) key
            for edge in candidates.candidates():
                if edge not in candidates_before and edge not in in_heap:
                    tie_breaker += 1
                    heapq.heappush(heap, (-float("inf"), -1, tie_breaker, edge))
                    in_heap.add(edge)
            iterations.append(
                SelectionIteration(
                    index=index,
                    edge=best_edge,
                    gain=gain,
                    flow_after=current_flow,
                    candidates_probed=probed,
                    elapsed_seconds=iteration_watch.elapsed(),
                )
            )

        final_flow = ftree.expected_flow(include_query=self.include_query)
        extras: Dict[str, float] = {"flow_evaluations": float(evaluations)}
        if memo is not None:
            extras["memo_hit_rate"] = memo.hit_rate
        return SelectionResult(
            algorithm=self.name,
            query=query,
            budget=budget,
            selected_edges=selected,
            expected_flow=final_flow,
            elapsed_seconds=stopwatch.elapsed(),
            iterations=iterations,
            extras=extras,
        )

"""Exhaustive optimal edge selection for tiny instances.

``MaxFlow(G, Q, k)`` is NP-hard (Theorem 1), but for graphs with a
handful of edges the optimum can be found by enumerating edge subsets and
evaluating each with exact possible-world enumeration.  The test suite
and the running-example reproduction use it to quantify how close the
greedy heuristics get to the optimum.
"""

from __future__ import annotations

import itertools
from typing import Tuple

from repro.exceptions import BudgetError, ExactEnumerationError, VertexNotFoundError
from repro.graph.uncertain_graph import UncertainGraph
from repro.reachability.exact import exact_expected_flow
from repro.selection.base import SelectionResult, Stopwatch
from repro.types import Edge, VertexId

#: refuse to enumerate subsets when the number of candidate edges exceeds this
MAX_EDGES_FOR_EXHAUSTIVE = 18


def exhaustive_optimal_selection(
    graph: UncertainGraph,
    query: VertexId,
    budget: int,
    include_query: bool = False,
    max_edges: int = MAX_EDGES_FOR_EXHAUSTIVE,
) -> SelectionResult:
    """Return the optimal ``k``-edge subset by brute force.

    Because the expected flow is monotone in the edge set, only subsets
    of size ``min(budget, |E|)`` need to be enumerated.

    Raises
    ------
    ExactEnumerationError
        If the graph has more than ``max_edges`` edges.
    """
    if not graph.has_vertex(query):
        raise VertexNotFoundError(query)
    if not isinstance(budget, int) or isinstance(budget, bool) or budget < 0:
        raise BudgetError(budget)
    edges = graph.edge_list()
    if len(edges) > max_edges:
        raise ExactEnumerationError(len(edges), max_edges)
    stopwatch = Stopwatch()
    subset_size = min(budget, len(edges))
    best_edges: Tuple[Edge, ...] = ()
    best_flow = 0.0
    if subset_size > 0:
        for subset in itertools.combinations(edges, subset_size):
            estimate = exact_expected_flow(
                graph, query, edges=subset, include_query=include_query
            )
            if estimate.expected_flow > best_flow + 1e-15:
                best_flow = estimate.expected_flow
                best_edges = subset
    if include_query and subset_size == 0:
        best_flow = graph.weight(query)
    return SelectionResult(
        algorithm="Optimal",
        query=query,
        budget=budget,
        selected_edges=list(best_edges),
        expected_flow=best_flow,
        elapsed_seconds=stopwatch.elapsed(),
        extras={"subsets_evaluated": float(_n_subsets(len(edges), subset_size))},
    )


def _n_subsets(n_edges: int, subset_size: int) -> int:
    """Number of subsets enumerated by :func:`exhaustive_optimal_selection`."""
    result = 1
    for i in range(subset_size):
        result = result * (n_edges - i) // (i + 1)
    return result

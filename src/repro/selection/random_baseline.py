"""Random connected growth: a sanity-check baseline.

Not part of the paper's evaluation, but useful to show that the greedy
heuristics are doing real work: it grows the selected subgraph by picking
uniformly random frontier edges until the budget is exhausted, and
evaluates the resulting flow with the F-tree.
"""

from __future__ import annotations

from typing import List

from repro.ftree.builder import build_ftree
from repro.ftree.sampler import ComponentSampler
from repro.graph.uncertain_graph import UncertainGraph
from repro.parallel.executor import ExecutorLike, make_executor
from repro.reachability.backends import BackendLike
from repro.rng import SeedLike, ensure_rng
from repro.selection.base import EdgeSelector, SelectionIteration, SelectionResult, Stopwatch
from repro.selection.candidates import CandidateManager
from repro.types import Edge, VertexId


class RandomSelector(EdgeSelector):
    """Selects uniformly random candidate edges until the budget is spent."""

    name = "Random"

    def __init__(
        self,
        n_samples: int = 500,
        exact_threshold: int = 10,
        seed: SeedLike = None,
        include_query: bool = False,
        backend: BackendLike = None,
        crn: bool = True,
        executor: ExecutorLike = None,
        shard_size: "int | None" = None,
    ) -> None:
        self.n_samples = n_samples
        self.exact_threshold = exact_threshold
        self.include_query = include_query
        self.backend = backend
        self._executor = make_executor(executor)
        self._shard_size = shard_size
        # the random choice itself draws no worlds; crn only keys the
        # final flow evaluation's component streams, kept for API
        # uniformity with the greedy selectors
        self.crn = bool(crn)
        self._rng = ensure_rng(seed)

    def select(self, graph: UncertainGraph, query: VertexId, budget: int) -> SelectionResult:
        self._validate(graph, query, budget)
        stopwatch = Stopwatch()
        candidates = CandidateManager(graph, query)
        selected: List[Edge] = []
        iterations: List[SelectionIteration] = []
        for index in range(budget):
            frontier = candidates.candidates()
            if not frontier:
                break
            edge = frontier[int(self._rng.integers(0, len(frontier)))]
            candidates.mark_selected(edge)
            selected.append(edge)
            iterations.append(
                SelectionIteration(index=index, edge=edge, gain=0.0, flow_after=0.0)
            )
        sampler = ComponentSampler(
            n_samples=self.n_samples,
            exact_threshold=self.exact_threshold,
            seed=self._rng,
            backend=self.backend,
            crn=self.crn,
            executor=self._executor,
            shard_size=self._shard_size,
        )
        ftree = build_ftree(graph, selected, query, sampler=sampler)
        flow = ftree.expected_flow(include_query=self.include_query)
        return SelectionResult(
            algorithm=self.name,
            query=query,
            budget=budget,
            selected_edges=selected,
            expected_flow=flow,
            elapsed_seconds=stopwatch.elapsed(),
            iterations=iterations,
        )

"""Greedy edge selection on top of the F-tree (FT, FT+M, FT+M+CI, FT+M+DS).

The selector probes every candidate edge by cloning the current F-tree,
inserting the edge and evaluating the resulting expected flow; the edge
with the highest flow is committed (Section 6.1).  Three optional
heuristics reduce the per-iteration work:

* **Memoization (M, Section 6.2)** — bi-connected component estimates
  are cached by component content, so probing the same cycle twice costs
  nothing.
* **Confidence-interval pruning (CI, Section 6.3)** — every candidate is
  first screened with a small sample size; if its optimistic upper bound
  cannot beat the best candidate's pessimistic lower bound the full
  estimation is skipped.
* **Delayed sampling (DS, Section 6.4)** — a candidate that was expensive
  to sample and yielded little gain is suspended for
  ``floor(log_c(cost / potential))`` iterations.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.ftree.ftree import FTree
from repro.ftree.memo import MemoCache
from repro.ftree.sampler import ComponentSampler
from repro.graph.uncertain_graph import UncertainGraph
from repro.parallel.executor import ExecutorLike, make_executor
from repro.reachability.backends import BackendLike
from repro.rng import SeedLike, derive_seed, ensure_rng
from repro.selection.base import EdgeSelector, SelectionIteration, SelectionResult, Stopwatch
from repro.selection.candidates import CandidateManager
from repro.types import Edge, VertexId

#: Minimum sample count before the CLT-based screening interval is trusted.
_SCREENING_SAMPLES = 30


class FTreeGreedySelector(EdgeSelector):
    """Greedy MaxFlow selection backed by the F-tree decomposition.

    Parameters
    ----------
    n_samples:
        Monte-Carlo samples per bi-connected component (paper: 1000).
    exact_threshold:
        Components with at most this many uncertain edges are evaluated
        exactly instead of sampled.
    memoize:
        Enable the component-memoization heuristic (FT+M).
    confidence:
        Enable confidence-interval pruning (FT+M+CI).
    delayed:
        Enable delayed sampling (FT+M+DS).
    delay_base:
        The penalisation parameter ``c`` of the delayed-sampling
        heuristic (paper default 2.0; must be > 1).
    alpha:
        Significance level of the pruning intervals (paper: 0.01).
    seed:
        Random seed or generator.
    include_query:
        Whether the query vertex's own weight counts towards the flow.
    backend:
        Possible-world sampling backend name or instance used by the
        component samplers (see :mod:`repro.reachability.backends`).
    crn:
        Common-random-numbers candidate scoring (the default): the
        component samplers key their streams per selection round and
        component content (see :class:`~repro.ftree.sampler.ComponentSampler`),
        so within one round every probe of the same component draws the
        same worlds and candidate comparisons are noise-free.  ``False``
        restores the sequential-stream resampling reference behaviour.
    executor:
        Sharded-sampling executor or worker count (see
        :mod:`repro.parallel`); the component samplers shard their
        Monte-Carlo streams over it.  Selections stay bit-for-bit
        identical for any worker count given
        ``(seed, n_samples, shard_size)``.
    shard_size:
        Worlds per shard for the executor path.
    """

    def __init__(
        self,
        n_samples: int = 1000,
        exact_threshold: int = 10,
        memoize: bool = False,
        confidence: bool = False,
        delayed: bool = False,
        delay_base: float = 2.0,
        alpha: float = 0.01,
        seed: SeedLike = None,
        include_query: bool = False,
        backend: BackendLike = None,
        crn: bool = True,
        executor: ExecutorLike = None,
        shard_size: Optional[int] = None,
    ) -> None:
        if delay_base <= 1.0:
            raise ValueError(f"delay_base must be greater than 1, got {delay_base!r}")
        self.n_samples = n_samples
        self.exact_threshold = exact_threshold
        self.memoize = memoize
        self.confidence = confidence
        self.delayed = delayed
        self.delay_base = delay_base
        self.alpha = alpha
        self.include_query = include_query
        self.backend = backend
        self.crn = bool(crn)
        self._executor = make_executor(executor)
        self._shard_size = shard_size
        self._seed = seed
        self.name = self._build_name()

    def _build_name(self) -> str:
        name = "FT"
        if self.memoize:
            name += "+M"
        if self.confidence:
            name += "+CI"
        if self.delayed:
            name += "+DS"
        return name

    # ------------------------------------------------------------------
    def select(self, graph: UncertainGraph, query: VertexId, budget: int) -> SelectionResult:
        self._validate(graph, query, budget)
        stopwatch = Stopwatch()
        rng = ensure_rng(self._seed)
        memo = MemoCache() if self.memoize else None
        sampler = ComponentSampler(
            n_samples=self.n_samples,
            exact_threshold=self.exact_threshold,
            seed=rng,
            memo=memo,
            backend=self.backend,
            crn=self.crn,
            executor=self._executor,
            shard_size=self._shard_size,
        )
        screening_sampler = ComponentSampler(
            n_samples=_SCREENING_SAMPLES,
            exact_threshold=self.exact_threshold,
            seed=derive_seed(self._seed, 1) if self._seed is not None else None,
            memo=None,
            backend=self.backend,
            crn=self.crn,
            executor=self._executor,
            shard_size=self._shard_size,
        )
        ftree = FTree(graph, query, sampler=sampler)
        candidates = CandidateManager(graph, query)
        delays: Dict[Edge, int] = {}
        selected: List[Edge] = []
        iterations: List[SelectionIteration] = []
        current_flow = 0.0
        total_pruned = 0
        total_delayed = 0

        for index in range(budget):
            if not candidates.has_candidates():
                break
            iteration_watch = Stopwatch()
            sampler.begin_round(index)
            screening_sampler.begin_round(index)
            outcome = self._probe_candidates(
                ftree, candidates, delays, screening_sampler
            )
            if outcome is None and delays:
                # every candidate was suspended: clear the delays and retry
                delays.clear()
                outcome = self._probe_candidates(
                    ftree, candidates, delays, screening_sampler
                )
            if outcome is None:
                break
            best_edge, best_flow, probe_info, probed, pruned, skipped = outcome
            total_pruned += pruned
            total_delayed += skipped

            if self.delayed:
                self._update_delays(delays, probe_info, best_edge, best_flow)

            candidates.mark_selected(best_edge)
            ftree.insert_edge(best_edge.u, best_edge.v)
            selected.append(best_edge)
            gain = best_flow - current_flow
            current_flow = best_flow
            iterations.append(
                SelectionIteration(
                    index=index,
                    edge=best_edge,
                    gain=gain,
                    flow_after=current_flow,
                    candidates_probed=probed,
                    candidates_pruned=pruned,
                    candidates_delayed=skipped,
                    elapsed_seconds=iteration_watch.elapsed(),
                )
            )

        final_flow = ftree.expected_flow(include_query=self.include_query)
        extras: Dict[str, float] = {
            "sampled_components": float(sampler.sampled_components),
            "exact_components": float(sampler.exact_components),
            "sampled_edges": float(sampler.sampled_edges),
            "pruned_candidates": float(total_pruned),
            "delayed_candidates": float(total_delayed),
        }
        if memo is not None:
            extras["memo_hits"] = float(memo.hits)
            extras["memo_hit_rate"] = memo.hit_rate
        return SelectionResult(
            algorithm=self.name,
            query=query,
            budget=budget,
            selected_edges=selected,
            expected_flow=final_flow,
            elapsed_seconds=stopwatch.elapsed(),
            iterations=iterations,
            extras=extras,
        )

    # ------------------------------------------------------------------
    def _probe_candidates(
        self,
        ftree: FTree,
        candidates: CandidateManager,
        delays: Dict[Edge, int],
        screening_sampler: ComponentSampler,
    ) -> Optional[Tuple[Edge, float, Dict[Edge, Tuple[float, int]], int, int, int]]:
        """Probe the current candidates and return the best edge.

        Returns ``None`` if no candidate could be probed (all suspended).
        The returned tuple is ``(best edge, best flow, per-edge probe
        info, probed count, pruned count, delayed count)`` where probe
        info maps each probed edge to ``(flow estimate, sampling cost)``.
        """
        best_edge: Optional[Edge] = None
        best_flow = float("-inf")
        best_lower = float("-inf")
        probe_info: Dict[Edge, Tuple[float, int]] = {}
        probed = 0
        pruned = 0
        skipped = 0

        for edge in candidates:
            if self.delayed and delays.get(edge, 0) > 0:
                delays[edge] -= 1
                skipped += 1
                continue
            probed += 1
            probe = ftree.clone()
            probe.insert_edge(edge.u, edge.v)
            cost = probe.pending_estimation_cost()

            if self.confidence and best_edge is not None and cost > 0:
                # screening pass with a coarse sampler; prune hopeless candidates
                probe.sampler = screening_sampler
                _, screening_upper = probe.flow_interval(alpha=self.alpha)
                if screening_upper < best_lower:
                    pruned += 1
                    probe_info[edge] = (screening_upper, cost)
                    continue
                self._invalidate_screened(probe)
                probe.sampler = ftree.sampler

            flow = probe.expected_flow(include_query=self.include_query)
            probe_info[edge] = (flow, cost)
            if flow > best_flow:
                best_flow = flow
                best_edge = edge
                if self.confidence:
                    best_lower, _ = probe.flow_interval(alpha=self.alpha)
        if best_edge is None:
            return None
        return best_edge, best_flow, probe_info, probed, pruned, skipped

    @staticmethod
    def _invalidate_screened(probe: FTree) -> None:
        """Drop coarse screening estimates so the full sampler re-evaluates them."""
        for component in probe.components():
            if component.is_mono:
                continue
            if getattr(component, "reach_samples", None) == _SCREENING_SAMPLES:
                component.invalidate()

    def _update_delays(
        self,
        delays: Dict[Edge, int],
        probe_info: Dict[Edge, Tuple[float, int]],
        best_edge: Edge,
        best_flow: float,
    ) -> None:
        """Apply the delayed-sampling rule ``d = floor(log_c(cost / potential))``."""
        for edge, (flow, cost) in probe_info.items():
            if edge == best_edge or cost <= 0:
                continue
            if best_flow <= 0:
                continue
            potential = max(flow, 0.0) / best_flow
            if potential <= 0:
                delay = len(probe_info)  # effectively suspend for a long time
            else:
                delay = int(math.floor(math.log(cost / potential, self.delay_base)))
            if delay > 0:
                delays[edge] = delay

"""Edge-selection algorithms for the MaxFlow problem (Section 6).

Given a probabilistic graph, a query vertex and an edge budget ``k``,
every selector returns the set of edges it would activate together with
per-iteration diagnostics.  Available selectors:

* :class:`DijkstraSelector` — maximum-probability spanning-tree baseline;
* :class:`NaiveGreedySelector` — greedy edge selection with whole-graph
  Monte-Carlo flow estimation (the paper's "Naive" competitor);
* :class:`FTreeGreedySelector` — greedy selection on top of the F-tree
  with optional memoization (FT+M), confidence-interval pruning
  (FT+M+CI) and delayed sampling (FT+M+DS);
* :class:`RandomSelector` — random connected growth (sanity baseline);
* :func:`exhaustive_optimal_selection` — brute-force optimum for tiny
  instances, used to measure the quality gap of the heuristics.

:func:`make_selector` builds the paper's named algorithm variants
("Naive", "Dijkstra", "FT", "FT+M", "FT+M+CI", "FT+M+DS", "FT+M+CI+DS").

All sampling-based selectors score candidates with common random
numbers by default (one shared batch of possible worlds per selection
round, see :mod:`repro.reachability.context`); pass ``crn=False`` — or
scope the default with ``with repro.session(crn=False):`` — for the
paper's literal per-candidate resampling reference mode.  (The legacy
:func:`set_default_crn` still works but is a deprecated shim over
``repro.runtime.defaults``.)
"""

from repro.selection.base import (
    EdgeSelector,
    SelectionIteration,
    SelectionResult,
)
from repro.selection.candidates import CandidateManager
from repro.selection.dijkstra_tree import DijkstraSelector
from repro.selection.greedy_naive import NaiveGreedySelector
from repro.selection.ftree_greedy import FTreeGreedySelector
from repro.selection.lazy_greedy import LazyGreedySelector
from repro.selection.random_baseline import RandomSelector
from repro.selection.exact_optimal import exhaustive_optimal_selection
from repro.selection.registry import (
    ALGORITHM_NAMES,
    DEFAULT_CRN,
    get_default_crn,
    make_selector,
    set_default_crn,
)

__all__ = [
    "EdgeSelector",
    "SelectionIteration",
    "SelectionResult",
    "CandidateManager",
    "DijkstraSelector",
    "NaiveGreedySelector",
    "FTreeGreedySelector",
    "LazyGreedySelector",
    "RandomSelector",
    "exhaustive_optimal_selection",
    "ALGORITHM_NAMES",
    "DEFAULT_CRN",
    "get_default_crn",
    "make_selector",
    "set_default_crn",
]

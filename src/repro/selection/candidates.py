"""Candidate-edge management for the greedy selectors.

The greedy algorithm of Section 6.1 maintains, at every iteration, the
set of edges that touch the component currently connected to ``Q`` but
have not been selected yet.  :class:`CandidateManager` maintains that
frontier incrementally as edges are selected.
"""

from __future__ import annotations

from typing import Iterator, List, Set

from repro.exceptions import VertexNotFoundError
from repro.graph.uncertain_graph import UncertainGraph
from repro.types import Edge, VertexId


class CandidateManager:
    """Incrementally maintained frontier of selectable edges.

    Parameters
    ----------
    graph:
        The uncertain graph the selection operates on.
    query:
        The query vertex; initially only its incident edges are candidates.
    """

    def __init__(self, graph: UncertainGraph, query: VertexId) -> None:
        if not graph.has_vertex(query):
            raise VertexNotFoundError(query)
        self.graph = graph
        self.query = query
        self._connected: Set[VertexId] = {query}
        self._selected: Set[Edge] = set()
        self._candidates: Set[Edge] = set(graph.incident_edges(query))

    # ------------------------------------------------------------------
    @property
    def connected_vertices(self) -> Set[VertexId]:
        """Vertices currently connected to the query vertex."""
        return set(self._connected)

    @property
    def selected_edges(self) -> Set[Edge]:
        """Edges selected so far."""
        return set(self._selected)

    def candidates(self) -> List[Edge]:
        """Return the current candidate edges (deterministic order)."""
        return sorted(self._candidates, key=lambda edge: (repr(edge.u), repr(edge.v)))

    def __iter__(self) -> Iterator[Edge]:
        return iter(self.candidates())

    def __len__(self) -> int:
        return len(self._candidates)

    def __contains__(self, edge: Edge) -> bool:
        return edge in self._candidates

    # ------------------------------------------------------------------
    def mark_selected(self, edge: Edge) -> Set[VertexId]:
        """Record that ``edge`` was selected and update the frontier.

        Returns the set of vertices that became newly connected (empty if
        both endpoints were already connected).
        """
        if edge not in self._candidates:
            raise ValueError(f"{edge!r} is not a current candidate")
        self._candidates.discard(edge)
        self._selected.add(edge)
        newly_connected: Set[VertexId] = set()
        for vertex in edge:
            if vertex not in self._connected:
                newly_connected.add(vertex)
                self._connected.add(vertex)
        for vertex in newly_connected:
            for incident in self.graph.incident_edges(vertex):
                if incident not in self._selected:
                    self._candidates.add(incident)
        # an edge whose both endpoints just became connected may have been
        # selected already; prune any candidate that is now selected
        self._candidates -= self._selected
        return newly_connected

    def has_candidates(self) -> bool:
        """Return True if at least one edge can still be selected."""
        return bool(self._candidates)

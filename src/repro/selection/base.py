"""Common interfaces and result objects for edge selectors."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import BudgetError, VertexNotFoundError
from repro.graph.uncertain_graph import UncertainGraph
from repro.types import Edge, VertexId


@dataclass(frozen=True)
class SelectionIteration:
    """Diagnostics of one greedy iteration."""

    index: int
    edge: Optional[Edge]
    gain: float
    flow_after: float
    candidates_probed: int = 0
    candidates_pruned: int = 0
    candidates_delayed: int = 0
    elapsed_seconds: float = 0.0


@dataclass
class SelectionResult:
    """Outcome of one selector run.

    Attributes
    ----------
    algorithm:
        Human-readable algorithm name ("FT+M", "Dijkstra", ...).
    query:
        The query vertex.
    budget:
        The requested edge budget ``k``.
    selected_edges:
        The edges chosen, in selection order (at most ``budget`` many).
    expected_flow:
        The selector's own estimate of the expected flow of the selected
        subgraph (harnesses typically re-evaluate with an independent
        estimator for fairness).
    elapsed_seconds:
        Total wall-clock time of the selection.
    iterations:
        Per-iteration diagnostics.
    extras:
        Selector-specific counters (memo hit rate, pruning counts, ...).
    """

    algorithm: str
    query: VertexId
    budget: int
    selected_edges: List[Edge]
    expected_flow: float
    elapsed_seconds: float
    iterations: List[SelectionIteration] = field(default_factory=list)
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def n_selected(self) -> int:
        """Number of edges actually selected."""
        return len(self.selected_edges)

    def as_dict(self) -> dict:
        """Flatten the result for CSV/tabular reporting."""
        return {
            "algorithm": self.algorithm,
            "query": self.query,
            "budget": self.budget,
            "n_selected": self.n_selected,
            "expected_flow": self.expected_flow,
            "elapsed_seconds": self.elapsed_seconds,
            **{f"extra_{key}": value for key, value in self.extras.items()},
        }


class EdgeSelector(abc.ABC):
    """Abstract base class for edge-selection algorithms."""

    #: Human readable algorithm name, overridden by subclasses.
    name: str = "selector"

    @abc.abstractmethod
    def select(self, graph: UncertainGraph, query: VertexId, budget: int) -> SelectionResult:
        """Select up to ``budget`` edges maximising the expected flow towards ``query``."""

    # -- shared validation helpers --------------------------------------
    @staticmethod
    def _validate(graph: UncertainGraph, query: VertexId, budget: int) -> None:
        if not graph.has_vertex(query):
            raise VertexNotFoundError(query)
        if not isinstance(budget, int) or isinstance(budget, bool) or budget < 0:
            raise BudgetError(budget)


class Stopwatch:
    """Tiny helper measuring elapsed wall-clock seconds."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction."""
        return time.perf_counter() - self._start

"""The Naive greedy competitor: whole-graph Monte-Carlo flow estimation.

The paper's Naive baseline (Section 7.2) applies the same greedy edge
selection as the F-tree algorithms but estimates the expected flow of
every probed candidate subgraph by sampling the *entire* candidate
subgraph (1000 worlds by default).

Two evaluation modes are supported:

* ``crn=True`` (the default): one shared batch of possible worlds per
  selection round, scored through
  :class:`~repro.reachability.context.EvaluationContext` — every
  candidate of a round is evaluated on the *same* worlds (common random
  numbers), so candidate comparisons carry no cross-candidate sampling
  noise and one backend draw is amortized over the whole round.
* ``crn=False`` (the paper's literal resampling scheme, kept as the
  reference mode): the whole candidate subgraph is re-sampled from
  scratch for every probed candidate — slow and noisy, since the argmax
  compares estimates across independent draws.
"""

from __future__ import annotations

from typing import List, Optional

from repro.graph.uncertain_graph import UncertainGraph
from repro.parallel.executor import ExecutorLike, make_executor
from repro.reachability.backends import BackendLike
from repro.reachability.context import EvaluationContext
from repro.reachability.engine import SamplingEngine
from repro.rng import SeedLike, ensure_rng
from repro.selection.base import EdgeSelector, SelectionIteration, SelectionResult, Stopwatch
from repro.selection.candidates import CandidateManager
from repro.types import Edge, VertexId


class NaiveGreedySelector(EdgeSelector):
    """Greedy selection with whole-graph Monte-Carlo estimation.

    Parameters
    ----------
    n_samples:
        Possible worlds sampled per candidate evaluation (paper: 1000).
    seed:
        Random seed or generator.
    include_query:
        Whether the query vertex's own weight counts towards the flow.
    backend:
        Possible-world sampling backend name or instance (see
        :mod:`repro.reachability.backends`).
    crn:
        Common-random-numbers candidate scoring (see the module
        docstring).  On by default; ``False`` restores the paper's
        per-candidate resampling reference behaviour.
    executor:
        Sharded-sampling executor or worker count (see
        :mod:`repro.parallel`); every world batch the selector draws is
        fanned out over it.  Selections stay bit-for-bit identical for
        any worker count given ``(seed, n_samples, shard_size)``.
    shard_size:
        Worlds per shard for the executor path.
    """

    name = "Naive"

    def __init__(
        self,
        n_samples: int = 1000,
        seed: SeedLike = None,
        include_query: bool = False,
        backend: BackendLike = None,
        crn: bool = True,
        executor: ExecutorLike = None,
        shard_size: Optional[int] = None,
    ) -> None:
        self.n_samples = n_samples
        self.include_query = include_query
        self.crn = bool(crn)
        self._executor = make_executor(executor)
        self._shard_size = shard_size
        self._engine = SamplingEngine(backend, executor=self._executor, shard_size=shard_size)
        self._rng = ensure_rng(seed)

    def select(self, graph: UncertainGraph, query: VertexId, budget: int) -> SelectionResult:
        self._validate(graph, query, budget)
        stopwatch = Stopwatch()
        candidates = CandidateManager(graph, query)
        selected: List[Edge] = []
        iterations: List[SelectionIteration] = []
        current_flow = 0.0
        fast_evaluations = 0
        delta_evaluations = 0
        context: Optional[EvaluationContext] = None
        if self.crn and budget > 0:
            context = EvaluationContext(
                graph,
                query,
                n_samples=self.n_samples,
                seed=self._rng,
                backend=self._engine.backend,
                include_query=self.include_query,
                executor=self._executor,
                shard_size=self._shard_size,
            )

        for index in range(budget):
            if not candidates.has_candidates():
                break
            iteration_watch = Stopwatch()
            frontier = candidates.candidates()
            if context is not None:
                scores = context.score_candidates(selected, frontier)
                _, best_edge, best_flow = scores.best()
                probed = len(frontier)
                fast_evaluations += scores.fast_evaluations
                delta_evaluations += scores.delta_evaluations
            else:
                best_edge, best_flow, probed = self._probe_resampling(
                    graph, query, selected, frontier
                )
            if best_edge is None:
                break
            candidates.mark_selected(best_edge)
            selected.append(best_edge)
            gain = best_flow - current_flow
            current_flow = best_flow
            iterations.append(
                SelectionIteration(
                    index=index,
                    edge=best_edge,
                    gain=gain,
                    flow_after=current_flow,
                    candidates_probed=probed,
                    elapsed_seconds=iteration_watch.elapsed(),
                )
            )

        extras = {"n_samples": float(self.n_samples), "crn": float(self.crn)}
        if context is not None:
            extras["fast_evaluations"] = float(fast_evaluations)
            extras["delta_evaluations"] = float(delta_evaluations)
        return SelectionResult(
            algorithm=self.name,
            query=query,
            budget=budget,
            selected_edges=selected,
            expected_flow=current_flow if selected else 0.0,
            elapsed_seconds=stopwatch.elapsed(),
            iterations=iterations,
            extras=extras,
        )

    def _probe_resampling(
        self,
        graph: UncertainGraph,
        query: VertexId,
        selected: List[Edge],
        frontier: List[Edge],
    ):
        """Reference mode: re-sample the whole subgraph per candidate."""
        best_edge: Optional[Edge] = None
        best_flow = float("-inf")
        probed = 0
        for edge in frontier:
            probed += 1
            estimate = self._engine.expected_flow(
                graph,
                query,
                n_samples=self.n_samples,
                seed=self._rng,
                edges=selected + [edge],
                include_query=self.include_query,
            )
            if estimate.expected_flow > best_flow:
                best_flow = estimate.expected_flow
                best_edge = edge
        return best_edge, best_flow, probed

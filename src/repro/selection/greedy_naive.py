"""The Naive greedy competitor: whole-graph Monte-Carlo flow estimation.

The paper's Naive baseline (Section 7.2) applies the same greedy edge
selection as the F-tree algorithms but estimates the expected flow of
every probed candidate subgraph by sampling the *entire* candidate
subgraph (1000 worlds by default).  This is both slow — the whole graph
is re-sampled for every candidate in every iteration — and noisy, since
the variance of a whole-graph estimate is much larger than that of
component-wise estimates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.graph.uncertain_graph import UncertainGraph
from repro.reachability.backends import BackendLike
from repro.reachability.engine import SamplingEngine
from repro.rng import SeedLike, ensure_rng
from repro.selection.base import EdgeSelector, SelectionIteration, SelectionResult, Stopwatch
from repro.selection.candidates import CandidateManager
from repro.types import Edge, VertexId


class NaiveGreedySelector(EdgeSelector):
    """Greedy selection with whole-graph Monte-Carlo estimation.

    Parameters
    ----------
    n_samples:
        Possible worlds sampled per candidate evaluation (paper: 1000).
    seed:
        Random seed or generator.
    include_query:
        Whether the query vertex's own weight counts towards the flow.
    backend:
        Possible-world sampling backend name or instance (see
        :mod:`repro.reachability.backends`).
    """

    name = "Naive"

    def __init__(
        self,
        n_samples: int = 1000,
        seed: SeedLike = None,
        include_query: bool = False,
        backend: BackendLike = None,
    ) -> None:
        self.n_samples = n_samples
        self.include_query = include_query
        self._engine = SamplingEngine(backend)
        self._rng = ensure_rng(seed)

    def select(self, graph: UncertainGraph, query: VertexId, budget: int) -> SelectionResult:
        self._validate(graph, query, budget)
        stopwatch = Stopwatch()
        candidates = CandidateManager(graph, query)
        selected: List[Edge] = []
        iterations: List[SelectionIteration] = []
        current_flow = 0.0

        for index in range(budget):
            if not candidates.has_candidates():
                break
            iteration_watch = Stopwatch()
            best_edge: Optional[Edge] = None
            best_flow = float("-inf")
            probed = 0
            for edge in candidates:
                probed += 1
                estimate = self._engine.expected_flow(
                    graph,
                    query,
                    n_samples=self.n_samples,
                    seed=self._rng,
                    edges=selected + [edge],
                    include_query=self.include_query,
                )
                if estimate.expected_flow > best_flow:
                    best_flow = estimate.expected_flow
                    best_edge = edge
            if best_edge is None:
                break
            candidates.mark_selected(best_edge)
            selected.append(best_edge)
            gain = best_flow - current_flow
            current_flow = best_flow
            iterations.append(
                SelectionIteration(
                    index=index,
                    edge=best_edge,
                    gain=gain,
                    flow_after=current_flow,
                    candidates_probed=probed,
                    elapsed_seconds=iteration_watch.elapsed(),
                )
            )

        return SelectionResult(
            algorithm=self.name,
            query=query,
            budget=budget,
            selected_edges=selected,
            expected_flow=current_flow if selected else 0.0,
            elapsed_seconds=stopwatch.elapsed(),
            iterations=iterations,
            extras={"n_samples": float(self.n_samples)},
        )

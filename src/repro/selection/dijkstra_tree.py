"""Dijkstra maximum-probability spanning-tree baseline (Section 7.2).

The baseline transforms edge probabilities into costs ``-log P(e)`` and
runs Dijkstra from the query vertex; the spanning-tree edges, taken in
the order their far endpoint is settled, are activated until the budget
is exhausted.  The resulting subgraph is always a tree, so its expected
flow is computed analytically (no sampling at all) — which is why the
baseline is extremely fast but leaves no redundancy against edge
failures.
"""

from __future__ import annotations

from repro.algorithms.spanning import dijkstra_spanning_edges
from repro.ftree.builder import build_ftree
from repro.ftree.sampler import ComponentSampler
from repro.graph.uncertain_graph import UncertainGraph
from repro.selection.base import EdgeSelector, SelectionIteration, SelectionResult, Stopwatch
from repro.types import VertexId


class DijkstraSelector(EdgeSelector):
    """Selects the first ``k`` edges of the maximum-probability spanning tree."""

    name = "Dijkstra"

    def __init__(self, include_query: bool = False) -> None:
        self.include_query = include_query

    def select(self, graph: UncertainGraph, query: VertexId, budget: int) -> SelectionResult:
        self._validate(graph, query, budget)
        stopwatch = Stopwatch()
        edges = dijkstra_spanning_edges(graph, query, limit=budget)
        # a spanning tree is mono-connected: the F-tree evaluates it exactly
        ftree = build_ftree(graph, edges, query, sampler=ComponentSampler(n_samples=1))
        flow = ftree.expected_flow(include_query=self.include_query)
        elapsed = stopwatch.elapsed()
        iterations = []
        running_edges = []
        for index, edge in enumerate(edges):
            running_edges.append(edge)
            iterations.append(
                SelectionIteration(
                    index=index,
                    edge=edge,
                    gain=0.0,
                    flow_after=0.0,
                    candidates_probed=0,
                )
            )
        return SelectionResult(
            algorithm=self.name,
            query=query,
            budget=budget,
            selected_edges=list(edges),
            expected_flow=flow,
            elapsed_seconds=elapsed,
            iterations=iterations,
            extras={"tree_depth": float(_tree_depth(ftree))},
        )


def _tree_depth(ftree) -> int:
    """Longest hop distance from the query vertex within the selected tree."""
    reach = ftree.reachability_to_query()
    # depth is approximated by walking mono component paths; for a pure
    # tree the number of components is 1 and path lengths give the depth
    depth = 0
    for component in ftree.components():
        if component.is_mono:
            for vertex in component.vertices:
                depth = max(depth, len(component.path_to_articulation(vertex)) - 1)
    return depth if reach else 0

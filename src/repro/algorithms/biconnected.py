"""Articulation points, biconnected components and the block-cut tree.

The F-tree of the paper (Section 5.3) is "inspired by the block-cut
tree"; this module provides the underlying decomposition: an iterative
Hopcroft–Tarjan algorithm that partitions the *edges* of a connected
graph into biconnected components (blocks) and identifies the
articulation (cut) vertices separating them.  The
:func:`block_cut_tree` helper arranges blocks and articulation vertices
into the classic bipartite tree rooted at a chosen vertex; the F-tree
builder (:mod:`repro.ftree.builder`) consumes it to create mono- and
bi-connected F-tree components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.exceptions import VertexNotFoundError
from repro.graph.uncertain_graph import UncertainGraph
from repro.types import Edge, VertexId


def _adjacency(
    graph: UncertainGraph, edges: Optional[Iterable[Edge]] = None
) -> Dict[VertexId, Set[VertexId]]:
    if edges is None:
        return {v: set(graph.neighbors(v)) for v in graph.vertices()}
    adjacency: Dict[VertexId, Set[VertexId]] = {v: set() for v in graph.vertices()}
    for edge in edges:
        adjacency[edge.u].add(edge.v)
        adjacency[edge.v].add(edge.u)
    return adjacency


def biconnected_edge_components(
    graph: UncertainGraph, edges: Optional[Iterable[Edge]] = None
) -> List[Set[Edge]]:
    """Partition the edges of the (sub)graph into biconnected components.

    Every edge belongs to exactly one component; a bridge forms a
    component of size one.  The implementation is the iterative
    Hopcroft–Tarjan DFS with an explicit edge stack, so arbitrarily deep
    graphs are handled without recursion.
    """
    adjacency = _adjacency(graph, edges)
    components: List[Set[Edge]] = []
    discovery: Dict[VertexId, int] = {}
    low: Dict[VertexId, int] = {}
    counter = 0
    edge_stack: List[Tuple[VertexId, VertexId]] = []

    for root in adjacency:
        if root in discovery:
            continue
        # stack entries: (vertex, parent, iterator over neighbours)
        discovery[root] = low[root] = counter
        counter += 1
        stack: List[Tuple[VertexId, Optional[VertexId], Iterable[VertexId]]] = [
            (root, None, iter(adjacency[root]))
        ]
        while stack:
            vertex, parent, neighbors = stack[-1]
            advanced = False
            for neighbor in neighbors:
                if neighbor == parent:
                    continue
                if neighbor not in discovery:
                    edge_stack.append((vertex, neighbor))
                    discovery[neighbor] = low[neighbor] = counter
                    counter += 1
                    stack.append((neighbor, vertex, iter(adjacency[neighbor])))
                    advanced = True
                    break
                if discovery[neighbor] < discovery[vertex]:
                    # back edge to an ancestor
                    edge_stack.append((vertex, neighbor))
                    low[vertex] = min(low[vertex], discovery[neighbor])
            if advanced:
                continue
            stack.pop()
            if parent is None:
                continue
            low[parent] = min(low[parent], low[vertex])
            if low[vertex] >= discovery[parent]:
                # parent is an articulation point (or the root); pop the block:
                # every edge pushed after the tree edge (parent, vertex) belongs to it
                component: Set[Edge] = set()
                while edge_stack:
                    u, v = edge_stack.pop()
                    component.add(Edge(u, v))
                    if u == parent and v == vertex:
                        break
                if component:
                    components.append(component)
        # any leftover edges (should not happen for a DFS tree rooted here)
        if edge_stack:  # pragma: no cover - defensive
            components.append({Edge(u, v) for u, v in edge_stack})
            edge_stack.clear()
    return components


def biconnected_components(
    graph: UncertainGraph, edges: Optional[Iterable[Edge]] = None
) -> List[Set[VertexId]]:
    """Return biconnected components as vertex sets (blocks)."""
    vertex_components: List[Set[VertexId]] = []
    for component in biconnected_edge_components(graph, edges):
        vertices: Set[VertexId] = set()
        for edge in component:
            vertices.add(edge.u)
            vertices.add(edge.v)
        vertex_components.append(vertices)
    return vertex_components


def articulation_points(
    graph: UncertainGraph, edges: Optional[Iterable[Edge]] = None
) -> Set[VertexId]:
    """Return the articulation (cut) vertices of the (sub)graph.

    A vertex is an articulation point exactly when it belongs to more
    than one biconnected component.
    """
    membership: Dict[VertexId, int] = {}
    points: Set[VertexId] = set()
    for index, component in enumerate(biconnected_components(graph, edges)):
        for vertex in component:
            if vertex in membership and membership[vertex] != index:
                points.add(vertex)
            else:
                membership[vertex] = index
    return points


def bridges(graph: UncertainGraph, edges: Optional[Iterable[Edge]] = None) -> Set[Edge]:
    """Return all bridge edges (edges whose removal disconnects their endpoints)."""
    return {
        next(iter(component))
        for component in biconnected_edge_components(graph, edges)
        if len(component) == 1
    }


# ----------------------------------------------------------------------
# block-cut tree
# ----------------------------------------------------------------------
@dataclass
class BlockCutTree:
    """Block-cut tree of the connected component containing ``root``.

    Attributes
    ----------
    root:
        The vertex the tree is rooted at (the query vertex ``Q`` in the
        F-tree use case).
    blocks:
        List of blocks; each block is the frozenset of edges of one
        biconnected component.
    block_vertices:
        For each block index, the frozenset of vertices it spans.
    block_parent_vertex:
        For each block index, the vertex through which the block is
        attached towards the root (the articulation vertex for non-root
        blocks, ``root`` itself for blocks containing the root).
    vertex_blocks:
        Mapping from vertex to the indices of blocks containing it.
    block_depth:
        Distance (in blocks) from the root for each block.
    """

    root: VertexId
    blocks: List[FrozenSet[Edge]] = field(default_factory=list)
    block_vertices: List[FrozenSet[VertexId]] = field(default_factory=list)
    block_parent_vertex: List[VertexId] = field(default_factory=list)
    vertex_blocks: Dict[VertexId, List[int]] = field(default_factory=dict)
    block_depth: List[int] = field(default_factory=list)

    def block_order(self) -> List[int]:
        """Return block indices ordered root-outwards (by depth)."""
        return sorted(range(len(self.blocks)), key=lambda index: self.block_depth[index])


def block_cut_tree(
    graph: UncertainGraph,
    root: VertexId,
    edges: Optional[Iterable[Edge]] = None,
) -> BlockCutTree:
    """Build the block-cut tree of the connected component containing ``root``.

    Blocks not connected to ``root`` (through the optional edge
    restriction) are ignored, matching the F-tree which only represents
    the query vertex's component.
    """
    if not graph.has_vertex(root):
        raise VertexNotFoundError(root)
    edge_components = biconnected_edge_components(graph, edges)
    block_vertex_sets: List[Set[VertexId]] = []
    for component in edge_components:
        vertices: Set[VertexId] = set()
        for edge in component:
            vertices.add(edge.u)
            vertices.add(edge.v)
        block_vertex_sets.append(vertices)

    vertex_blocks: Dict[VertexId, List[int]] = {}
    for index, vertices in enumerate(block_vertex_sets):
        for vertex in vertices:
            vertex_blocks.setdefault(vertex, []).append(index)

    tree = BlockCutTree(root=root)
    if root not in vertex_blocks:
        return tree

    # BFS over the bipartite block/vertex incidence starting at the root vertex
    assigned: Dict[int, VertexId] = {}  # block index -> parent (attachment) vertex
    depth: Dict[int, int] = {}
    visited_vertices: Set[VertexId] = {root}
    frontier: List[Tuple[VertexId, int]] = [(root, 0)]
    while frontier:
        next_frontier: List[Tuple[VertexId, int]] = []
        for vertex, vertex_depth in frontier:
            for block_index in vertex_blocks.get(vertex, ()):
                if block_index in assigned:
                    continue
                assigned[block_index] = vertex
                depth[block_index] = vertex_depth
                for other in block_vertex_sets[block_index]:
                    if other not in visited_vertices:
                        visited_vertices.add(other)
                        next_frontier.append((other, vertex_depth + 1))
        frontier = next_frontier

    for block_index in sorted(assigned, key=lambda index: depth[index]):
        tree.blocks.append(frozenset(edge_components[block_index]))
        tree.block_vertices.append(frozenset(block_vertex_sets[block_index]))
        tree.block_parent_vertex.append(assigned[block_index])
        tree.block_depth.append(depth[block_index])
    for new_index, vertices in enumerate(tree.block_vertices):
        for vertex in vertices:
            tree.vertex_blocks.setdefault(vertex, []).append(new_index)
    return tree

"""Deterministic graph algorithms used as substrate.

Everything here operates on :class:`~repro.graph.uncertain_graph.UncertainGraph`
instances but ignores edge probabilities unless stated otherwise (e.g. the
maximum-probability spanning tree).  All algorithms are implemented from
scratch (iteratively, so deep graphs do not hit Python's recursion limit);
NetworkX is only used inside the test suite as an independent oracle.
"""

from repro.algorithms.traversal import (
    bfs_order,
    bfs_tree,
    connected_component,
    connected_components,
    is_connected,
    shortest_hop_path,
)
from repro.algorithms.union_find import UnionFind
from repro.algorithms.biconnected import (
    articulation_points,
    biconnected_components,
    biconnected_edge_components,
    bridges,
    BlockCutTree,
    block_cut_tree,
)
from repro.algorithms.shortest_path import (
    dijkstra,
    most_probable_paths,
    most_probable_path,
)
from repro.algorithms.spanning import (
    maximum_probability_spanning_tree,
    dijkstra_spanning_edges,
)

__all__ = [
    "bfs_order",
    "bfs_tree",
    "connected_component",
    "connected_components",
    "is_connected",
    "shortest_hop_path",
    "UnionFind",
    "articulation_points",
    "biconnected_components",
    "biconnected_edge_components",
    "bridges",
    "BlockCutTree",
    "block_cut_tree",
    "dijkstra",
    "most_probable_paths",
    "most_probable_path",
    "maximum_probability_spanning_tree",
    "dijkstra_spanning_edges",
]

"""Shortest paths and most-probable paths on uncertain graphs.

The Dijkstra baseline of the paper (Section 7.2, "Dijkstra") selects
edges of a *maximum-probability spanning tree*: running Dijkstra on edge
costs ``-log P(e)`` from the query vertex yields, for every vertex, the
path maximising the product of edge probabilities.  The same machinery
also provides the most-probable-path reachability lower bound discussed
in the related-work section.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import VertexNotFoundError
from repro.graph.uncertain_graph import UncertainGraph
from repro.types import Edge, VertexId


@dataclass(frozen=True)
class ShortestPathResult:
    """Result of a single-source Dijkstra run.

    Attributes
    ----------
    source:
        The source vertex.
    distance:
        Mapping from reachable vertex to its shortest-path cost.
    parent:
        Predecessor map (``source`` maps to None).
    settle_order:
        Vertices in the order Dijkstra settled them (non-decreasing
        distance); used by the spanning-tree edge selector.
    """

    source: VertexId
    distance: Dict[VertexId, float]
    parent: Dict[VertexId, Optional[VertexId]]
    settle_order: List[VertexId]

    def path_to(self, target: VertexId) -> Optional[List[VertexId]]:
        """Return the shortest path from the source to ``target``, or None."""
        if target not in self.parent:
            return None
        path = [target]
        while path[-1] != self.source:
            predecessor = self.parent[path[-1]]
            assert predecessor is not None
            path.append(predecessor)
        path.reverse()
        return path


def dijkstra(
    graph: UncertainGraph,
    source: VertexId,
    cost: Optional[Dict[Edge, float]] = None,
    edges: Optional[Iterable[Edge]] = None,
) -> ShortestPathResult:
    """Single-source Dijkstra with a binary heap.

    Parameters
    ----------
    graph:
        The graph to traverse.
    source:
        Source vertex.
    cost:
        Mapping from edge to a non-negative cost; defaults to
        ``-log P(e)`` so that shortest paths are most-probable paths.
    edges:
        Optional restriction to a subset of edges.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    if cost is None:
        cost = {edge: probability_cost(graph.probability(edge)) for edge in graph.edges()}
    allowed = None if edges is None else set(edges)

    distance: Dict[VertexId, float] = {source: 0.0}
    parent: Dict[VertexId, Optional[VertexId]] = {source: None}
    settled: Dict[VertexId, bool] = {}
    settle_order: List[VertexId] = []
    heap: List[Tuple[float, int, VertexId]] = [(0.0, 0, source)]
    tie_breaker = 0
    while heap:
        current_distance, _, vertex = heapq.heappop(heap)
        if settled.get(vertex):
            continue
        settled[vertex] = True
        settle_order.append(vertex)
        for neighbor in graph.neighbors(vertex):
            edge = Edge(vertex, neighbor)
            if allowed is not None and edge not in allowed:
                continue
            edge_cost = cost[edge]
            if edge_cost < 0:
                raise ValueError(f"negative edge cost {edge_cost!r} for {edge!r}")
            candidate = current_distance + edge_cost
            if candidate < distance.get(neighbor, math.inf):
                distance[neighbor] = candidate
                parent[neighbor] = vertex
                tie_breaker += 1
                heapq.heappush(heap, (candidate, tie_breaker, neighbor))
    return ShortestPathResult(source=source, distance=distance, parent=parent, settle_order=settle_order)


def probability_cost(probability: float) -> float:
    """Return the Dijkstra cost ``-log p`` of an edge probability."""
    if probability <= 0.0 or probability > 1.0:
        raise ValueError(f"probability must lie in (0, 1], got {probability!r}")
    return -math.log(probability)


def most_probable_paths(
    graph: UncertainGraph,
    source: VertexId,
    edges: Optional[Iterable[Edge]] = None,
) -> Dict[VertexId, float]:
    """Return, for every reachable vertex, the probability of its most probable path.

    This is the cheap reachability lower bound of Khan et al. discussed
    in the paper's related-work section: the probability that *one
    specific* path exists is a lower bound on the reachability
    probability.
    """
    result = dijkstra(graph, source, edges=edges)
    return {vertex: math.exp(-cost) for vertex, cost in result.distance.items()}


def most_probable_path(
    graph: UncertainGraph,
    source: VertexId,
    target: VertexId,
    edges: Optional[Iterable[Edge]] = None,
) -> Tuple[Optional[List[VertexId]], float]:
    """Return the most probable path between two vertices and its probability.

    Returns ``(None, 0.0)`` when the vertices are disconnected.
    """
    result = dijkstra(graph, source, edges=edges)
    path = result.path_to(target)
    if path is None:
        return None, 0.0
    return path, math.exp(-result.distance[target])

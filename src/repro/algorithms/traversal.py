"""Graph traversal primitives: BFS orders, BFS trees, connected components.

These are the building blocks of the F-tree construction and of the
Monte-Carlo estimators.  All functions accept either a full
:class:`~repro.graph.uncertain_graph.UncertainGraph` or a restriction of
it to a subset of edges (via the ``edges`` argument), which avoids
materialising subgraph copies in the selection inner loops.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set

from repro.exceptions import VertexNotFoundError
from repro.graph.uncertain_graph import UncertainGraph
from repro.types import Edge, VertexId


def _adjacency(
    graph: UncertainGraph, edges: Optional[Iterable[Edge]] = None
) -> Dict[VertexId, Set[VertexId]]:
    """Build an adjacency map, optionally restricted to a subset of edges."""
    if edges is None:
        return {v: set(graph.neighbors(v)) for v in graph.vertices()}
    adjacency: Dict[VertexId, Set[VertexId]] = {v: set() for v in graph.vertices()}
    for edge in edges:
        adjacency[edge.u].add(edge.v)
        adjacency[edge.v].add(edge.u)
    return adjacency


def bfs_order(
    graph: UncertainGraph,
    source: VertexId,
    edges: Optional[Iterable[Edge]] = None,
) -> List[VertexId]:
    """Return vertices in breadth-first order from ``source``."""
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    adjacency = _adjacency(graph, edges)
    order: List[VertexId] = []
    seen = {source}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        order.append(current)
        for neighbor in adjacency[current]:
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return order


def bfs_tree(
    graph: UncertainGraph,
    source: VertexId,
    edges: Optional[Iterable[Edge]] = None,
) -> Dict[VertexId, Optional[VertexId]]:
    """Return a BFS predecessor map ``vertex -> parent`` rooted at ``source``.

    The source maps to ``None``; unreachable vertices are absent.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    adjacency = _adjacency(graph, edges)
    parents: Dict[VertexId, Optional[VertexId]] = {source: None}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in adjacency[current]:
            if neighbor not in parents:
                parents[neighbor] = current
                queue.append(neighbor)
    return parents


def connected_component(
    graph: UncertainGraph,
    source: VertexId,
    edges: Optional[Iterable[Edge]] = None,
) -> Set[VertexId]:
    """Return the set of vertices connected to ``source``."""
    return set(bfs_order(graph, source, edges))


def connected_components(
    graph: UncertainGraph, edges: Optional[Iterable[Edge]] = None
) -> List[Set[VertexId]]:
    """Return all connected components as a list of vertex sets."""
    adjacency = _adjacency(graph, edges)
    seen: Set[VertexId] = set()
    components: List[Set[VertexId]] = []
    for vertex in adjacency:
        if vertex in seen:
            continue
        component = {vertex}
        queue = deque([vertex])
        seen.add(vertex)
        while queue:
            current = queue.popleft()
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    component.add(neighbor)
                    queue.append(neighbor)
        components.append(component)
    return components


def is_connected(graph: UncertainGraph, edges: Optional[Iterable[Edge]] = None) -> bool:
    """Return True if the (sub)graph is connected (the empty graph counts as connected)."""
    if graph.n_vertices == 0:
        return True
    first = next(iter(graph.vertices()))
    return len(connected_component(graph, first, edges)) == graph.n_vertices


def shortest_hop_path(
    graph: UncertainGraph,
    source: VertexId,
    target: VertexId,
    edges: Optional[Iterable[Edge]] = None,
) -> Optional[List[VertexId]]:
    """Return a minimum-hop path from ``source`` to ``target``, or None.

    The path includes both endpoints; ``[source]`` is returned when the
    two vertices coincide.
    """
    if not graph.has_vertex(target):
        raise VertexNotFoundError(target)
    if source == target:
        return [source]
    parents = bfs_tree(graph, source, edges)
    if target not in parents:
        return None
    path = [target]
    while path[-1] != source:
        parent = parents[path[-1]]
        assert parent is not None
        path.append(parent)
    path.reverse()
    return path

"""Disjoint-set (union-find) data structure with path compression and union by rank."""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set


class UnionFind:
    """Classic disjoint-set forest.

    Elements are arbitrary hashable objects and are added lazily on first
    use, so the structure can track graph vertices directly.
    """

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._count = 0
        for element in elements:
            self.add(element)

    def add(self, element: Hashable) -> None:
        """Register ``element`` as a singleton set (no-op if already present)."""
        if element not in self._parent:
            self._parent[element] = element
            self._rank[element] = 0
            self._count += 1

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of ``element``'s set."""
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # path compression
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets containing ``a`` and ``b``.

        Returns True if a merge happened, False if they were already in
        the same set.
        """
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        self._count -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Return True if ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    @property
    def n_sets(self) -> int:
        """Number of disjoint sets currently tracked."""
        return self._count

    def sets(self) -> List[Set[Hashable]]:
        """Return all disjoint sets as a list of Python sets."""
        groups: Dict[Hashable, Set[Hashable]] = {}
        for element in self._parent:
            groups.setdefault(self.find(element), set()).add(element)
        return list(groups.values())

"""Maximum-probability spanning trees.

The paper's Dijkstra baseline interconnects the network with a
shortest-path spanning tree over the transformed costs ``-log P(e)``
(Section 7.2): in each iteration the tree reaching the settled vertices
maximises the connection probability between the query vertex and every
vertex it spans.  :func:`dijkstra_spanning_edges` exposes the edges of
that tree in the order Dijkstra settles their far endpoints, which is
exactly the order in which the baseline spends its edge budget.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.algorithms.shortest_path import dijkstra
from repro.graph.uncertain_graph import UncertainGraph
from repro.types import Edge, VertexId


def dijkstra_spanning_edges(
    graph: UncertainGraph,
    source: VertexId,
    limit: Optional[int] = None,
    edges: Optional[Iterable[Edge]] = None,
) -> List[Edge]:
    """Return the edges of the maximum-probability spanning tree rooted at ``source``.

    Edges are listed in the order their far endpoint is settled by
    Dijkstra, so the first ``k`` entries are the edges the Dijkstra
    baseline activates for a budget of ``k``.

    Parameters
    ----------
    graph:
        The uncertain graph.
    source:
        Root of the tree (the query vertex ``Q``).
    limit:
        Optional maximum number of edges to return.
    edges:
        Optional restriction of the candidate edge set.
    """
    result = dijkstra(graph, source, edges=edges)
    spanning: List[Edge] = []
    for vertex in result.settle_order:
        if limit is not None and len(spanning) >= limit:
            break
        parent = result.parent.get(vertex)
        if parent is None:
            continue
        spanning.append(Edge(parent, vertex))
    return spanning


def maximum_probability_spanning_tree(
    graph: UncertainGraph,
    source: VertexId,
    edges: Optional[Iterable[Edge]] = None,
) -> UncertainGraph:
    """Return the maximum-probability spanning tree of ``source``'s component as a graph."""
    tree_edges = dijkstra_spanning_edges(graph, source, edges=edges)
    return graph.edge_subgraph(tree_edges, keep_all_vertices=True, name=f"{graph.name}-mpst")

"""``repro.runtime`` — the unified, scoped Session API.

Four generations of scaling work (pluggable sampling backends, CRN
candidate scoring, sharded executors, the batched query service) each
added its own process-wide knob, ending at five independent globals
(``set_default_backend``, ``set_default_crn``, ``set_default_executor``,
``set_default_shard_size``, ``set_default_world_cache``) plus the same
six kwargs re-threaded through every entry point.  This module collapses
that surface into one typed, scoped runtime object:

* :class:`RuntimeConfig` — a frozen dataclass bundling every knob:
  sampling backend, CRN mode, workers/executor spec, shard size, the
  default sample budget (fixed or ``"auto"`` with
  :class:`~repro.parallel.AdaptiveSettings`), the default seed, and the
  world-cache spec.
* :class:`Session` — a facade that owns the resolved executor and world
  cache for one scope and exposes the full workload as methods:
  :meth:`~Session.expected_flow`, :meth:`~Session.pair_reachability`,
  :meth:`~Session.component_reachability`, :meth:`~Session.select`,
  :meth:`~Session.batch`, :meth:`~Session.evaluate_flow`,
  :meth:`~Session.run_figure`.
* :func:`session` — the one-liner entry point::

      import repro

      with repro.session(backend="naive", workers=4, seed=7) as s:
          flow = s.expected_flow(graph, query, n_samples=2000)
          result = s.select(graph, query, budget=20, algorithm="FT+M")

Scoping
-------
Sessions are **contextvar-scoped**: entering ``with repro.session(...)``
activates the configuration for the current thread (or asyncio task)
only, nested sessions merge over their parents field by field, and
exiting restores the enclosing configuration exactly — which makes
configuration safe in threaded services where two requests must not see
each other's knobs.  ``with session:`` ties the scope to the session's
*lifecycle* (the last exit closes it); a long-lived session shared
across sequential requests should instead call its workload methods
directly (each call scopes itself) or use ``with session.activate():``,
which scopes without closing — the owner calls :meth:`Session.close`
at shutdown.  Inside an active session, every legacy entry point
(``monte_carlo_expected_flow``, ``make_selector``, ``BatchEvaluator``,
``EvaluationContext``, ``ComponentSampler``, the experiment harness)
resolves its unspecified ``backend=None`` / ``crn=None`` /
``executor=None`` / ``shard_size=None`` / ``cache=None`` arguments from
the session, so existing code composes with sessions without signature
changes.

Resolution order for every knob: explicit call argument → innermost
active session → :data:`repro.runtime.defaults` (the process-wide
fallback store) → built-in library default.

Determinism
-----------
A session changes *where* configuration comes from, never *what* is
computed: for a fixed ``(seed, backend, shard plan)``, every ``Session``
method reproduces the exact bits of the corresponding legacy
estimator/selector/service call (pinned by
``tests/test_runtime_scoping.py``).

Lifecycle
---------
A session built with an integer ``workers`` spec owns the resulting
executor, and one built with an integer ``world_cache`` bound owns that
private cache; :meth:`Session.close` (or context-manager exit) shuts the
pool down and drops the cache's entries.  Shared instances passed in are
left running for their owners, mirroring
:class:`~repro.service.BatchEvaluator`.

Migrating from ``set_default_*``
--------------------------------
The five legacy globals still work but emit :class:`DeprecationWarning`
and now write to the one :data:`defaults` store:

===============================  =============================================
legacy call                      replacement
===============================  =============================================
``set_default_backend("naive")``     ``with repro.session(backend="naive"):``
``set_default_crn(False)``           ``with repro.session(crn=False):``
``set_default_executor(4)``          ``with repro.session(workers=4):``
``set_default_shard_size(128)``      ``with repro.session(shard_size=128):``
``set_default_world_cache(cache)``   ``with repro.session(world_cache=cache):``
===============================  =============================================

For a genuinely process-wide default, assign the matching field of
:data:`repro.runtime.defaults` directly (no warning, no scoping).
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro._runtime_state import (
    UNSET,
    EffectiveConfig,
    RuntimeDefaults,
    activate,
    current_effective,
    current_session,
    deactivate,
    defaults,
    pop_entry,
    push_entry,
)
from repro.parallel.adaptive import AUTO_SAMPLES, AdaptiveSettings
from repro.parallel.executor import (
    ExecutorLike,
    SamplingExecutor,
    make_executor,
    parse_remote_spec,
)
from repro.parallel.plan import get_default_shard_size
from repro.reachability.backends import backend_names, get_default_backend
from repro.reachability.estimators import FlowEstimate, ReachabilityEstimate
from repro.reachability.monte_carlo import (
    monte_carlo_component_reachability,
    monte_carlo_expected_flow,
    monte_carlo_reachability,
)
from repro.rng import SeedLike
from repro.selection.base import SelectionResult
from repro.selection.registry import get_default_crn, make_selector
from repro.service.cache import CacheLike, WorldCache
from repro.service.evaluator import BatchEvaluator
from repro.service.requests import QueryRequest, QueryResult
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.types import Edge, VertexId


@dataclass(frozen=True)
class RuntimeConfig:
    """Every runtime knob of the estimation stack in one frozen object.

    Each field defaults to ``None`` = "unset": resolution falls through
    to the enclosing session, then :data:`repro.runtime.defaults`, then
    the built-in library default — so a config only pins what it names.

    Attributes
    ----------
    backend:
        Sampling-backend registry name (see
        :data:`repro.reachability.backends.BACKEND_NAMES`); built-in
        default ``"vectorized"``.
    crn:
        Common-random-numbers candidate scoring for the sampling-based
        selectors; built-in default ``True``.  ``False`` restores the
        paper's literal per-candidate resampling reference mode.
    workers:
        Sharded-sampling spec: ``None`` leaves the knob unset (inherit
        from the enclosing session / defaults store — normally the
        unsharded historical stream), ``0`` pins **explicitly unsharded**
        sampling even inside an outer sharded session, a positive worker
        count builds an executor the session *owns* and closes (``1`` =
        sharded serial reference, more = process pool), and a
        :class:`~repro.parallel.SamplingExecutor` instance is shared.
    shard_size:
        Worlds per shard when an executor is active.  Part of the
        determinism key ``(seed, n_samples, shard_size)``.
    n_samples:
        Default Monte-Carlo sample budget for session methods: a
        positive integer, or ``"auto"`` for adaptive CI-driven stopping
        (see :class:`~repro.parallel.AdaptiveSettings`).
    adaptive:
        Stopping rule used when ``n_samples="auto"``.
    seed:
        Default seed for session methods that are not handed one.
    world_cache:
        World-cache spec for service-backed evaluation: ``None`` shares
        the ambient default cache, ``0`` disables caching, a positive
        integer builds a session-private cache with that entry bound
        (owned: dropped at :meth:`Session.close`), an instance is shared.
    telemetry:
        Observability spec: ``None`` inherits the ambient pipeline
        (normally disabled), ``True`` builds a session-owned
        metrics-only :class:`~repro.telemetry.Telemetry` (closed with
        the session), ``False`` pins telemetry **off** even inside an
        enabled outer scope, an instance is shared.
    profile:
        Resource profiling: ``True`` makes the session's telemetry a
        :class:`~repro.telemetry.profile.ProfilingTelemetry`, so every
        span additionally carries CPU time, tracemalloc allocation
        deltas and GC-collection counts.  Requires telemetry (combining
        ``profile=True`` with ``telemetry=False`` raises); when the
        ``telemetry`` field names an instance it must already be a
        profiling pipeline.  ``None``/``False`` leave the pipeline
        exactly as the ``telemetry`` field says — results are
        bit-for-bit identical either way, profiling only adds
        measurement.
    """

    backend: Optional[str] = None
    crn: Optional[bool] = None
    workers: ExecutorLike = None
    shard_size: Optional[int] = None
    n_samples: Optional[object] = None
    adaptive: Optional[AdaptiveSettings] = None
    seed: SeedLike = None
    world_cache: CacheLike = None
    telemetry: Optional[object] = None
    profile: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.backend is not None:
            if not isinstance(self.backend, str):
                raise TypeError(
                    f"RuntimeConfig.backend must be a registry name or None, "
                    f"got {self.backend!r}"
                )
            if self.backend not in backend_names():
                raise ValueError(
                    f"unknown sampling backend {self.backend!r}; "
                    f"expected one of {backend_names()}"
                )
        if self.crn is not None and not isinstance(self.crn, bool):
            raise TypeError(f"RuntimeConfig.crn must be a bool or None, got {self.crn!r}")
        if isinstance(self.workers, bool):
            raise TypeError("RuntimeConfig.workers must be a count or executor, not bool")
        if isinstance(self.workers, int) and self.workers < 0:
            raise ValueError(
                f"RuntimeConfig.workers must be >= 0 (0 pins unsharded sampling), "
                f"got {self.workers!r}"
            )
        if isinstance(self.workers, str):
            # "remote:HOST:PORT" — validated eagerly so a typo fails at
            # config construction, not when the session builds the
            # coordinator; the distributed tier itself stays unimported
            parse_remote_spec(self.workers)
        elif self.workers is not None and not isinstance(self.workers, (int, SamplingExecutor)):
            raise TypeError(
                f"cannot interpret {self.workers!r} as a workers/executor spec"
            )
        if self.shard_size is not None and self.shard_size <= 0:
            raise ValueError(
                f"RuntimeConfig.shard_size must be positive, got {self.shard_size!r}"
            )
        if self.n_samples is not None:
            if isinstance(self.n_samples, str):
                if self.n_samples != AUTO_SAMPLES:
                    raise ValueError(
                        f"RuntimeConfig.n_samples must be a positive integer or "
                        f"{AUTO_SAMPLES!r}, got {self.n_samples!r}"
                    )
            elif isinstance(self.n_samples, bool) or not isinstance(self.n_samples, int):
                raise TypeError(
                    f"RuntimeConfig.n_samples must be a positive integer or "
                    f"{AUTO_SAMPLES!r}, got {self.n_samples!r}"
                )
            elif self.n_samples <= 0:
                raise ValueError(
                    f"RuntimeConfig.n_samples must be positive, got {self.n_samples!r}"
                )
        if self.adaptive is not None and not isinstance(self.adaptive, AdaptiveSettings):
            raise TypeError(
                f"RuntimeConfig.adaptive must be AdaptiveSettings or None, "
                f"got {self.adaptive!r}"
            )
        if isinstance(self.world_cache, bool):
            raise TypeError("RuntimeConfig.world_cache must be a bound or cache, not bool")
        if isinstance(self.world_cache, int) and self.world_cache < 0:
            raise ValueError(
                f"RuntimeConfig.world_cache must be >= 0, got {self.world_cache!r}"
            )
        if self.world_cache is not None and not isinstance(self.world_cache, (int, WorldCache)):
            raise TypeError(
                f"cannot interpret {self.world_cache!r} as a world-cache spec"
            )
        if self.telemetry is not None and not isinstance(self.telemetry, (bool, Telemetry)):
            raise TypeError(
                f"RuntimeConfig.telemetry must be None, a bool or a Telemetry "
                f"instance, got {self.telemetry!r}"
            )
        if self.profile is not None and not isinstance(self.profile, bool):
            raise TypeError(
                f"RuntimeConfig.profile must be a bool or None, got {self.profile!r}"
            )
        if self.profile:
            if self.telemetry is False:
                raise ValueError(
                    "RuntimeConfig.profile=True requires telemetry; "
                    "telemetry=False pins the pipeline off"
                )
            if isinstance(self.telemetry, Telemetry) and not getattr(
                self.telemetry, "profiling", False
            ):
                raise ValueError(
                    "RuntimeConfig.profile=True with a telemetry instance "
                    "requires a ProfilingTelemetry; got "
                    f"{type(self.telemetry).__name__}"
                )

    def replace(self, **changes) -> "RuntimeConfig":
        """Return a copy with the named fields replaced (re-validated)."""
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe summary of the config (for BENCH payloads and logs).

        Executor and cache instances are reduced to their worker count /
        entry bound; a non-integer seed is rendered as its ``repr``.
        """
        workers = self.workers
        if isinstance(workers, SamplingExecutor):
            workers = workers.workers
        cache = self.world_cache
        if isinstance(cache, WorldCache):
            cache = cache.max_entries
        seed = self.seed
        if seed is not None and not isinstance(seed, int):
            seed = repr(seed)
        adaptive = (
            dataclasses.asdict(self.adaptive) if self.adaptive is not None else None
        )
        telemetry = self.telemetry
        if isinstance(telemetry, Telemetry):
            telemetry = telemetry.enabled
        return {
            "backend": self.backend,
            "crn": self.crn,
            "workers": workers,
            "shard_size": self.shard_size,
            "n_samples": self.n_samples,
            "adaptive": adaptive,
            "seed": seed,
            "world_cache": cache,
            "telemetry": telemetry,
            "profile": self.profile,
        }


class Session:
    """A scoped runtime: one resolved configuration plus owned resources.

    Build one from a :class:`RuntimeConfig` (and/or keyword overrides)
    and either use it as a context manager — activating it for the
    current thread so every library call inside resolves its unspecified
    knobs from it — or call its workload methods directly; each method
    activates the session for the duration of the call.

    Parameters
    ----------
    config:
        Base configuration (defaults to an all-unset
        :class:`RuntimeConfig`).
    **overrides:
        Field overrides applied on top of ``config`` via
        :meth:`RuntimeConfig.replace`.

    Notes
    -----
    An integer ``workers`` spec builds an executor the session **owns**
    (its process pool is shut down by :meth:`close` / context exit); an
    integer ``world_cache`` bound builds an owned private cache (cleared
    at close).  Instances passed in are shared and left alone.  A closed
    session refuses further use.
    """

    def __init__(self, config: Optional[RuntimeConfig] = None, **overrides) -> None:
        base = config if config is not None else RuntimeConfig()
        if not isinstance(base, RuntimeConfig):
            raise TypeError(f"config must be a RuntimeConfig or None, got {base!r}")
        if overrides:
            base = base.replace(**overrides)
        self.config = base
        # workers == 0 pins explicitly unsharded sampling (an effective
        # executor of None, overriding any enclosing session's pool)
        self._force_unsharded = base.workers == 0 and isinstance(base.workers, int)
        # count and "remote:HOST:PORT" specs build an executor here, so
        # the session owns (and closes) it; instances are shared
        self._owns_executor = (
            isinstance(base.workers, int) and base.workers > 0
        ) or isinstance(base.workers, str)
        self._executor: Optional[SamplingExecutor] = (
            None if self._force_unsharded else make_executor(base.workers)
        )
        spec = base.world_cache
        self._owns_cache = isinstance(spec, int) and spec > 0
        if spec is None:
            self._cache = UNSET  # defer to the enclosing session / defaults store
        elif isinstance(spec, WorldCache):
            self._cache = spec
        elif spec == 0:
            self._cache = None  # caching explicitly disabled in this scope
        else:
            self._cache = WorldCache(max_entries=spec)
        tspec = base.telemetry
        if base.profile:
            # profiling needs a profiling span pipeline: build an owned
            # one for None/True specs; a passed instance is already a
            # ProfilingTelemetry (validated by RuntimeConfig) and shared
            from repro.telemetry.profile import ProfilingTelemetry

            if tspec is None or tspec is True:
                self._owns_telemetry = True
                self._telemetry = ProfilingTelemetry()
            else:
                self._owns_telemetry = False
                self._telemetry = tspec
        else:
            self._owns_telemetry = tspec is True
            if tspec is None:
                self._telemetry = UNSET  # inherit the ambient pipeline
            elif tspec is False:
                self._telemetry = NULL_TELEMETRY  # pinned off in this scope
            elif tspec is True:
                self._telemetry = Telemetry()
            else:
                self._telemetry = tspec
        self._evaluator: Optional[BatchEvaluator] = None
        # lifecycle bookkeeping: activation tokens must be reset in the
        # context that created them, so entries live on a context-local
        # stack (see _runtime_state.push_entry); the entry and in-flight
        # counts are shared across threads so a session used concurrently
        # only releases its resources after the last exit AND the last
        # in-flight workload call have drained — close() marks the
        # session closed immediately (rejecting new work) but never pulls
        # the pool out from under a running call
        self._entry_lock = threading.Lock()
        self._entry_count = 0
        self._inflight = 0
        self._close_pending = False
        self._released = False
        self.closed = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else ("active" if self._entry_count else "idle")
        return f"<Session {state} config={self.config.as_dict()!r}>"

    # ------------------------------------------------------------------
    # scoping
    # ------------------------------------------------------------------
    def _effective_now(self) -> EffectiveConfig:
        """Merge this session's pinned knobs over the enclosing activation."""
        outer = current_effective()

        def merged(own, field):
            if own is not UNSET:
                return own
            return getattr(outer, field) if outer is not None else UNSET

        cfg = self.config
        if self._force_unsharded:
            executor = None  # workers=0: pinned unsharded, never inherited
        elif self._executor is not None:
            executor = self._executor
        else:
            executor = UNSET
        return EffectiveConfig(
            backend=merged(cfg.backend if cfg.backend is not None else UNSET, "backend"),
            crn=merged(cfg.crn if cfg.crn is not None else UNSET, "crn"),
            executor=merged(executor, "executor"),
            shard_size=merged(
                cfg.shard_size if cfg.shard_size is not None else UNSET, "shard_size"
            ),
            world_cache=merged(self._cache, "world_cache"),
            telemetry=merged(self._telemetry, "telemetry"),
            n_samples=merged(
                cfg.n_samples if cfg.n_samples is not None else UNSET, "n_samples"
            ),
            adaptive=merged(
                cfg.adaptive if cfg.adaptive is not None else UNSET, "adaptive"
            ),
            seed=merged(cfg.seed if cfg.seed is not None else UNSET, "seed"),
        )

    @contextlib.contextmanager
    def _use(self):
        """Activate the session for the duration of one method call.

        Registers the call as in-flight so a concurrent :meth:`close`
        (or the owner's ``with`` exit) defers resource release until the
        call completes instead of shutting the pool down underneath it.
        """
        with self._entry_lock:
            if self.closed:
                raise RuntimeError("this Session is closed; build a new one")
            self._inflight += 1
        token = activate(self, self._effective_now())
        try:
            yield
        finally:
            deactivate(token)
            with self._entry_lock:
                self._inflight -= 1
                release = self._take_release_locked()
            if release:
                self._release_resources()

    def __enter__(self) -> "Session":
        with self._entry_lock:
            if self.closed:
                raise RuntimeError("this Session is closed; build a new one")
            self._entry_count += 1
        token = activate(self, self._effective_now())
        push_entry(self, token)
        return self

    def __exit__(self, *exc_info) -> None:
        deactivate(pop_entry(self))
        with self._entry_lock:
            self._entry_count -= 1
            last_exit = self._entry_count == 0
        if last_exit:
            self.close()

    @contextlib.contextmanager
    def activate(self):
        """Make the session ambient for a scope *without* lifecycle ownership.

        ``with session:`` ties activation to the session's lifecycle —
        the last exit closes it, which is right for the common
        one-session-per-scope use but wrong for a session shared across
        sequential requests (the first quiet moment would shut the pool
        down).  ``with session.activate():`` is the sharing-safe
        spelling: it scopes the configuration exactly like ``with
        session:`` but never closes; whoever built the session calls
        :meth:`close` when the service shuts down.  (Calling the
        session's workload methods directly is equally safe — each call
        activates the session just for its own duration.)
        """
        with self._use():
            yield self

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def executor(self) -> Optional[SamplingExecutor]:
        """The session's resolved executor (``None`` when deferred/unsharded)."""
        return self._executor

    @property
    def world_cache(self) -> Optional[WorldCache]:
        """The session's own cache (``None`` when deferred or disabled)."""
        return self._cache if self._cache is not UNSET else None

    @property
    def telemetry(self) -> Optional[Telemetry]:
        """The session's resolved pipeline (``None`` when inherited)."""
        return self._telemetry if self._telemetry is not UNSET else None

    @property
    def evaluator(self) -> BatchEvaluator:
        """The session's lazily built batch evaluator (shared by :meth:`batch`).

        Built with all-unset specs, so it resolves backend, executor,
        shard size and cache from this session at every call — use it
        inside ``with session:`` (or via :meth:`batch` / :meth:`warm`,
        which activate the session themselves).  The lazy build is
        guarded so concurrent first calls from a shared session get one
        evaluator (and therefore one set of stats), not two.

        Admission control lives in :meth:`_use` — this property only
        refuses once the session's resources are actually *released*, so
        a ``batch()`` call admitted before a concurrent :meth:`close`
        still reaches its evaluator and completes (the documented drain
        guarantee).
        """
        with self._entry_lock:
            if self._released:
                raise RuntimeError("this Session is closed; build a new one")
            if self._evaluator is None:
                self._evaluator = BatchEvaluator()
            return self._evaluator

    def close(self) -> None:
        """Close the session and release owned resources (idempotent).

        The session is marked closed immediately — new ``with`` entries
        and workload calls are rejected — but resource release (shutting
        down an owned executor's worker processes, dropping an owned
        private cache's entries) is deferred until every in-flight
        workload call and every open ``with`` entry has drained, so a
        concurrent request on a shared session completes instead of
        losing its pool mid-computation.  Shared executor/cache instances
        are left running for their owners.  Exiting the outermost ``with
        session:`` block calls this automatically.
        """
        with self._entry_lock:
            self.closed = True
            self._close_pending = True
            release = self._take_release_locked()
        if release:
            self._release_resources()

    def _take_release_locked(self) -> bool:
        """Claim the one-shot resource release if everything has drained."""
        ready = (
            self._close_pending
            and not self._released
            and self._inflight == 0
            and self._entry_count == 0
        )
        if ready:
            self._released = True
        return ready

    def _release_resources(self) -> None:
        if self._evaluator is not None:
            self._evaluator.close()
            self._evaluator = None
        if self._owns_executor and self._executor is not None:
            self._executor.close()
        if self._owns_cache and isinstance(self._cache, WorldCache):
            self._cache.clear()
        if self._owns_telemetry and isinstance(self._telemetry, Telemetry):
            self._telemetry.close()

    # ------------------------------------------------------------------
    # knob resolution for the workload methods.  All four helpers run
    # inside ``_use()``, so ``current_effective()`` is this session's view
    # merged over its parents — nested sessions inherit the policy fields
    # (n_samples, adaptive, seed) exactly like the ambient knobs.
    # ------------------------------------------------------------------
    @staticmethod
    def _effective_field(field):
        effective = current_effective()
        value = getattr(effective, field) if effective is not None else UNSET
        return None if value is UNSET else value

    def _resolve_samples(self, n_samples):
        """Explicit argument → session chain → library default (1000)."""
        if n_samples is not None:
            return n_samples
        inherited = self._effective_field("n_samples")
        return inherited if inherited is not None else 1000

    def _resolve_int_samples(self, n_samples, default: int) -> int:
        value = n_samples if n_samples is not None else self._effective_field("n_samples")
        if value is None:
            return default
        if isinstance(value, str):
            raise ValueError(
                "adaptive n_samples='auto' applies to the estimators; pass an "
                "integer n_samples for selection/evaluation"
            )
        return int(value)

    def _resolve_seed(self, seed: SeedLike) -> SeedLike:
        return seed if seed is not None else self._effective_field("seed")

    def _resolve_adaptive(self, adaptive):
        return adaptive if adaptive is not None else self._effective_field("adaptive")

    # ------------------------------------------------------------------
    # the workload
    # ------------------------------------------------------------------
    def expected_flow(
        self,
        graph,
        query: VertexId,
        n_samples=None,
        seed: SeedLike = None,
        edges: Optional[Iterable[Edge]] = None,
        include_query: bool = False,
        adaptive: Optional[AdaptiveSettings] = None,
    ) -> FlowEstimate:
        """Monte-Carlo expected information flow under this session's config.

        Bit-for-bit identical to
        :func:`repro.reachability.monte_carlo_expected_flow` called with
        the session's resolved knobs.
        """
        with self._use():
            return monte_carlo_expected_flow(
                graph,
                query,
                n_samples=self._resolve_samples(n_samples),
                seed=self._resolve_seed(seed),
                edges=edges,
                include_query=include_query,
                adaptive=self._resolve_adaptive(adaptive),
            )

    def pair_reachability(
        self,
        graph,
        source: VertexId,
        target: VertexId,
        n_samples=None,
        seed: SeedLike = None,
        edges: Optional[Iterable[Edge]] = None,
        adaptive: Optional[AdaptiveSettings] = None,
    ) -> ReachabilityEstimate:
        """Two-terminal reachability ``P(source ↔ target)`` under this session."""
        with self._use():
            return monte_carlo_reachability(
                graph,
                source,
                target,
                n_samples=self._resolve_samples(n_samples),
                seed=self._resolve_seed(seed),
                edges=edges,
                adaptive=self._resolve_adaptive(adaptive),
            )

    def component_reachability(
        self,
        graph,
        anchor: VertexId,
        vertices: Iterable[VertexId],
        edges: Iterable[Edge],
        n_samples=None,
        seed: SeedLike = None,
    ) -> Dict[VertexId, float]:
        """Per-vertex reachability of one edge-induced component."""
        with self._use():
            return monte_carlo_component_reachability(
                graph,
                anchor,
                vertices,
                edges,
                n_samples=self._resolve_int_samples(n_samples, 1000),
                seed=self._resolve_seed(seed),
            )

    def select(
        self,
        graph,
        query: VertexId,
        budget: int,
        algorithm: str = "FT+M",
        n_samples=None,
        seed: SeedLike = None,
        **selector_options,
    ) -> SelectionResult:
        """Run one of the paper's edge-selection algorithms under this session.

        Builds the selector through
        :func:`repro.selection.make_selector` with the session's
        resolved sample budget and seed; every other knob (backend, CRN
        mode, executor, shard size) resolves from the active session
        unless overridden via ``selector_options``.
        """
        with self._use():
            selector = make_selector(
                algorithm,
                n_samples=self._resolve_int_samples(n_samples, 1000),
                seed=self._resolve_seed(seed),
                **selector_options,
            )
            return selector.select(graph, query, budget)

    def batch(
        self, graph, requests: Sequence[QueryRequest], warm: bool = False
    ) -> List[QueryResult]:
        """Answer a mixed batch of service queries under this session.

        Routes through the session's shared :attr:`evaluator`, so
        successive batches reuse the session's world cache; ``warm=True``
        pre-samples every needed world batch first (the answering pass is
        then served entirely from cache).
        """
        with self._use():
            evaluator = self.evaluator
            if warm:
                evaluator.warm(graph, requests)
            return evaluator.evaluate(graph, requests)

    def warm(self, graph, requests: Sequence[QueryRequest]) -> Dict[str, float]:
        """Pre-sample every world batch a request batch will need."""
        with self._use():
            return self.evaluator.warm(graph, requests)

    def evaluate_flow(
        self,
        graph,
        edges: Iterable[Edge],
        query: VertexId,
        n_samples=None,
        exact_threshold: int = 14,
        seed: SeedLike = None,
        include_query: bool = False,
    ) -> float:
        """Independently evaluate the expected flow of a selected edge set.

        The harness yardstick
        (:func:`repro.experiments.harness.evaluate_flow`) run under this
        session; its historical defaults (1000 samples, seed 12345) apply
        when neither the call nor the config pins them.
        """
        with self._use():
            from repro.experiments.harness import evaluate_flow

            resolved_seed = self._resolve_seed(seed)
            return evaluate_flow(
                graph,
                edges,
                query,
                n_samples=self._resolve_int_samples(n_samples, 1000),
                exact_threshold=exact_threshold,
                seed=resolved_seed if resolved_seed is not None else 12345,
                include_query=include_query,
            )

    def run_figure(self, figure: str, config=None):
        """Reproduce one of the paper's figures under this session.

        ``figure`` is a key of
        :data:`repro.experiments.figures.ALL_FIGURES`; ``config`` an
        optional :class:`~repro.experiments.ExperimentConfig` forwarded
        to figures that accept one (the variance ablation runs its own
        fixed setting, as on the CLI).
        """
        with self._use():
            from repro.experiments.figures import ALL_FIGURES

            try:
                figure_fn = ALL_FIGURES[figure]
            except KeyError:
                raise ValueError(
                    f"unknown figure {figure!r}; known: {sorted(ALL_FIGURES)}"
                ) from None
            if config is not None and figure != "variance":
                return figure_fn(config=config)
            return figure_fn()


def session(config: Optional[RuntimeConfig] = None, **overrides) -> Session:
    """Build a :class:`Session` from a config and/or keyword overrides.

    The canonical entry point::

        with repro.session(backend="naive", workers=2, seed=7) as s:
            result = s.select(graph, query, budget=20)
    """
    return Session(config, **overrides)


def current_config() -> RuntimeConfig:
    """Snapshot the fully resolved ambient configuration.

    Collapses the whole resolution chain (active session → defaults
    store → built-in defaults) into one concrete :class:`RuntimeConfig`:
    ``workers`` holds the resolved executor instance (or ``None`` for
    unsharded), ``world_cache`` the resolved cache instance — ``None``
    either when a session disabled caching or when the lazily created
    shared default cache simply does not exist yet (snapshotting is
    read-only: it never creates or installs state).  Used by the
    benchmark suite to record the runtime every BENCH JSON was measured
    under.
    """
    effective = current_effective()

    def policy(field):
        value = getattr(effective, field) if effective is not None else UNSET
        return None if value is UNSET else value

    if effective is not None and effective.world_cache is not UNSET:
        cache = effective.world_cache
    else:
        cache = defaults.world_cache  # peek only; may be None until first use
    if effective is not None and effective.executor is not UNSET:
        executor = effective.executor
    else:
        # peek only: get_default_executor() would normalize a raw spec in
        # the store into a live executor (possibly spawning a pool), and a
        # snapshot must never create or install state
        executor = defaults.executor
    if effective is not None and effective.telemetry is not UNSET:
        telemetry = effective.telemetry
    else:
        # peek only; a raw spec in the store (True / a path) is reported
        # as-is when it is a bool, else left out of the snapshot
        telemetry = defaults.telemetry
    if not isinstance(telemetry, (Telemetry, bool, type(None))):
        telemetry = None
    return RuntimeConfig(
        backend=get_default_backend(),
        crn=get_default_crn(),
        workers=executor,
        shard_size=get_default_shard_size(),
        n_samples=policy("n_samples"),
        adaptive=policy("adaptive"),
        seed=policy("seed"),
        world_cache=cache,
        telemetry=telemetry,
    )


__all__ = [
    "RuntimeConfig",
    "RuntimeDefaults",
    "Session",
    "current_config",
    "current_session",
    "defaults",
    "session",
]

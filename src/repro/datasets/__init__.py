"""Named datasets used by the experiments.

The paper evaluates on four real networks (San Joaquin road network,
Facebook social circles, DBLP, YouTube).  Those snapshots are not
redistributable and cannot be downloaded in this offline environment, so
each is replaced by a synthetic surrogate that reproduces the structural
properties the evaluation depends on (locality, density, degree
distribution, probability assignment scheme) — see DESIGN.md §4 for the
substitution argument.  :func:`load_dataset` resolves names to graphs,
and :data:`DATASET_NAMES` lists everything available.
"""

from repro.datasets.registry import (
    DATASET_NAMES,
    DatasetSpec,
    dataset_spec,
    load_dataset,
)
from repro.datasets.surrogates import (
    san_joaquin_surrogate,
    facebook_surrogate,
    dblp_surrogate,
    youtube_surrogate,
)

__all__ = [
    "DATASET_NAMES",
    "DatasetSpec",
    "dataset_spec",
    "load_dataset",
    "san_joaquin_surrogate",
    "facebook_surrogate",
    "dblp_surrogate",
    "youtube_surrogate",
]

"""Synthetic surrogates for the paper's real-world datasets.

Each surrogate mirrors the structural properties that drive the paper's
conclusions (see DESIGN.md §4 for the full substitution argument) while
being generated locally at a configurable scale:

* :func:`san_joaquin_surrogate` — the road network: planar, degree ≈ 2.6,
  strong locality, communication probability ``exp(-0.001 · distance)``;
* :func:`facebook_surrogate` — the social-circles snapshot: dense, no
  locality, each user has ~10 high-probability "close friends";
* :func:`dblp_surrogate` — the co-authorship network: a union of paper
  cliques, sparse, clustered, no locality;
* :func:`youtube_surrogate` — the friendship network: sparse, heavy-tailed
  degrees, no locality.
"""

from __future__ import annotations

import math

from repro.graph.generators import (
    collaboration_graph,
    grid_road_graph,
    preferential_attachment_graph,
    social_circle_graph,
)
from repro.graph.uncertain_graph import UncertainGraph
from repro.rng import SeedLike


def san_joaquin_surrogate(
    n_vertices: int = 400, seed: SeedLike = 0
) -> UncertainGraph:
    """Road-network surrogate (paper: San Joaquin County, 18,263 vertices).

    A jittered planar grid of road intersections whose edge probabilities
    follow the paper's distance-decay law ``exp(-0.001 · metres)``.
    """
    side = max(2, int(math.sqrt(max(4, n_vertices))))
    graph = grid_road_graph(
        rows=side,
        cols=side,
        cell_length_m=500.0,
        decay_per_m=0.001,
        seed=seed,
        name="san-joaquin-surrogate",
    )
    return graph


def facebook_surrogate(n_vertices: int = 300, seed: SeedLike = 0) -> UncertainGraph:
    """Social-circles surrogate (paper: 535 users, ~10k edges).

    Dense graph with ten high-probability (``[0.5, 1.0]``) close-friend
    edges per vertex and low-probability (``(0, 0.5]``) acquaintance
    edges, which is the exact re-weighting the paper applies to the
    Facebook snapshot.
    """
    average_degree = min(float(n_vertices - 1), 36.0)
    graph = social_circle_graph(
        n_vertices,
        average_degree=average_degree,
        close_friends=10,
        seed=seed,
        name="facebook-surrogate",
    )
    return graph


def dblp_surrogate(n_vertices: int = 500, seed: SeedLike = 0) -> UncertainGraph:
    """Collaboration-network surrogate (paper: DBLP, 317k vertices).

    Union of random per-paper author cliques with uniform edge
    probabilities; sparse and highly clustered, no locality.
    """
    return collaboration_graph(
        n_vertices,
        n_papers=int(n_vertices * 1.2),
        authors_per_paper=(2, 5),
        seed=seed,
        name="dblp-surrogate",
    )


def youtube_surrogate(n_vertices: int = 800, seed: SeedLike = 0) -> UncertainGraph:
    """Friendship-network surrogate (paper: YouTube, 1.13M vertices).

    Sparse preferential-attachment graph: heavy-tailed degree
    distribution, small diameter, uniform edge probabilities.
    """
    return preferential_attachment_graph(
        n_vertices,
        edges_per_vertex=3,
        seed=seed,
        name="youtube-surrogate",
    )

"""Dataset registry: resolve dataset names to uncertain graphs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.datasets.surrogates import (
    dblp_surrogate,
    facebook_surrogate,
    san_joaquin_surrogate,
    youtube_surrogate,
)
from repro.exceptions import DatasetError
from repro.graph.generators import (
    erdos_renyi_graph,
    partitioned_graph,
    wsn_graph,
)
from repro.graph.uncertain_graph import UncertainGraph
from repro.rng import SeedLike


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata for a named dataset."""

    name: str
    description: str
    locality: bool
    default_size: int
    paper_reference: str
    builder: Callable[..., UncertainGraph]


def _erdos(n_vertices: int, seed: SeedLike) -> UncertainGraph:
    return erdos_renyi_graph(n_vertices, average_degree=6.0, seed=seed, name="erdos")


def _partitioned(n_vertices: int, seed: SeedLike) -> UncertainGraph:
    return partitioned_graph(n_vertices, degree=6, seed=seed, name="partitioned")


def _wsn_05(n_vertices: int, seed: SeedLike) -> UncertainGraph:
    return wsn_graph(n_vertices, eps=0.05, seed=seed, name="wsn-eps-0.05")


def _wsn_07(n_vertices: int, seed: SeedLike) -> UncertainGraph:
    return wsn_graph(n_vertices, eps=0.07, seed=seed, name="wsn-eps-0.07")


_REGISTRY: Dict[str, DatasetSpec] = {
    "erdos": DatasetSpec(
        name="erdos",
        description="Erdős–Rényi synthetic graph, no locality assumption (Section 7.1)",
        locality=False,
        default_size=1000,
        paper_reference="Fig. 5(b), 6(b), 7(b)",
        builder=_erdos,
    ),
    "partitioned": DatasetSpec(
        name="partitioned",
        description="Ring-of-partitions synthetic graph, locality assumption (Section 7.1)",
        locality=True,
        default_size=1000,
        paper_reference="Fig. 5(a), 6(a), 7(a)",
        builder=_partitioned,
    ),
    "wsn-0.05": DatasetSpec(
        name="wsn-0.05",
        description="Wireless sensor network, connection radius eps=0.05",
        locality=True,
        default_size=1000,
        paper_reference="Fig. 8(a)",
        builder=_wsn_05,
    ),
    "wsn-0.07": DatasetSpec(
        name="wsn-0.07",
        description="Wireless sensor network, connection radius eps=0.07",
        locality=True,
        default_size=1000,
        paper_reference="Fig. 8(b)",
        builder=_wsn_07,
    ),
    "san-joaquin": DatasetSpec(
        name="san-joaquin",
        description="Road network surrogate with exp(-0.001 d) edge probabilities",
        locality=True,
        default_size=400,
        paper_reference="Fig. 9(a)",
        builder=lambda n_vertices, seed: san_joaquin_surrogate(n_vertices, seed=seed),
    ),
    "facebook": DatasetSpec(
        name="facebook",
        description="Dense social-circles surrogate with 10 close friends per user",
        locality=False,
        default_size=300,
        paper_reference="Fig. 9(b)",
        builder=lambda n_vertices, seed: facebook_surrogate(n_vertices, seed=seed),
    ),
    "dblp": DatasetSpec(
        name="dblp",
        description="Co-authorship clique-union surrogate",
        locality=False,
        default_size=500,
        paper_reference="Fig. 9(c)",
        builder=lambda n_vertices, seed: dblp_surrogate(n_vertices, seed=seed),
    ),
    "youtube": DatasetSpec(
        name="youtube",
        description="Sparse heavy-tailed friendship surrogate",
        locality=False,
        default_size=800,
        paper_reference="Fig. 9(d)",
        builder=lambda n_vertices, seed: youtube_surrogate(n_vertices, seed=seed),
    ),
}

#: Names accepted by :func:`load_dataset`.
DATASET_NAMES = tuple(sorted(_REGISTRY))


def dataset_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` for ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_NAMES)}"
        ) from None


def load_dataset(
    name: str, n_vertices: Optional[int] = None, seed: SeedLike = 0
) -> UncertainGraph:
    """Generate the named dataset.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`.
    n_vertices:
        Target number of vertices (defaults to the dataset's
        ``default_size``; surrogates are scaled-down versions of the
        original networks, see DESIGN.md §4).
    seed:
        Random seed for the generator.
    """
    spec = dataset_spec(name)
    size = spec.default_size if n_vertices is None else int(n_vertices)
    if size <= 0:
        raise DatasetError(f"n_vertices must be positive, got {size}")
    return spec.builder(size, seed)

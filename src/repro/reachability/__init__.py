"""Reachability-probability and expected-information-flow estimation.

Computing the probability that two vertices of an uncertain graph are
connected is #P-hard (paper Section 5), so this subpackage offers a
spectrum of estimators:

* :mod:`repro.reachability.monte_carlo` — unbiased whole-graph sampling
  (Lemma 1), the building block of the Naive baseline;
* :mod:`repro.reachability.engine` — the batched possible-world
  sampling engine behind every Monte-Carlo estimator: it indexes the
  (restricted) edge set once, delegates world generation and per-world
  reachability to a pluggable backend, and aggregates the resulting
  boolean world/vertex matrix into flow and reachability estimates;
* :mod:`repro.reachability.layout` — the flat precomputed graph layout:
  :class:`GraphLayout` interns a graph's vertices once into contiguous
  ``edge_u`` / ``edge_v`` / ``probabilities`` arrays plus a CSR
  half-edge adjacency, keyed by ``(graph content digest, ordered edge
  restriction digest)`` in a process-wide LRU so repeated estimator
  calls on the same graph skip all per-call re-interning;
  :meth:`GraphLayout.problem` hands out :class:`SamplingProblem` views
  in O(1).  The cache is invalidated alongside the service tier's
  ``WorldCache`` (same graph-mutation path);
* :mod:`repro.reachability.backends` — the backend registry.  Built-ins:
  ``"naive"`` (one Python BFS per world, the behavioural reference),
  ``"vectorized"`` (a single ``n_samples x n_edges`` NumPy edge-flip
  block plus batched label propagation, the fast default), ``"csr"``
  (frontier-sparse bit-packed propagation over the shared CSR layout —
  per-round work shrinks with the frontier instead of staying ``O(E)``)
  and ``"csr-numba"`` (the same backend pinned to a compiled
  ``@njit`` per-world BFS kernel; registered only when numba is
  importable — ``repro-flow backends`` lists availability).  All consume
  the random stream identically, so estimates are bit-for-bit
  reproducible per seed on every backend; pick one via the ``backend``
  argument of the estimators, :class:`ComponentSampler`,
  ``ExperimentConfig`` or the CLI's ``--backend`` flag;
* :mod:`repro.reachability.context` — the evaluation-context layer
  between the engine and the greedy selectors:
  :class:`EvaluationContext` draws one shared edge-flip matrix per
  selection round (common random numbers) and scores every candidate
  edge set against it with incremental reachability deltas, so a whole
  greedy round is one ``score_candidates`` call, candidate comparisons
  carry no cross-candidate sampling noise, and selections are identical
  across backends per seed.  All selectors use it by default; switch
  back to the paper's literal per-candidate resampling with
  ``crn=False`` (selectors / ``make_selector``), ``ExperimentConfig``,
  or the CLI's ``--resample-per-candidate`` flag;
* :mod:`repro.reachability.exact` — exhaustive possible-world
  enumeration, exact but exponential, used as ground truth for small
  graphs and small bi-connected components;
* :mod:`repro.reachability.analytic` — closed-form reachability for
  mono-connected (tree-like) graphs (Lemma 2 / Theorem 2);
* :mod:`repro.reachability.confidence` — confidence intervals for
  sampled reachability probabilities (Definition 10);
* :mod:`repro.reachability.bounds` — cheap lower/upper bounds from the
  related-work discussion.
"""

from repro.reachability.backends import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    SamplingBackend,
    make_backend,
    register_backend,
)
from repro.reachability.context import CandidateScores, EvaluationContext
from repro.reachability.engine import (
    FlipBatch,
    SamplingEngine,
    WorldBatch,
    aggregate_component_reachability,
    aggregate_expected_flow,
    aggregate_pair_reachability,
)
from repro.reachability.estimators import FlowEstimate, ReachabilityEstimate
from repro.reachability.monte_carlo import (
    MonteCarloFlowEstimator,
    monte_carlo_expected_flow,
    monte_carlo_reachability,
)
from repro.reachability.exact import (
    exact_expected_flow,
    exact_reachability,
    exact_reachability_all,
)
from repro.reachability.analytic import (
    is_mono_connected,
    mono_connected_reachability,
    mono_connected_expected_flow,
)
from repro.reachability.confidence import (
    ConfidenceInterval,
    normal_confidence_interval,
    wilson_confidence_interval,
    flow_confidence_interval,
)
from repro.reachability.bounds import (
    most_probable_path_lower_bound,
    cut_upper_bound,
    reachability_bounds,
)
from repro.reachability.factoring import (
    two_terminal_reliability,
    FactoringBudgetExceeded,
)

__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "SamplingBackend",
    "SamplingEngine",
    "WorldBatch",
    "FlipBatch",
    "aggregate_component_reachability",
    "aggregate_expected_flow",
    "aggregate_pair_reachability",
    "CandidateScores",
    "EvaluationContext",
    "make_backend",
    "register_backend",
    "FlowEstimate",
    "ReachabilityEstimate",
    "MonteCarloFlowEstimator",
    "monte_carlo_expected_flow",
    "monte_carlo_reachability",
    "exact_expected_flow",
    "exact_reachability",
    "exact_reachability_all",
    "is_mono_connected",
    "mono_connected_reachability",
    "mono_connected_expected_flow",
    "ConfidenceInterval",
    "normal_confidence_interval",
    "wilson_confidence_interval",
    "flow_confidence_interval",
    "most_probable_path_lower_bound",
    "cut_upper_bound",
    "reachability_bounds",
    "two_terminal_reliability",
    "FactoringBudgetExceeded",
]

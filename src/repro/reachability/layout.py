"""Shared, digest-cached flat graph layouts for the sampling hot core.

Before this module every engine call re-interned the (restricted) edge
set of its graph into a fresh
:class:`~repro.reachability.backends.base.SamplingProblem` — a Python
loop over every edge, per call, even when the service answered hundreds
of queries against the same graph.  A :class:`GraphLayout` is that
interning paid **once** per ``(graph content, ordered edge restriction)``
pair and reused everywhere:

* contiguous ``edge_u`` / ``edge_v`` / ``probabilities`` arrays plus the
  ``vertex_ids`` tuple, exactly the payload of a sampling problem;
* a lazily-built CSR half-edge adjacency
  (:class:`~repro.reachability.backends.base.CSRAdjacency`), shared by
  the ``csr`` backend so the per-call ``argsort``/``concatenate`` of the
  vectorized backend disappears from the hot path;
* :meth:`GraphLayout.problem` — an O(1) view materializing the
  API-compatible :class:`SamplingProblem` for a given source (and any
  extra vertices), sharing the layout's arrays instead of copying.

Layouts are cached in a :class:`LayoutCache`, a small digest-keyed LRU
mirroring :class:`repro.service.cache.WorldCache`: the key combines the
graph **content** digest (memoized on
:meth:`~repro.graph.uncertain_graph.UncertainGraph.content_digest`) with
the **order-sensitive** digest of the edge restriction, so any graph
mutation moves the key and stale layouts can never be hit.
:meth:`WorldCache.invalidate_graph` calls
:func:`invalidate_graph_layouts` so both caches are reclaimed from the
same mutation path.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.digest import combine_digests, edge_sequence_digest, graph_digest
from repro.reachability.backends.base import (
    CSRAdjacency,
    SamplingProblem,
    build_csr_adjacency,
)
from repro.telemetry import current_telemetry
from repro.types import Edge, VertexId

logger = logging.getLogger(__name__)


@dataclass(frozen=True, eq=False)
class GraphLayout:
    """One graph (restriction) interned to flat arrays, built once and shared.

    Attributes
    ----------
    vertex_ids:
        Tuple mapping contiguous vertex indices back to original ids;
        endpoints are interned in edge first-appearance order.
    edge_u, edge_v:
        Parallel ``int64`` endpoint-index arrays, in restriction order
        (the order the random stream flips edges in).
    probabilities:
        Parallel ``float64`` edge existence probabilities.
    """

    vertex_ids: Tuple[VertexId, ...]
    edge_u: np.ndarray
    edge_v: np.ndarray
    probabilities: np.ndarray

    @property
    def n_vertices(self) -> int:
        """Number of interned vertices."""
        return len(self.vertex_ids)

    @property
    def n_edges(self) -> int:
        """Number of edges."""
        return len(self.probabilities)

    @property
    def _index(self) -> Dict[VertexId, int]:
        index = self.__dict__.get("_index_cache")
        if index is None:
            index = {vertex: i for i, vertex in enumerate(self.vertex_ids)}
            object.__setattr__(self, "_index_cache", index)
        return index

    def csr_adjacency(self) -> CSRAdjacency:
        """The CSR half-edge adjacency, built on first use and cached."""
        cached = self.__dict__.get("_csr_cache")
        if cached is None:
            cached = build_csr_adjacency(self.edge_u, self.edge_v, self.n_vertices)
            object.__setattr__(self, "_csr_cache", cached)
        return cached

    @classmethod
    def from_edges(
        cls, edge_probabilities: Sequence[Tuple[Edge, float]]
    ) -> "GraphLayout":
        """Intern an ordered ``(edge, probability)`` sequence once.

        Endpoints receive contiguous indices in first-appearance order —
        deterministic for a deterministic edge order, which keeps
        layout-built problems (and therefore sampled worlds) identical
        across processes for the same graph content.
        """
        index: Dict[VertexId, int] = {}
        ids: List[VertexId] = []

        def intern(vertex: VertexId) -> int:
            slot = index.get(vertex)
            if slot is None:
                slot = len(ids)
                index[vertex] = slot
                ids.append(vertex)
            return slot

        n_edges = len(edge_probabilities)
        edge_u = np.empty(n_edges, dtype=np.int64)
        edge_v = np.empty(n_edges, dtype=np.int64)
        probabilities = np.empty(n_edges, dtype=np.float64)
        for position, (edge, probability) in enumerate(edge_probabilities):
            edge_u[position] = intern(edge.u)
            edge_v[position] = intern(edge.v)
            probabilities[position] = probability
        layout = cls(
            vertex_ids=tuple(ids),
            edge_u=edge_u,
            edge_v=edge_v,
            probabilities=probabilities,
        )
        object.__setattr__(layout, "_index_cache", index)
        return layout

    def problem(
        self, source: VertexId, extra_vertices: Iterable[VertexId] = ()
    ) -> SamplingProblem:
        """Materialize the sampling-problem view for ``source``.

        When the source and every extra vertex are already interned this
        is O(1): the problem shares the layout's arrays, vertex tuple and
        index dict.  Otherwise the missing vertices are appended (source
        first, then extras in order) onto a copied vertex index — the
        edge arrays are still shared, appended vertices are isolated by
        construction.
        """
        index = self._index
        extras = [v for v in extra_vertices]
        if source in index and all(v in index for v in extras):
            problem = SamplingProblem(
                vertex_ids=self.vertex_ids,
                edge_u=self.edge_u,
                edge_v=self.edge_v,
                probabilities=self.probabilities,
                source=index[source],
                layout=self,
            )
            object.__setattr__(problem, "_index_cache", index)
            return problem
        ids = list(self.vertex_ids)
        extended = dict(index)

        def intern(vertex: VertexId) -> int:
            slot = extended.get(vertex)
            if slot is None:
                slot = len(ids)
                extended[vertex] = slot
                ids.append(vertex)
            return slot

        source_index = intern(source)
        for vertex in extras:
            intern(vertex)
        problem = SamplingProblem(
            vertex_ids=tuple(ids),
            edge_u=self.edge_u,
            edge_v=self.edge_v,
            probabilities=self.probabilities,
            source=source_index,
            layout=self,
        )
        object.__setattr__(problem, "_index_cache", extended)
        return problem


@dataclass(frozen=True)
class LayoutKey:
    """Everything a cached layout is a pure function of.

    ``graph_digest`` covers the full graph content (so any mutation
    moves the key); ``edges_digest`` is the **order-sensitive** digest of
    the edge restriction, ``None`` for the unrestricted graph — the
    same distinction :class:`~repro.service.cache.WorldKey` draws,
    because edge order is the flip order of the random stream.
    """

    graph_digest: int
    edges_digest: Optional[int]

    @property
    def digest(self) -> int:
        """Stable 128-bit digest of the full key."""
        return combine_digests("layout", self.graph_digest, self.edges_digest)


class LayoutCache:
    """Bounded LRU cache of graph layouts with hit/miss/eviction stats.

    A structural sibling of :class:`repro.service.cache.WorldCache`
    (same locking, same ``_by_graph`` secondary index for eager
    invalidation) holding interned layouts instead of sampled worlds.
    Layouts are tiny next to world batches — a few arrays of ``O(E)`` —
    so the default bound is generous relative to how many distinct
    ``(graph, restriction)`` pairs a process works with.
    """

    def __init__(self, max_entries: Optional[int] = 128) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError(f"max_entries must be positive or None, got {max_entries!r}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[int, tuple[LayoutKey, GraphLayout]]" = OrderedDict()
        self._by_graph: Dict[int, Set[int]] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<LayoutCache entries={len(self._entries)}"
            f"/{self.max_entries} hits={self.hits} misses={self.misses}>"
        )

    #: registry namespace the stats are re-emitted under (the world cache
    #: uses ``cache.world`` — see :mod:`repro.service.cache`)
    _metric_prefix = "cache.layout"

    # ------------------------------------------------------------------
    def get(self, key: LayoutKey) -> Optional[GraphLayout]:
        """Return the cached layout for ``key`` (counting a hit or miss)."""
        with self._lock:
            entry = self._entries.get(key.digest)
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
                self._entries.move_to_end(key.digest)
        tel = current_telemetry()
        if tel.enabled:
            tel.count(f"{self._metric_prefix}.{'misses' if entry is None else 'hits'}")
        return None if entry is None else entry[1]

    def put(self, key: LayoutKey, layout: GraphLayout) -> None:
        """Store ``layout`` under ``key``, evicting the LRU entry if needed."""
        digest = key.digest
        evicted = False
        with self._lock:
            self._entries[digest] = (key, layout)
            self._entries.move_to_end(digest)
            self._by_graph.setdefault(key.graph_digest, set()).add(digest)
            if self.max_entries is not None and len(self._entries) > self.max_entries:
                evicted_digest, (evicted_key, _) = self._entries.popitem(last=False)
                self._drop_graph_index(evicted_key.graph_digest, evicted_digest)
                self.evictions += 1
                evicted = True
            entries = len(self._entries)
        tel = current_telemetry()
        if tel.enabled:
            tel.count(f"{self._metric_prefix}.puts")
            if evicted:
                tel.count(f"{self._metric_prefix}.evictions")
            tel.gauge(f"{self._metric_prefix}.entries", entries)

    def _drop_graph_index(self, graph_key: int, digest: int) -> None:
        members = self._by_graph.get(graph_key)
        if members is not None:
            members.discard(digest)
            if not members:
                del self._by_graph[graph_key]

    # ------------------------------------------------------------------
    def invalidate_graph(self, graph_or_digest: Union[int, object]) -> int:
        """Drop every layout interned from the given graph content.

        Accepts a graph (its current content digest is computed) or a
        digest previously obtained from :func:`repro.digest.graph_digest`
        — useful to reclaim entries for the *pre-mutation* content.
        Returns the number of dropped entries.
        """
        digest = _resolve_graph_digest(graph_or_digest)
        with self._lock:
            members = self._by_graph.pop(digest, set())
            for entry_digest in members:
                self._entries.pop(entry_digest, None)
            self.invalidations += len(members)
            dropped = len(members)
        if dropped:
            logger.warning(
                "invalidated %d interned graph layout(s) for graph digest %d",
                dropped,
                digest,
            )
            tel = current_telemetry()
            if tel.enabled:
                tel.count(f"{self._metric_prefix}.invalidations", dropped)
        return dropped

    def clear(self) -> None:
        """Drop every entry and reset all counters."""
        with self._lock:
            self._entries.clear()
            self._by_graph.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.invalidations = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: LayoutKey) -> bool:
        with self._lock:
            return key.digest in self._entries

    def keys(self) -> "list[LayoutKey]":
        """Cached keys, least recently used first (for tests/diagnostics)."""
        with self._lock:
            return [key for key, _ in self._entries.values()]

    def stats(self) -> Dict[str, float]:
        """Hit/miss/eviction statistics for reporting (one consistent view)."""
        with self._lock:
            hits, misses = self.hits, self.misses
            total = hits + misses
            return {
                "entries": float(len(self._entries)),
                "hits": float(hits),
                "misses": float(misses),
                "evictions": float(self.evictions),
                "invalidations": float(self.invalidations),
                "hit_rate": hits / total if total else 0.0,
            }


def _resolve_graph_digest(graph_or_digest: Union[int, object]) -> int:
    """Content digest of a graph, preferring the memoized accessor."""
    if isinstance(graph_or_digest, int):
        return graph_or_digest
    content_digest = getattr(graph_or_digest, "content_digest", None)
    if callable(content_digest):
        return content_digest()
    return graph_digest(graph_or_digest)


#: The process-wide layout cache every ``cache=None`` call resolves to.
_DEFAULT_LAYOUT_CACHE = LayoutCache()


def get_default_layout_cache() -> LayoutCache:
    """Return the shared process-wide :class:`LayoutCache`."""
    return _DEFAULT_LAYOUT_CACHE


def graph_layout(
    graph,
    edges: Optional[Iterable[Edge]] = None,
    cache: Optional[LayoutCache] = None,
) -> GraphLayout:
    """Get-or-build the shared layout of a graph (restriction).

    The one construction entry point: ``SamplingEngine``, the evaluation
    context and the service layer all route problem construction through
    here, so the interning cost is paid once per distinct
    ``(graph content, ordered edge restriction)`` instead of per call.
    ``edges=None`` means the unrestricted graph (edges in insertion
    order, the order the stream flips them in).
    """
    if edges is not None:
        edges = list(edges)
    cache = cache if cache is not None else _DEFAULT_LAYOUT_CACHE
    key = LayoutKey(
        graph_digest=_resolve_graph_digest(graph),
        edges_digest=edge_sequence_digest(edges),
    )
    layout = cache.get(key)
    if layout is None:
        if edges is None:
            pairs = list(graph.probabilities().items())
        else:
            pairs = [(edge, graph.probability(edge)) for edge in edges]
        layout = GraphLayout.from_edges(pairs)
        cache.put(key, layout)
    return layout


def invalidate_graph_layouts(graph_or_digest: Union[int, object]) -> int:
    """Drop the default cache's layouts for one graph content; return the count."""
    return _DEFAULT_LAYOUT_CACHE.invalidate_graph(graph_or_digest)


__all__ = [
    "GraphLayout",
    "LayoutCache",
    "LayoutKey",
    "get_default_layout_cache",
    "graph_layout",
    "invalidate_graph_layouts",
]

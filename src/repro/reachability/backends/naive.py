"""The reference backend: one possible world at a time, BFS per world.

This is the direct translation of the original per-world loop of
``monte_carlo_expected_flow`` (dict adjacency plus a deque BFS) and
serves two purposes: it is the behavioural reference the vectorized
backend is pinned against in the property tests, and it remains a
readable executable specification of Lemma 1's sampling scheme.

Both primitives of the backend contract share one implementation,
:func:`~repro.reachability.backends.base.propagate_reachability_fallback`:
it rebuilds a dict adjacency from the surviving active edges of each
world and runs one BFS (seeded from every already-reached vertex when a
base closure is supplied).  ``sample_reachability`` applies that closure
to flip matrices drawn in bounded world-major chunks, so memory stays
flat in ``n_samples``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.reachability.backends.base import (
    SamplingProblem,
    chunked_sample_reachability,
    propagate_reachability_fallback,
)


class NaiveSamplingBackend:
    """One BFS per world over a dict adjacency — slow but obvious."""

    name = "naive"

    def sample_reachability(
        self,
        problem: SamplingProblem,
        n_samples: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return chunked_sample_reachability(self, problem, n_samples, rng)

    def propagate_reachability(
        self,
        problem: SamplingProblem,
        flips: np.ndarray,
        edge_indices: np.ndarray,
        base_reached: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return propagate_reachability_fallback(
            problem, flips, edge_indices, base_reached=base_reached
        )

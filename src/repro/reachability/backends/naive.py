"""The reference backend: one possible world at a time, BFS per world.

This is the direct translation of the original per-world loop of
``monte_carlo_expected_flow`` (dict adjacency plus a deque BFS) and
serves two purposes: it is the behavioural reference the vectorized
backend is pinned against in the property tests, and it remains a
readable executable specification of Lemma 1's sampling scheme.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

import numpy as np

from repro.reachability.backends.base import SamplingProblem


class NaiveSamplingBackend:
    """Per-world Python BFS over freshly built adjacency lists."""

    name = "naive"

    def sample_reachability(
        self,
        problem: SamplingProblem,
        n_samples: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        n_vertices = problem.n_vertices
        n_edges = problem.n_edges
        reached = np.zeros((n_samples, n_vertices), dtype=bool)
        reached[:, problem.source] = True
        if n_edges == 0:
            return reached
        edge_u = problem.edge_u.tolist()
        edge_v = problem.edge_v.tolist()
        probabilities = problem.probabilities
        source = problem.source
        for sample_index in range(n_samples):
            survives = rng.random(n_edges) < probabilities
            adjacency: Dict[int, List[int]] = {}
            for u, v, alive in zip(edge_u, edge_v, survives):
                if alive:
                    adjacency.setdefault(u, []).append(v)
                    adjacency.setdefault(v, []).append(u)
            row = reached[sample_index]
            queue = deque([source])
            while queue:
                current = queue.popleft()
                for neighbor in adjacency.get(current, ()):
                    if not row[neighbor]:
                        row[neighbor] = True
                        queue.append(neighbor)
        return reached

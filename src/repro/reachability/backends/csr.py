"""CSR-layout backend: frontier-sparse propagation, optional numba kernel.

The vectorized backend re-derives its half-edge grouping — a
``concatenate`` + stable ``argsort`` over ``2 * n_edges`` entries — on
*every* ``propagate_reachability`` call, and each of its fixpoint sweeps
relaxes **all** active edges even when only a handful of vertices gained
a world since the last sweep.  This backend removes both costs by
working directly over the precomputed CSR half-edge adjacency shared
through :class:`~repro.reachability.layout.GraphLayout`:

* **numpy path** — the same bit-packed world bitsets as the vectorized
  backend (one byte row of ``ceil(n_samples / 8)`` per vertex/edge), but
  propagation is *frontier-restricted*: each round pulls updates only
  into the neighbours of vertices whose bitsets changed in the previous
  round, so the per-round work shrinks with the frontier instead of
  staying ``O(E)`` until the global fixpoint.  Inactive edges simply
  keep all-zero survival bitsets, which excludes them from propagation
  without a separate mask.
* **numba path** — a compiled ``@njit(cache=True)`` kernel running one
  stack-based BFS per world over the CSR arrays: exactly the naive
  reference algorithm, executed in machine code.  It is used
  automatically when numba imports (``use_numba=None``), can be forced
  on (``use_numba=True`` — raises if numba is missing) or off, and the
  registry only exposes the ``csr-numba`` name when the probe
  (:func:`numba_unavailable_reason`) passes.

Both paths consume the shared
:func:`~repro.reachability.backends.base.sample_flips` stream and
propagate the same monotone closure, so results are bit-for-bit equal to
the ``naive`` backend per seed — pinned by the cross-backend property
tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.reachability.backends.base import (
    MAX_FLIP_BLOCK_ELEMENTS,
    SamplingProblem,
    chunked_sample_reachability,
)
from repro.telemetry import current_telemetry

#: Per-draw block ceiling (module attribute so tests can force tiny chunks).
_MAX_BLOCK_ELEMENTS = MAX_FLIP_BLOCK_ELEMENTS

#: Sentinel distinguishing "probe not run yet" from "probe passed" (None).
_UNPROBED = object()
_numba_reason: object = _UNPROBED
_numba_kernel = None


def numba_unavailable_reason() -> Optional[str]:
    """``None`` when numba can be imported, else a human-readable reason.

    The probe runs once per process and is what gates the ``csr-numba``
    registry entry and the auto-selection inside
    :class:`CSRSamplingBackend`; the CLI ``backends`` listing surfaces
    the reason verbatim.
    """
    global _numba_reason
    if _numba_reason is _UNPROBED:
        try:
            import numba  # noqa: F401
        except ImportError:
            _numba_reason = "numba is not installed"
        except Exception as exc:  # pragma: no cover - broken install
            _numba_reason = f"numba import failed: {exc}"
        else:
            _numba_reason = None
    return _numba_reason  # type: ignore[return-value]


def _get_numba_kernel():
    """Compile (once) and return the per-world BFS kernel."""
    global _numba_kernel
    if _numba_kernel is None:
        from numba import njit

        @njit(cache=True)
        def _propagate_worlds(indptr, neighbors, edge_ids, flips, active, reached):
            # One stack-based BFS per world over the CSR half-edges: a
            # world only pays for the component it actually reaches.
            n_samples, n_vertices = reached.shape
            stack = np.empty(n_vertices, dtype=np.int64)
            for s in range(n_samples):
                row = reached[s]
                top = 0
                for v in range(n_vertices):
                    if row[v]:
                        stack[top] = v
                        top += 1
                while top > 0:
                    top -= 1
                    v = stack[top]
                    for k in range(indptr[v], indptr[v + 1]):
                        w = neighbors[k]
                        if not row[w]:
                            e = edge_ids[k]
                            if active[e] and flips[s, e]:
                                row[w] = True
                                stack[top] = w
                                top += 1

        _numba_kernel = _propagate_worlds
    return _numba_kernel


class CSRSamplingBackend:
    """Frontier-sparse propagation over the shared CSR graph layout.

    Parameters
    ----------
    use_numba:
        ``None`` (default) auto-selects the compiled kernel when numba
        imports and falls back to the numpy path transparently when it
        does not; ``True`` forces the kernel (raising if numba is
        unavailable); ``False`` forces the numpy path.
    """

    name = "csr"

    def __init__(self, use_numba: Optional[bool] = None) -> None:
        if use_numba:
            reason = numba_unavailable_reason()
            if reason is not None:
                raise RuntimeError(f"cannot force the numba kernel: {reason}")
        self.use_numba = use_numba

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} numba={self.numba_active}>"

    @property
    def numba_active(self) -> bool:
        """True when propagation will run through the compiled kernel."""
        if self.use_numba is None:
            return numba_unavailable_reason() is None
        return bool(self.use_numba)

    # ------------------------------------------------------------------
    def sample_reachability(
        self,
        problem: SamplingProblem,
        n_samples: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return chunked_sample_reachability(
            self, problem, n_samples, rng, max_block_elements=_MAX_BLOCK_ELEMENTS
        )

    def propagate_reachability(
        self,
        problem: SamplingProblem,
        flips: np.ndarray,
        edge_indices: np.ndarray,
        base_reached: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        n_samples = int(flips.shape[0])
        if base_reached is None:
            reached = np.zeros((n_samples, problem.n_vertices), dtype=bool)
        else:
            reached = base_reached.copy()
        reached[:, problem.source] = True
        edge_indices = np.asarray(edge_indices, dtype=np.int64)
        if edge_indices.size == 0 or n_samples == 0:
            return reached
        if self.numba_active:
            return self._propagate_numba(problem, flips, edge_indices, reached)
        return self._propagate_numpy(problem, flips, edge_indices, reached, base_reached)

    # ------------------------------------------------------------------
    def _propagate_numba(
        self,
        problem: SamplingProblem,
        flips: np.ndarray,
        edge_indices: np.ndarray,
        reached: np.ndarray,
    ) -> np.ndarray:
        csr = problem.csr_adjacency()
        active = np.zeros(problem.n_edges, dtype=bool)
        active[edge_indices] = True
        flips = np.ascontiguousarray(flips)
        _get_numba_kernel()(
            csr.indptr, csr.neighbors, csr.edge_ids, flips, active, reached
        )
        return reached

    def _propagate_numpy(
        self,
        problem: SamplingProblem,
        flips: np.ndarray,
        edge_indices: np.ndarray,
        reached: np.ndarray,
        base_reached: Optional[np.ndarray],
    ) -> np.ndarray:
        n_samples = int(flips.shape[0])
        n_edges = problem.n_edges
        csr = problem.csr_adjacency()
        indptr, neighbors = csr.indptr, csr.neighbors

        # world bitsets padded to whole uint64 lanes: every bitwise op
        # (AND/OR/reduceat/compare) then touches 8x fewer elements than
        # the vectorized backend's byte rows, and the padding lanes stay
        # zero throughout so the final trim cannot lose information
        n_bytes = (n_samples + 7) // 8
        padded = ((n_bytes + 7) // 8) * 8

        # per-edge bitset over the worlds the edge survived in; inactive
        # edges keep all-zero bitsets and therefore never carry anything
        alive8 = np.zeros((n_edges, padded), dtype=np.uint8)
        if edge_indices.size == n_edges and np.array_equal(
            edge_indices, np.arange(n_edges)
        ):
            alive8[:, :n_bytes] = np.packbits(flips.T, axis=1)
        else:
            alive8[edge_indices, :n_bytes] = np.packbits(flips[:, edge_indices].T, axis=1)
        # half-edge aligned survival lanes, gathered once per call — the
        # per-sweep cost of the vectorized backend's duplicated+reordered
        # alive matrix, paid a single time here
        alive = alive8.view(np.uint64)[csr.edge_ids]

        # per-vertex bitset of the worlds that reach it, seeded from the
        # starting closure (source-only or an incremental baseline)
        bits8 = np.zeros((problem.n_vertices, padded), dtype=np.uint8)
        bits8[:, :n_bytes] = np.packbits(reached.T, axis=1)
        bits = bits8.view(np.uint64)

        if base_reached is None:
            frontier = np.array([problem.source], dtype=np.int64)
        else:
            frontier = np.flatnonzero(reached.any(axis=0)).astype(np.int64)

        pull_vertices, pull_offsets = csr.pull_groups()
        half_edges = len(neighbors)
        arange = np.arange
        dense_rounds = 0
        sparse_rounds = 0
        while frontier.size:
            touched = int((indptr[frontier + 1] - indptr[frontier]).sum())
            if touched == 0:
                break
            if 2 * touched >= half_edges:
                # dense round: one full pull sweep over the precomputed
                # group structure (every non-empty CSR row at once)
                dense_rounds += 1
                targets, offsets = pull_vertices, pull_offsets
                carried = bits[neighbors] & alive
            else:
                # sparse round: pull only the frontier's neighbourhood.
                # A target is by construction someone's neighbour, so
                # its CSR row is non-empty and the reduceat offsets
                # stay strictly increasing.
                sparse_rounds += 1
                starts = indptr[frontier]
                counts = indptr[frontier + 1] - starts
                keep = counts > 0
                starts, counts = starts[keep], counts[keep]
                ends = np.cumsum(counts)
                pos = arange(touched) - np.repeat(ends - counts, counts) + np.repeat(
                    starts, counts
                )
                seen = np.zeros(problem.n_vertices, dtype=bool)
                seen[neighbors[pos]] = True
                targets = np.flatnonzero(seen)
                t_starts = indptr[targets]
                t_counts = indptr[targets + 1] - t_starts
                t_total = int(t_counts.sum())
                offsets = np.cumsum(t_counts) - t_counts
                t_pos = arange(t_total) - np.repeat(offsets, t_counts) + np.repeat(
                    t_starts, t_counts
                )
                carried = bits[neighbors[t_pos]] & alive[t_pos]
            gained = np.bitwise_or.reduceat(carried, offsets, axis=0)
            current = bits[targets]
            updated = current | gained
            changed = np.any(updated != current, axis=1)
            if not changed.any():
                break
            bits[targets] = updated
            frontier = targets[changed]

        # round-mix accounting: two plain ints during the loop, one
        # ambient lookup after it — nothing is paid per round, and the
        # disabled path costs a single attribute check.  Note shards run
        # in worker *processes* report into that process's (invisible)
        # pipeline; the counters reflect in-process propagation only.
        tel = current_telemetry()
        if tel.enabled:
            tel.count("backend.csr.dense_rounds", dense_rounds)
            tel.count("backend.csr.sparse_rounds", sparse_rounds)
            tel.count("backend.csr.propagate_calls")

        return np.unpackbits(bits8[:, :n_bytes], axis=1, count=n_samples).T.astype(bool)


class NumbaCSRSamplingBackend(CSRSamplingBackend):
    """The CSR backend pinned to the compiled kernel (no silent fallback).

    Registered as ``csr-numba`` only when the availability probe passes,
    so requesting it is an explicit promise that propagation runs in
    machine code — useful for benchmarks and CI legs that must fail
    loudly rather than quietly measure the numpy path.
    """

    name = "csr-numba"

    def __init__(self) -> None:
        super().__init__(use_numba=True)

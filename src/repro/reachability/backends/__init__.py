"""Registry of possible-world sampling backends.

Mirrors :mod:`repro.selection.registry`: backends are identified by a
short name so the experiment harness, the CLI, the benchmarks and the
estimators share one source of truth for their configuration.  Two
backends ship with the library:

* ``"naive"`` — one Python BFS per sampled world; the behavioural
  reference (:class:`~repro.reachability.backends.naive.NaiveSamplingBackend`);
* ``"vectorized"`` — batched NumPy edge flips and label propagation over
  all worlds at once
  (:class:`~repro.reachability.backends.vectorized.VectorizedSamplingBackend`).

Both consume the random stream identically, so for the same seed they
return the same worlds and therefore bit-for-bit identical estimates.
Third-party backends can be added with :func:`register_backend`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

from repro._runtime_state import (
    defaults as _runtime_defaults,
    resolve_field,
    warn_deprecated,
)
from repro.reachability.backends.base import (
    CoreSamplingBackend,
    SamplingBackend,
    SamplingProblem,
    propagate_reachability_fallback,
)
from repro.reachability.backends.naive import NaiveSamplingBackend
from repro.reachability.backends.vectorized import VectorizedSamplingBackend

#: Accepted forms of a backend specification: a registry name, an already
#: constructed backend instance, or ``None`` for the default.
BackendLike = Union[None, str, SamplingBackend]

#: Backend used when nothing else pins one — neither an explicit call
#: argument, nor an active :func:`repro.session`, nor
#: ``repro.runtime.defaults.backend``.
DEFAULT_BACKEND = "vectorized"

_FACTORIES: Dict[str, Callable[[], SamplingBackend]] = {}


def get_default_backend() -> str:
    """Return the name every ``backend=None`` call currently resolves to.

    Resolution order: the innermost active :func:`repro.session` (if it
    pins a backend) → ``repro.runtime.defaults.backend`` →
    :data:`DEFAULT_BACKEND`.
    """
    return resolve_field("backend", DEFAULT_BACKEND)


def set_default_backend(backend: str) -> str:
    """Deprecated shim over ``repro.runtime.defaults.backend``.

    Returns the previously resolved default name, mirroring the legacy
    contract.  Prefer a scoped session (``with repro.session(backend=...)``)
    or, for a genuinely process-wide override, assigning
    ``repro.runtime.defaults.backend`` directly — neither warns.
    """
    warn_deprecated(
        "repro.reachability.backends.set_default_backend()",
        'use "with repro.session(backend=...)" for scoped configuration, '
        "or assign repro.runtime.defaults.backend for a process-wide default",
    )
    if backend not in _FACTORIES:
        raise ValueError(
            f"unknown sampling backend {backend!r}; expected one of {backend_names()}"
        )
    previous = _runtime_defaults.backend or DEFAULT_BACKEND
    _runtime_defaults.backend = backend
    return previous


def register_backend(
    name: str, factory: Optional[Callable[[], SamplingBackend]] = None, replace: bool = False
) -> Callable:
    """Register a backend factory under ``name``.

    Usable directly (``register_backend("mine", MyBackend)``) or as a
    class decorator (``@register_backend("mine")``).  Re-registering an
    existing name raises unless ``replace`` is True.
    """

    def decorator(target: Callable[[], SamplingBackend]) -> Callable[[], SamplingBackend]:
        if not replace and name in _FACTORIES:
            raise ValueError(f"sampling backend {name!r} is already registered")
        _FACTORIES[name] = target
        return target

    if factory is not None:
        return decorator(factory)
    return decorator


def backend_names() -> Tuple[str, ...]:
    """Return the names of all registered backends (registration order)."""
    return tuple(_FACTORIES)


def make_backend(backend: BackendLike = None) -> SamplingBackend:
    """Resolve a backend name / instance / ``None`` into a backend instance.

    ``None`` resolves to the current default (active session →
    ``repro.runtime.defaults`` → :data:`DEFAULT_BACKEND`); instances pass
    through unchanged so callers can share a configured backend object.
    """
    if backend is None:
        backend = get_default_backend()
    if isinstance(backend, str):
        try:
            factory = _FACTORIES[backend]
        except KeyError:
            raise ValueError(
                f"unknown sampling backend {backend!r}; expected one of {backend_names()}"
            ) from None
        return factory()
    if isinstance(backend, CoreSamplingBackend):
        # the pre-CRN core (name + sample_reachability) is enough: the
        # engine falls back to propagate_reachability_fallback when the
        # incremental primitive is missing
        return backend
    raise TypeError(f"cannot interpret {backend!r} as a sampling backend")


register_backend("naive", NaiveSamplingBackend)
register_backend("vectorized", VectorizedSamplingBackend)

#: The built-in backend names, for CLI choices and test parametrization.
BACKEND_NAMES: Tuple[str, ...] = backend_names()

__all__ = [
    "BACKEND_NAMES",
    "BackendLike",
    "CoreSamplingBackend",
    "DEFAULT_BACKEND",
    "NaiveSamplingBackend",
    "SamplingBackend",
    "SamplingProblem",
    "propagate_reachability_fallback",
    "VectorizedSamplingBackend",
    "backend_names",
    "get_default_backend",
    "make_backend",
    "register_backend",
    "set_default_backend",
]

"""Registry of possible-world sampling backends.

Mirrors :mod:`repro.selection.registry`: backends are identified by a
short name so the experiment harness, the CLI, the benchmarks and the
estimators share one source of truth for their configuration.  Two
backends ship with the library:

* ``"naive"`` — one Python BFS per sampled world; the behavioural
  reference (:class:`~repro.reachability.backends.naive.NaiveSamplingBackend`);
* ``"vectorized"`` — batched NumPy edge flips and label propagation over
  all worlds at once
  (:class:`~repro.reachability.backends.vectorized.VectorizedSamplingBackend`);
* ``"csr"`` — frontier-sparse propagation over the precomputed CSR
  layout shared through :mod:`repro.reachability.layout`, with an
  optional compiled numba kernel
  (:class:`~repro.reachability.backends.csr.CSRSamplingBackend`);
* ``"csr-numba"`` — the CSR backend pinned to the compiled kernel; only
  registered when the numba availability probe passes (see
  :func:`backend_availability` for the why-unavailable reason
  otherwise).

All consume the random stream identically, so for the same seed they
return the same worlds and therefore bit-for-bit identical estimates.
Third-party backends can be added with :func:`register_backend`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

from repro._runtime_state import (
    defaults as _runtime_defaults,
    resolve_field,
    warn_deprecated,
)
from repro.reachability.backends.base import (
    CoreSamplingBackend,
    SamplingBackend,
    SamplingProblem,
    propagate_reachability_fallback,
)
from repro.reachability.backends.csr import (
    CSRSamplingBackend,
    NumbaCSRSamplingBackend,
    numba_unavailable_reason,
)
from repro.reachability.backends.naive import NaiveSamplingBackend
from repro.reachability.backends.vectorized import VectorizedSamplingBackend

#: Accepted forms of a backend specification: a registry name, an already
#: constructed backend instance, or ``None`` for the default.
BackendLike = Union[None, str, SamplingBackend]

#: Backend used when nothing else pins one — neither an explicit call
#: argument, nor an active :func:`repro.session`, nor
#: ``repro.runtime.defaults.backend``.
DEFAULT_BACKEND = "vectorized"

_FACTORIES: Dict[str, Callable[[], SamplingBackend]] = {}

#: Known-but-unavailable backend names mapped to a human-readable reason
#: (e.g. ``"csr-numba" -> "numba is not installed"``).  These names are
#: deliberately *not* registered, so CLI choices, test parametrization
#: and ``BACKEND_NAMES`` only ever list backends that actually work.
_UNAVAILABLE: Dict[str, str] = {}


def get_default_backend() -> str:
    """Return the name every ``backend=None`` call currently resolves to.

    Resolution order: the innermost active :func:`repro.session` (if it
    pins a backend) → ``repro.runtime.defaults.backend`` →
    :data:`DEFAULT_BACKEND`.
    """
    return resolve_field("backend", DEFAULT_BACKEND)


def set_default_backend(backend: str) -> str:
    """Deprecated shim over ``repro.runtime.defaults.backend``.

    Returns the previously resolved default name, mirroring the legacy
    contract.  Prefer a scoped session (``with repro.session(backend=...)``)
    or, for a genuinely process-wide override, assigning
    ``repro.runtime.defaults.backend`` directly — neither warns.
    """
    warn_deprecated(
        "repro.reachability.backends.set_default_backend()",
        'use "with repro.session(backend=...)" for scoped configuration, '
        "or assign repro.runtime.defaults.backend for a process-wide default",
    )
    if backend not in _FACTORIES:
        raise ValueError(
            f"unknown sampling backend {backend!r}; expected one of {backend_names()}"
        )
    previous = _runtime_defaults.backend or DEFAULT_BACKEND
    _runtime_defaults.backend = backend
    return previous


def register_backend(
    name: str, factory: Optional[Callable[[], SamplingBackend]] = None, replace: bool = False
) -> Callable:
    """Register a backend factory under ``name``.

    Usable directly (``register_backend("mine", MyBackend)``) or as a
    class decorator (``@register_backend("mine")``).  Re-registering an
    existing name raises unless ``replace`` is True.
    """

    def decorator(target: Callable[[], SamplingBackend]) -> Callable[[], SamplingBackend]:
        if not replace and name in _FACTORIES:
            raise ValueError(f"sampling backend {name!r} is already registered")
        _FACTORIES[name] = target
        return target

    if factory is not None:
        return decorator(factory)
    return decorator


def backend_names() -> Tuple[str, ...]:
    """Return the names of all registered backends (registration order)."""
    return tuple(_FACTORIES)


def backend_availability() -> Dict[str, Optional[str]]:
    """Map every known backend name to ``None`` (available) or a reason.

    Registered backends map to ``None``; known-but-unregistered ones
    (an optional dependency failed its import probe) map to the
    human-readable why-unavailable string the probe produced.  The
    ``repro-flow backends`` CLI subcommand prints this verbatim.
    """
    availability: Dict[str, Optional[str]] = {name: None for name in _FACTORIES}
    availability.update(_UNAVAILABLE)
    return availability


def make_backend(backend: BackendLike = None) -> SamplingBackend:
    """Resolve a backend name / instance / ``None`` into a backend instance.

    ``None`` resolves to the current default (active session →
    ``repro.runtime.defaults`` → :data:`DEFAULT_BACKEND`); instances pass
    through unchanged so callers can share a configured backend object.
    """
    if backend is None:
        backend = get_default_backend()
    if isinstance(backend, str):
        try:
            factory = _FACTORIES[backend]
        except KeyError:
            reason = _UNAVAILABLE.get(backend)
            if reason is not None:
                raise ValueError(
                    f"sampling backend {backend!r} is unavailable: {reason}"
                ) from None
            raise ValueError(
                f"unknown sampling backend {backend!r}; expected one of {backend_names()}"
            ) from None
        return factory()
    if isinstance(backend, CoreSamplingBackend):
        # the pre-CRN core (name + sample_reachability) is enough: the
        # engine falls back to propagate_reachability_fallback when the
        # incremental primitive is missing
        return backend
    raise TypeError(f"cannot interpret {backend!r} as a sampling backend")


register_backend("naive", NaiveSamplingBackend)
register_backend("vectorized", VectorizedSamplingBackend)
register_backend("csr", CSRSamplingBackend)
_numba_probe = numba_unavailable_reason()
if _numba_probe is None:
    register_backend("csr-numba", NumbaCSRSamplingBackend)
else:
    _UNAVAILABLE["csr-numba"] = _numba_probe

#: The built-in backend names, for CLI choices and test parametrization.
#: Only backends that actually work in this environment appear here
#: (``csr-numba`` joins when numba is importable).
BACKEND_NAMES: Tuple[str, ...] = backend_names()

__all__ = [
    "BACKEND_NAMES",
    "BackendLike",
    "CoreSamplingBackend",
    "CSRSamplingBackend",
    "DEFAULT_BACKEND",
    "NaiveSamplingBackend",
    "NumbaCSRSamplingBackend",
    "SamplingBackend",
    "SamplingProblem",
    "propagate_reachability_fallback",
    "VectorizedSamplingBackend",
    "backend_availability",
    "backend_names",
    "get_default_backend",
    "make_backend",
    "numba_unavailable_reason",
    "register_backend",
    "set_default_backend",
]

"""NumPy-vectorized backend: all worlds sampled and traversed at once.

The backend draws the full ``n_samples x n_edges`` edge-flip matrix via
the shared :func:`~repro.reachability.backends.base.sample_flips`
primitive (consuming the random stream in exactly the same order as the
naive backend, so estimates match bit-for-bit per seed) and then runs a
*batched* frontier propagation over bit-packed world masks:

* the sample axis is packed into bytes (``np.packbits``), so each vertex
  carries a ``ceil(n_samples / 8)``-byte bitset of the worlds that reach
  it, and each edge a bitset of the worlds it survived in;
* one relaxation sweep ORs every surviving half-edge's tail bitset into
  its head bitset for *all* worlds simultaneously — half-edges are
  pre-sorted by head vertex so the scatter-OR becomes one contiguous
  ``np.bitwise_or.reduceat`` instead of a slow ``ufunc.at``;
* sweeps repeat until a fixpoint; the sweep count is bounded by the
  source's eccentricity in the sampled subgraph, which is small for the
  paper's random graphs.

A sweep therefore touches ``2 * n_edges * n_samples / 8`` bytes with a
handful of NumPy calls, instead of one Python BFS per world.

:meth:`VectorizedSamplingBackend.propagate_reachability` exposes the
same fixpoint as a deterministic primitive over a given flip matrix.
When it is seeded with an already-computed base closure (the evaluation
context's per-round baseline), the very first sweep only gains bits on
the freshly connected frontier and the loop terminates after a handful
of sweeps — the incremental-delta path of candidate scoring.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.reachability.backends.base import (
    MAX_FLIP_BLOCK_ELEMENTS,
    SamplingProblem,
    chunked_sample_reachability,
)

#: Per-draw block ceiling (kept as a module attribute so tests can force
#: tiny chunks; chunk boundaries never change the random stream).
_MAX_BLOCK_ELEMENTS = MAX_FLIP_BLOCK_ELEMENTS


class VectorizedSamplingBackend:
    """Batched edge flips plus bit-packed batched label propagation."""

    name = "vectorized"

    def sample_reachability(
        self,
        problem: SamplingProblem,
        n_samples: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return chunked_sample_reachability(
            self, problem, n_samples, rng, max_block_elements=_MAX_BLOCK_ELEMENTS
        )

    def propagate_reachability(
        self,
        problem: SamplingProblem,
        flips: np.ndarray,
        edge_indices: np.ndarray,
        base_reached: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        n_samples = int(flips.shape[0])
        if base_reached is None:
            reached = np.zeros((n_samples, problem.n_vertices), dtype=bool)
        else:
            reached = base_reached.copy()
        reached[:, problem.source] = True
        edge_indices = np.asarray(edge_indices, dtype=np.int64)
        if edge_indices.size == 0 or n_samples == 0:
            return reached

        # undirected active edges as directed half-edges, grouped by head
        active_u = problem.edge_u[edge_indices]
        active_v = problem.edge_v[edge_indices]
        tail = np.concatenate([active_u, active_v])
        head = np.concatenate([active_v, active_u])
        order = np.argsort(head, kind="stable")
        tail = tail[order]
        head = head[order]
        group_starts = np.flatnonzero(np.r_[True, head[1:] != head[:-1]])
        group_heads = head[group_starts]

        # per-edge bitset over the worlds: alive[e] has bit s set iff the
        # active edge e survived in world s (padding bits are zero)
        alive = np.packbits(flips[:, edge_indices].T, axis=1)
        alive = np.concatenate([alive, alive], axis=0)[order]

        # per-vertex bitset of the worlds that reach it, seeded from the
        # starting closure (source-only or an incremental baseline)
        bits = np.packbits(reached.T, axis=1)

        while True:
            carried = bits[tail] & alive
            gained = np.bitwise_or.reduceat(carried, group_starts, axis=0)
            updated = bits[group_heads] | gained
            if np.array_equal(updated, bits[group_heads]):
                break
            bits[group_heads] = updated

        return np.unpackbits(bits, axis=1, count=n_samples).T.astype(bool)

"""NumPy-vectorized backend: all worlds sampled and traversed at once.

The backend draws the full ``n_samples x n_edges`` edge-flip matrix as a
single uniform block (consuming the random stream in exactly the same
order as the naive backend, so estimates match bit-for-bit per seed) and
then runs a *batched* frontier propagation over bit-packed world masks:

* the sample axis is packed into bytes (``np.packbits``), so each vertex
  carries a ``ceil(n_samples / 8)``-byte bitset of the worlds that reach
  it, and each edge a bitset of the worlds it survived in;
* one relaxation sweep ORs every surviving half-edge's tail bitset into
  its head bitset for *all* worlds simultaneously — half-edges are
  pre-sorted by head vertex so the scatter-OR becomes one contiguous
  ``np.bitwise_or.reduceat`` instead of a slow ``ufunc.at``;
* sweeps repeat until a fixpoint; the sweep count is bounded by the
  source's eccentricity in the sampled subgraph, which is small for the
  paper's random graphs.

A sweep therefore touches ``2 * n_edges * n_samples / 8`` bytes with a
handful of NumPy calls, instead of one Python BFS per world.
"""

from __future__ import annotations

import numpy as np

from repro.reachability.backends.base import SamplingProblem

#: Ceiling on uniform doubles drawn per block (~32 MB of float64), so the
#: flip matrix never materializes ``n_samples x n_edges`` at once: worlds
#: are processed in world-major chunks, which consumes the identical
#: random stream and therefore preserves the bit-for-bit seed contract.
_MAX_BLOCK_ELEMENTS = 4_194_304


class VectorizedSamplingBackend:
    """Batched edge flips plus bit-packed batched label propagation."""

    name = "vectorized"

    def sample_reachability(
        self,
        problem: SamplingProblem,
        n_samples: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        n_vertices = problem.n_vertices
        n_edges = problem.n_edges
        reached = np.zeros((n_samples, n_vertices), dtype=bool)
        reached[:, problem.source] = True
        if n_edges == 0 or n_samples == 0:
            return reached

        # undirected edges as directed half-edges, grouped by head vertex
        tail = np.concatenate([problem.edge_u, problem.edge_v])
        head = np.concatenate([problem.edge_v, problem.edge_u])
        order = np.argsort(head, kind="stable")
        tail = tail[order]
        head = head[order]
        group_starts = np.flatnonzero(np.r_[True, head[1:] != head[:-1]])
        group_heads = head[group_starts]

        chunk = max(1, _MAX_BLOCK_ELEMENTS // n_edges)
        for start in range(0, n_samples, chunk):
            stop = min(start + chunk, n_samples)
            # one block draw == the naive backend's per-world row draws
            survives = rng.random((stop - start, n_edges)) < problem.probabilities

            # per-edge bitset over the chunk's worlds: alive[e] has bit s
            # set iff edge e survived in world s (padding bits are zero)
            alive = np.packbits(survives.T, axis=1)
            alive = np.concatenate([alive, alive], axis=0)[order]

            # per-vertex bitset of the worlds that reach it; the source's
            # padding bits are set too but are dropped again at unpack time
            bits = np.zeros((n_vertices, alive.shape[1]), dtype=np.uint8)
            bits[problem.source] = 0xFF

            while True:
                carried = bits[tail] & alive
                gained = np.bitwise_or.reduceat(carried, group_starts, axis=0)
                updated = bits[group_heads] | gained
                if np.array_equal(updated, bits[group_heads]):
                    break
                bits[group_heads] = updated

            reached[start:stop] = np.unpackbits(bits, axis=1, count=stop - start).T
        return reached

"""The backend contract of the possible-world sampling engine.

A *backend* answers one question as fast as it can: given an indexed
sampling problem (contiguous integer vertex ids, parallel edge arrays)
and a random stream, which vertices are connected to the source vertex
in each of ``n_samples`` independently drawn possible worlds?

Everything else — restricting to a candidate edge set, translating
vertex ids, aggregating worlds into flow / reachability estimates — is
shared code in :mod:`repro.reachability.engine`, so two backends that
consume the random stream in the same order produce *bit-for-bit*
identical estimates for the same seed.

The stream contract every backend must honour: exactly
``n_samples * n_edges`` uniform doubles are consumed, in world-major
order (all edge flips of world 0, then world 1, …).  An edge survives in
a world iff its uniform draw is strictly below its probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.types import Edge, VertexId


@dataclass(frozen=True, eq=False)
class SamplingProblem:
    """An uncertain subgraph re-indexed for array-based world sampling.

    Attributes
    ----------
    vertex_ids:
        Tuple mapping the contiguous index of a vertex back to its
        original (hashable) id; ``vertex_ids[source]`` is the source.
    edge_u, edge_v:
        Parallel integer arrays with the endpoint indices of every edge.
    probabilities:
        Parallel float array with the edge existence probabilities.
    source:
        Index of the vertex reachability is measured from.
    """

    vertex_ids: Tuple[VertexId, ...]
    edge_u: np.ndarray
    edge_v: np.ndarray
    probabilities: np.ndarray
    source: int

    @property
    def n_vertices(self) -> int:
        """Number of indexed vertices."""
        return len(self.vertex_ids)

    @property
    def n_edges(self) -> int:
        """Number of edges."""
        return len(self.probabilities)

    def index_of(self, vertex: VertexId) -> int:
        """Return the contiguous index of an original vertex id."""
        try:
            return self._index[vertex]
        except KeyError:
            raise KeyError(f"vertex {vertex!r} is not part of this sampling problem") from None

    @property
    def _index(self) -> Dict[VertexId, int]:
        index = self.__dict__.get("_index_cache")
        if index is None:
            index = {vertex: i for i, vertex in enumerate(self.vertex_ids)}
            object.__setattr__(self, "_index_cache", index)
        return index

    @classmethod
    def from_edges(
        cls,
        edge_probabilities: Sequence[Tuple[Edge, float]],
        source: VertexId,
        extra_vertices: Iterable[VertexId] = (),
    ) -> "SamplingProblem":
        """Index the source, every edge endpoint and any extra vertices.

        The source always receives index 0; the remaining vertices are
        indexed in first-appearance order, which keeps the mapping
        deterministic for a deterministic edge order.
        """
        index: Dict[VertexId, int] = {source: 0}
        ids: List[VertexId] = [source]

        def intern(vertex: VertexId) -> int:
            slot = index.get(vertex)
            if slot is None:
                slot = len(ids)
                index[vertex] = slot
                ids.append(vertex)
            return slot

        n_edges = len(edge_probabilities)
        edge_u = np.empty(n_edges, dtype=np.int64)
        edge_v = np.empty(n_edges, dtype=np.int64)
        probabilities = np.empty(n_edges, dtype=np.float64)
        for position, (edge, probability) in enumerate(edge_probabilities):
            edge_u[position] = intern(edge.u)
            edge_v[position] = intern(edge.v)
            probabilities[position] = probability
        for vertex in extra_vertices:
            intern(vertex)
        return cls(
            vertex_ids=tuple(ids),
            edge_u=edge_u,
            edge_v=edge_v,
            probabilities=probabilities,
            source=0,
        )


@runtime_checkable
class SamplingBackend(Protocol):
    """Protocol every sampling backend implements.

    Backends are stateless beyond configuration; all randomness comes
    from the generator passed to :meth:`sample_reachability`.
    """

    #: registry name of the backend (e.g. ``"naive"``, ``"vectorized"``)
    name: str

    def sample_reachability(
        self,
        problem: SamplingProblem,
        n_samples: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Sample ``n_samples`` worlds and return the reachability matrix.

        Returns a boolean array of shape ``(n_samples, n_vertices)``
        whose entry ``[s, v]`` is True iff vertex ``v`` is connected to
        the problem's source vertex in world ``s``.  The source column is
        always True.
        """
        ...

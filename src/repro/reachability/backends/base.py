"""The backend contract of the possible-world sampling engine.

A *backend* answers one question as fast as it can: given an indexed
sampling problem (contiguous integer vertex ids, parallel edge arrays)
and a random stream, which vertices are connected to the source vertex
in each of ``n_samples`` independently drawn possible worlds?

Everything else — restricting to a candidate edge set, translating
vertex ids, aggregating worlds into flow / reachability estimates — is
shared code in :mod:`repro.reachability.engine`, so two backends that
consume the random stream in the same order produce *bit-for-bit*
identical estimates for the same seed.

The stream contract every backend must honour: exactly
``n_samples * n_edges`` uniform doubles are consumed, in world-major
order (all edge flips of world 0, then world 1, …).  An edge survives in
a world iff its uniform draw is strictly below its probability.

Since the common-random-numbers refactor the contract is factored into
two primitives rather than one monolithic call:

* :func:`sample_flips` — the *one* implementation of the stream
  contract.  It draws the ``(n_samples, n_edges)`` boolean edge-survival
  matrix in world-major chunks, so every backend (and the evaluation
  context, which shares one flip matrix across a whole round of
  candidates) sees identical worlds for the same seed by construction.
* :meth:`SamplingBackend.propagate_reachability` — deterministic closure
  of a flip matrix: given the survival matrix and the indices of the
  *active* edges, compute which vertices each world connects to the
  source.  Passing ``base_reached`` starts the propagation from an
  already-computed closure, which is how candidate edges are scored
  incrementally instead of re-propagating the whole subgraph.

``sample_reachability`` remains the one-call entry point and is defined
as ``propagate_reachability(problem, sample_flips(...), all edges)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.types import Edge, VertexId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (layout imports base)
    from repro.reachability.layout import GraphLayout

#: Ceiling on uniform doubles drawn per block (~32 MB of float64), so a
#: flip draw never materializes ``n_samples x n_edges`` float64 at once:
#: worlds are drawn in world-major chunks, which consumes the identical
#: random stream and therefore preserves the bit-for-bit seed contract.
MAX_FLIP_BLOCK_ELEMENTS = 4_194_304


@dataclass(frozen=True, eq=False)
class CSRAdjacency:
    """Flat CSR adjacency over the half-edges of an indexed edge set.

    For vertex ``v``, the half-edges incident to it occupy the slice
    ``[indptr[v], indptr[v + 1])`` of the parallel ``neighbors`` /
    ``edge_ids`` arrays: ``neighbors`` holds the vertex at the far end
    and ``edge_ids`` the index of the connecting edge in the problem's
    edge arrays.  Edges are undirected, so every edge appears twice —
    once per endpoint — and the structure doubles as the head-grouped
    half-edge layout the batched label-propagation backends sweep over.
    """

    indptr: np.ndarray
    neighbors: np.ndarray
    edge_ids: np.ndarray

    @property
    def n_vertices(self) -> int:
        """Number of vertices the adjacency covers."""
        return len(self.indptr) - 1

    def pull_groups(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(vertices, offsets)`` of every non-empty CSR row, cached.

        The dense-sweep structure of the csr backend: a full pull sweep
        OR-reduces the half-edge array grouped at ``offsets`` into
        ``vertices``.  Restricting to non-empty rows keeps the reduceat
        offsets strictly increasing (an empty group would wrongly pick
        up its successor's first element).
        """
        cached = self.__dict__.get("_pull_cache")
        if cached is None:
            vertices = np.flatnonzero(np.diff(self.indptr) > 0)
            cached = (vertices, self.indptr[vertices])
            object.__setattr__(self, "_pull_cache", cached)
        return cached


def build_csr_adjacency(
    edge_u: np.ndarray, edge_v: np.ndarray, n_vertices: int
) -> CSRAdjacency:
    """Build the CSR half-edge adjacency of an indexed undirected edge set.

    One stable sort of the ``2 * n_edges`` half-edges by their incident
    vertex; the per-call ``argsort`` + ``concatenate`` the vectorized
    backend used to pay on every propagation is paid once here and
    shared through :class:`~repro.reachability.layout.GraphLayout`.
    """
    n_edges = len(edge_u)
    incident = np.concatenate([edge_v, edge_u])
    far_end = np.concatenate([edge_u, edge_v])
    edge_ids = np.concatenate([np.arange(n_edges), np.arange(n_edges)])
    order = np.argsort(incident, kind="stable")
    indptr = np.zeros(n_vertices + 1, dtype=np.int64)
    indptr[1:] = np.cumsum(np.bincount(incident, minlength=n_vertices))
    return CSRAdjacency(
        indptr=indptr,
        neighbors=far_end[order].astype(np.int64, copy=False),
        edge_ids=edge_ids[order].astype(np.int64, copy=False),
    )


@dataclass(frozen=True, eq=False)
class SamplingProblem:
    """An uncertain subgraph re-indexed for array-based world sampling.

    Attributes
    ----------
    vertex_ids:
        Tuple mapping the contiguous index of a vertex back to its
        original (hashable) id; ``vertex_ids[source]`` is the source.
    edge_u, edge_v:
        Parallel integer arrays with the endpoint indices of every edge.
    probabilities:
        Parallel float array with the edge existence probabilities.
    source:
        Index of the vertex reachability is measured from.
    layout:
        The shared :class:`~repro.reachability.layout.GraphLayout` this
        problem is a view over, or ``None`` for standalone problems
        built directly through :meth:`from_edges`.  Backends use it to
        reuse the layout's precomputed CSR adjacency instead of
        rebuilding per call.
    """

    vertex_ids: Tuple[VertexId, ...]
    edge_u: np.ndarray
    edge_v: np.ndarray
    probabilities: np.ndarray
    source: int
    layout: Optional["GraphLayout"] = field(default=None, repr=False)

    def csr_adjacency(self) -> CSRAdjacency:
        """The CSR half-edge adjacency over this problem's full edge set.

        Served from the shared layout when the problem is a layout view
        (extending the index pointer for appended extra vertices, which
        by construction have no incident edges), built once and cached
        on the problem otherwise.
        """
        cached = self.__dict__.get("_csr_cache")
        if cached is None:
            if self.layout is not None:
                cached = self.layout.csr_adjacency()
                if cached.n_vertices < self.n_vertices:
                    indptr = np.concatenate(
                        [
                            cached.indptr,
                            np.full(
                                self.n_vertices - cached.n_vertices,
                                cached.indptr[-1],
                                dtype=np.int64,
                            ),
                        ]
                    )
                    cached = CSRAdjacency(
                        indptr=indptr,
                        neighbors=cached.neighbors,
                        edge_ids=cached.edge_ids,
                    )
            else:
                cached = build_csr_adjacency(self.edge_u, self.edge_v, self.n_vertices)
            object.__setattr__(self, "_csr_cache", cached)
        return cached

    @property
    def n_vertices(self) -> int:
        """Number of indexed vertices."""
        return len(self.vertex_ids)

    @property
    def n_edges(self) -> int:
        """Number of edges."""
        return len(self.probabilities)

    def index_of(self, vertex: VertexId) -> int:
        """Return the contiguous index of an original vertex id."""
        try:
            return self._index[vertex]
        except KeyError:
            raise KeyError(f"vertex {vertex!r} is not part of this sampling problem") from None

    @property
    def _index(self) -> Dict[VertexId, int]:
        index = self.__dict__.get("_index_cache")
        if index is None:
            index = {vertex: i for i, vertex in enumerate(self.vertex_ids)}
            object.__setattr__(self, "_index_cache", index)
        return index

    @classmethod
    def from_edges(
        cls,
        edge_probabilities: Sequence[Tuple[Edge, float]],
        source: VertexId,
        extra_vertices: Iterable[VertexId] = (),
    ) -> "SamplingProblem":
        """Index the source, every edge endpoint and any extra vertices.

        The source always receives index 0; the remaining vertices are
        indexed in first-appearance order, which keeps the mapping
        deterministic for a deterministic edge order.
        """
        index: Dict[VertexId, int] = {source: 0}
        ids: List[VertexId] = [source]

        def intern(vertex: VertexId) -> int:
            slot = index.get(vertex)
            if slot is None:
                slot = len(ids)
                index[vertex] = slot
                ids.append(vertex)
            return slot

        n_edges = len(edge_probabilities)
        edge_u = np.empty(n_edges, dtype=np.int64)
        edge_v = np.empty(n_edges, dtype=np.int64)
        probabilities = np.empty(n_edges, dtype=np.float64)
        for position, (edge, probability) in enumerate(edge_probabilities):
            edge_u[position] = intern(edge.u)
            edge_v[position] = intern(edge.v)
            probabilities[position] = probability
        for vertex in extra_vertices:
            intern(vertex)
        return cls(
            vertex_ids=tuple(ids),
            edge_u=edge_u,
            edge_v=edge_v,
            probabilities=probabilities,
            source=0,
        )


def sample_flips(
    problem: SamplingProblem,
    n_samples: int,
    rng: np.random.Generator,
    max_block_elements: int = MAX_FLIP_BLOCK_ELEMENTS,
) -> np.ndarray:
    """Draw the boolean ``(n_samples, n_edges)`` edge-survival matrix.

    This is the single implementation of the random-stream contract:
    ``n_samples * n_edges`` uniform doubles consumed in world-major
    order, an edge surviving iff its draw is strictly below its
    probability.  Draws happen in world-major chunks of at most
    ``max_block_elements`` doubles; chunk boundaries do not change the
    stream, so the matrix is identical for any chunk size.
    """
    n_edges = problem.n_edges
    flips = np.empty((n_samples, n_edges), dtype=bool)
    if n_edges == 0 or n_samples == 0:
        return flips
    chunk = max(1, max_block_elements // n_edges)
    for start in range(0, n_samples, chunk):
        stop = min(start + chunk, n_samples)
        flips[start:stop] = rng.random((stop - start, n_edges)) < problem.probabilities
    return flips


def propagate_reachability_fallback(
    problem: SamplingProblem,
    flips: np.ndarray,
    edge_indices: np.ndarray,
    base_reached: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Backend-independent reference closure: one Python BFS per world.

    Used directly by the naive backend and as the engine's fallback for
    third-party backends that predate the ``propagate_reachability``
    contract (they only implement :class:`CoreSamplingBackend`), so CRN
    candidate scoring works — slowly but correctly — on any backend.
    """
    n_samples = int(flips.shape[0])
    if base_reached is None:
        reached = np.zeros((n_samples, problem.n_vertices), dtype=bool)
    else:
        reached = base_reached.copy()
    reached[:, problem.source] = True
    edge_indices = np.asarray(edge_indices, dtype=np.int64)
    if edge_indices.size == 0 or n_samples == 0:
        return reached
    edge_u = problem.edge_u[edge_indices].tolist()
    edge_v = problem.edge_v[edge_indices].tolist()
    active_flips = flips[:, edge_indices]
    for sample_index in range(n_samples):
        survives = active_flips[sample_index]
        adjacency: Dict[int, List[int]] = {}
        for u, v, alive in zip(edge_u, edge_v, survives):
            if alive:
                adjacency.setdefault(u, []).append(v)
                adjacency.setdefault(v, []).append(u)
        row = reached[sample_index]
        # BFS from every vertex of the starting closure, so an
        # incremental call re-propagates only across the new edges
        queue = deque(np.flatnonzero(row).tolist())
        while queue:
            current = queue.popleft()
            for neighbor in adjacency.get(current, ()):
                if not row[neighbor]:
                    row[neighbor] = True
                    queue.append(neighbor)
    return reached


def chunked_sample_reachability(
    backend: "SamplingBackend",
    problem: SamplingProblem,
    n_samples: int,
    rng: np.random.Generator,
    max_block_elements: int = MAX_FLIP_BLOCK_ELEMENTS,
) -> np.ndarray:
    """Draw-and-propagate in bounded world-major chunks.

    The shared ``sample_reachability`` body of both built-in backends:
    flip matrices are drawn (and discarded) chunk by chunk so a big
    sample count never materializes the full ``n_samples x n_edges``
    matrix.  Chunk boundaries do not change the random stream, so the
    result is identical for any block size.
    """
    reached = np.zeros((n_samples, problem.n_vertices), dtype=bool)
    reached[:, problem.source] = True
    n_edges = problem.n_edges
    if n_edges == 0 or n_samples == 0:
        return reached
    all_edges = np.arange(n_edges)
    chunk = max(1, max_block_elements // n_edges)
    for start in range(0, n_samples, chunk):
        stop = min(start + chunk, n_samples)
        flips = sample_flips(
            problem, stop - start, rng, max_block_elements=max_block_elements
        )
        reached[start:stop] = backend.propagate_reachability(problem, flips, all_edges)
    return reached


@runtime_checkable
class CoreSamplingBackend(Protocol):
    """The minimal backend surface (the pre-CRN protocol).

    Backends are stateless beyond configuration; all randomness comes
    from the generator passed to :meth:`sample_reachability`.  Instances
    implementing only this core remain accepted everywhere: the engine
    falls back to :func:`propagate_reachability_fallback` when the
    incremental primitive is missing.
    """

    #: registry name of the backend (e.g. ``"naive"``, ``"vectorized"``)
    name: str

    def sample_reachability(
        self,
        problem: SamplingProblem,
        n_samples: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Sample ``n_samples`` worlds and return the reachability matrix.

        Returns a boolean array of shape ``(n_samples, n_vertices)``
        whose entry ``[s, v]`` is True iff vertex ``v`` is connected to
        the problem's source vertex in world ``s``.  The source column is
        always True.
        """
        ...


@runtime_checkable
class SamplingBackend(CoreSamplingBackend, Protocol):
    """The full backend protocol (core plus the incremental primitive)."""

    def propagate_reachability(
        self,
        problem: SamplingProblem,
        flips: np.ndarray,
        edge_indices: np.ndarray,
        base_reached: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Compute source reachability for a given flip matrix.

        Deterministic closure — no randomness is consumed.  Only the
        edges listed in ``edge_indices`` (integer indices into the
        problem's edge arrays) are traversed; the flip matrix may cover
        more edges (e.g. a whole candidate universe), the rest are
        ignored.  When ``base_reached`` is given, propagation starts
        from that already-computed closure instead of from the source
        alone — since reachability is monotone in the edge set, this
        yields exactly the closure of the enlarged edge set while only
        re-propagating from the newly connected frontier.

        Returns a fresh boolean ``(n_samples, n_vertices)`` matrix; the
        inputs are never mutated.
        """
        ...

"""Whole-graph Monte-Carlo estimation of reachability and expected flow.

Implements the unbiased estimator of Lemma 1: drawing possible worlds by
flipping every edge independently and averaging the per-world information
flow ``flow(Q, g)``.  The Naive baseline of the evaluation applies this
estimator to the entire candidate subgraph in every greedy iteration.

All three public estimators are thin wrappers around one shared
:class:`~repro.reachability.engine.SamplingEngine` entry point, so the
world-flipping and adjacency/traversal code lives in exactly one place
and the backend (``"naive"`` per-world BFS or ``"vectorized"`` batched
NumPy — see :mod:`repro.reachability.backends`) can be chosen per call.
Estimates are bit-for-bit deterministic per ``(seed, backend)``, and the
built-in backends share one random-stream contract, so the same seed
yields the same estimate on either backend.

``backend``, ``executor`` and ``shard_size`` left at ``None`` resolve
from the active :func:`repro.session` (then ``repro.runtime.defaults``);
:meth:`repro.runtime.Session.expected_flow` and friends are the
session-native spellings of the same estimators and reproduce them bit
for bit.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.exceptions import SampleSizeError, VertexNotFoundError
from repro.graph.uncertain_graph import UncertainGraph
from repro.parallel.adaptive import AUTO_SAMPLES, AdaptiveSettings
from repro.parallel.executor import ExecutorLike
from repro.reachability.backends import BackendLike
from repro.reachability.engine import SampleSpec, SamplingEngine
from repro.reachability.estimators import FlowEstimate, ReachabilityEstimate
from repro.rng import SeedLike, ensure_rng
from repro.types import Edge, VertexId


class MonteCarloFlowEstimator:
    """Reusable Monte-Carlo estimator bound to one graph and one query vertex.

    Parameters
    ----------
    graph:
        The uncertain graph (or candidate subgraph) to sample.
    query:
        The query vertex ``Q``.
    n_samples:
        Number of possible worlds to draw per estimate (paper default 1000).
    seed:
        Seed or generator used for world sampling.
    include_query:
        Whether the query vertex's own weight counts towards the flow.
    backend:
        Sampling backend name or instance (default: the registry default).
    executor:
        Sharded-sampling executor or worker count (see
        :mod:`repro.parallel`); ``None`` keeps the unsharded stream.
    shard_size:
        Worlds per shard when an executor is active.
    adaptive:
        Stopping rule for ``n_samples="auto"``.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        query: VertexId,
        n_samples: SampleSpec = 1000,
        seed: SeedLike = None,
        include_query: bool = False,
        backend: BackendLike = None,
        executor: ExecutorLike = None,
        shard_size: Optional[int] = None,
        adaptive: Optional[AdaptiveSettings] = None,
    ) -> None:
        if not graph.has_vertex(query):
            raise VertexNotFoundError(query)
        if isinstance(n_samples, str):
            if n_samples != AUTO_SAMPLES:
                raise ValueError(
                    f"n_samples must be a positive integer or {AUTO_SAMPLES!r}, "
                    f"got {n_samples!r}"
                )
        else:
            if n_samples <= 0:
                raise SampleSizeError(n_samples)
            n_samples = int(n_samples)
        self.graph = graph
        self.query = query
        self.n_samples = n_samples
        self.include_query = include_query
        self.adaptive = adaptive
        self._engine = SamplingEngine(backend, executor=executor, shard_size=shard_size)
        self._rng = ensure_rng(seed)

    def estimate(self, edges: Optional[Iterable[Edge]] = None) -> FlowEstimate:
        """Estimate the expected flow of the subgraph restricted to ``edges``."""
        return self._engine.expected_flow(
            self.graph,
            self.query,
            n_samples=self.n_samples,
            seed=self._rng,
            edges=edges,
            include_query=self.include_query,
            adaptive=self.adaptive,
        )


def monte_carlo_expected_flow(
    graph: UncertainGraph,
    query: VertexId,
    n_samples: SampleSpec = 1000,
    seed: SeedLike = None,
    edges: Optional[Iterable[Edge]] = None,
    include_query: bool = False,
    backend: BackendLike = None,
    executor: ExecutorLike = None,
    shard_size: Optional[int] = None,
    adaptive: Optional[AdaptiveSettings] = None,
) -> FlowEstimate:
    """Monte-Carlo estimate of ``E[flow(Q, G)]`` (Lemma 1).

    Parameters
    ----------
    graph:
        The uncertain graph.
    query:
        Query vertex ``Q``.
    n_samples:
        Number of sampled possible worlds, or ``"auto"`` for adaptive
        CI-driven stopping (see :class:`repro.parallel.AdaptiveSettings`).
    seed:
        Random seed or generator.
    edges:
        Optional restriction of the graph to a subset of edges (the
        candidate subgraph of the selection algorithms); vertices are
        unchanged.
    include_query:
        Whether ``W(Q)`` counts towards the flow.
    backend:
        Sampling backend name or instance (see
        :data:`repro.reachability.backends.BACKEND_NAMES`).
    executor:
        Sharded-sampling executor or worker count (see
        :mod:`repro.parallel`); ``None`` keeps the historical unsharded
        single-process stream.
    shard_size:
        Worlds per shard when an executor is active; part of the
        determinism key ``(seed, n_samples, shard_size)``.
    adaptive:
        Stopping rule for ``n_samples="auto"``.

    Returns
    -------
    FlowEstimate
        Point estimate together with per-vertex reachability frequencies
        and the sample variance of the per-world flow.
    """
    return SamplingEngine(backend, executor=executor, shard_size=shard_size).expected_flow(
        graph,
        query,
        n_samples=n_samples,
        seed=seed,
        edges=edges,
        include_query=include_query,
        adaptive=adaptive,
    )


def monte_carlo_reachability(
    graph: UncertainGraph,
    source: VertexId,
    target: VertexId,
    n_samples: SampleSpec = 1000,
    seed: SeedLike = None,
    edges: Optional[Iterable[Edge]] = None,
    backend: BackendLike = None,
    executor: ExecutorLike = None,
    shard_size: Optional[int] = None,
    adaptive: Optional[AdaptiveSettings] = None,
) -> ReachabilityEstimate:
    """Monte-Carlo estimate of the two-terminal reachability ``P(source ↔ target)``.

    ``n_samples="auto"`` draws shards until the Wilson/normal interval is
    narrower than ``adaptive.target_width`` (see :mod:`repro.parallel`).
    """
    return SamplingEngine(backend, executor=executor, shard_size=shard_size).pair_reachability(
        graph, source, target, n_samples=n_samples, seed=seed, edges=edges, adaptive=adaptive
    )


def monte_carlo_component_reachability(
    graph: UncertainGraph,
    anchor: VertexId,
    vertices: Iterable[VertexId],
    edges: Iterable[Edge],
    n_samples: int = 1000,
    seed: SeedLike = None,
    backend: BackendLike = None,
    executor: ExecutorLike = None,
    shard_size: Optional[int] = None,
) -> Dict[VertexId, float]:
    """Estimate ``P(v ↔ anchor)`` for every ``v`` within a small edge-induced component.

    Used by the F-tree to sample a single bi-connected component: only the
    component's edges are flipped, and reachability is evaluated towards
    the component's articulation vertex.
    """
    return SamplingEngine(backend, executor=executor, shard_size=shard_size).component_reachability(
        graph, anchor, vertices, edges, n_samples=n_samples, seed=seed
    )

"""Whole-graph Monte-Carlo estimation of reachability and expected flow.

Implements the unbiased estimator of Lemma 1: drawing possible worlds by
flipping every edge independently and averaging the per-world information
flow ``flow(Q, g)``.  The Naive baseline of the evaluation applies this
estimator to the entire candidate subgraph in every greedy iteration.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.exceptions import SampleSizeError, VertexNotFoundError
from repro.graph.uncertain_graph import UncertainGraph
from repro.reachability.estimators import FlowEstimate, ReachabilityEstimate
from repro.rng import SeedLike, ensure_rng
from repro.types import Edge, VertexId


def _restricted_edges(
    graph: UncertainGraph, edges: Optional[Iterable[Edge]]
) -> List[Tuple[Edge, float]]:
    if edges is None:
        return list(graph.probabilities().items())
    return [(edge, graph.probability(edge)) for edge in edges]


def _reachable(
    adjacency: Dict[VertexId, List[VertexId]], source: VertexId
) -> Set[VertexId]:
    seen = {source}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in adjacency.get(current, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return seen


class MonteCarloFlowEstimator:
    """Reusable Monte-Carlo estimator bound to one graph and one query vertex.

    Parameters
    ----------
    graph:
        The uncertain graph (or candidate subgraph) to sample.
    query:
        The query vertex ``Q``.
    n_samples:
        Number of possible worlds to draw per estimate (paper default 1000).
    seed:
        Seed or generator used for world sampling.
    include_query:
        Whether the query vertex's own weight counts towards the flow.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        query: VertexId,
        n_samples: int = 1000,
        seed: SeedLike = None,
        include_query: bool = False,
    ) -> None:
        if not graph.has_vertex(query):
            raise VertexNotFoundError(query)
        if n_samples <= 0:
            raise SampleSizeError(n_samples)
        self.graph = graph
        self.query = query
        self.n_samples = int(n_samples)
        self.include_query = include_query
        self._rng = ensure_rng(seed)

    def estimate(self, edges: Optional[Iterable[Edge]] = None) -> FlowEstimate:
        """Estimate the expected flow of the subgraph restricted to ``edges``."""
        return monte_carlo_expected_flow(
            self.graph,
            self.query,
            n_samples=self.n_samples,
            seed=self._rng,
            edges=edges,
            include_query=self.include_query,
        )


def monte_carlo_expected_flow(
    graph: UncertainGraph,
    query: VertexId,
    n_samples: int = 1000,
    seed: SeedLike = None,
    edges: Optional[Iterable[Edge]] = None,
    include_query: bool = False,
) -> FlowEstimate:
    """Monte-Carlo estimate of ``E[flow(Q, G)]`` (Lemma 1).

    Parameters
    ----------
    graph:
        The uncertain graph.
    query:
        Query vertex ``Q``.
    n_samples:
        Number of sampled possible worlds.
    seed:
        Random seed or generator.
    edges:
        Optional restriction of the graph to a subset of edges (the
        candidate subgraph of the selection algorithms); vertices are
        unchanged.
    include_query:
        Whether ``W(Q)`` counts towards the flow.

    Returns
    -------
    FlowEstimate
        Point estimate together with per-vertex reachability frequencies
        and the sample variance of the per-world flow.
    """
    if not graph.has_vertex(query):
        raise VertexNotFoundError(query)
    if n_samples <= 0:
        raise SampleSizeError(n_samples)
    rng = ensure_rng(seed)
    edge_probabilities = _restricted_edges(graph, edges)
    weights = graph.weights()

    hit_counts: Dict[VertexId, int] = {}
    flow_samples = np.empty(n_samples, dtype=float)
    n_edges = len(edge_probabilities)
    probabilities = np.array([p for _, p in edge_probabilities], dtype=float)

    for sample_index in range(n_samples):
        if n_edges:
            survives = rng.random(n_edges) < probabilities
        else:
            survives = ()
        adjacency: Dict[VertexId, List[VertexId]] = {}
        for (edge, _), alive in zip(edge_probabilities, survives):
            if alive:
                adjacency.setdefault(edge.u, []).append(edge.v)
                adjacency.setdefault(edge.v, []).append(edge.u)
        reached = _reachable(adjacency, query)
        flow = 0.0
        for vertex in reached:
            if vertex == query and not include_query:
                continue
            hit_counts[vertex] = hit_counts.get(vertex, 0) + 1
            flow += weights.get(vertex, 0.0)
        flow_samples[sample_index] = flow

    reachability = {vertex: count / n_samples for vertex, count in hit_counts.items()}
    variance = float(flow_samples.var(ddof=1)) if n_samples > 1 else 0.0
    return FlowEstimate(
        expected_flow=float(flow_samples.mean()),
        reachability=reachability,
        n_samples=n_samples,
        variance=variance,
        include_query=include_query,
    )


def monte_carlo_reachability(
    graph: UncertainGraph,
    source: VertexId,
    target: VertexId,
    n_samples: int = 1000,
    seed: SeedLike = None,
    edges: Optional[Iterable[Edge]] = None,
) -> ReachabilityEstimate:
    """Monte-Carlo estimate of the two-terminal reachability ``P(source ↔ target)``."""
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    if not graph.has_vertex(target):
        raise VertexNotFoundError(target)
    if n_samples <= 0:
        raise SampleSizeError(n_samples)
    if source == target:
        return ReachabilityEstimate(probability=1.0, n_samples=n_samples, successes=n_samples)
    rng = ensure_rng(seed)
    edge_probabilities = _restricted_edges(graph, edges)
    probabilities = np.array([p for _, p in edge_probabilities], dtype=float)
    successes = 0
    for _ in range(n_samples):
        if len(edge_probabilities):
            survives = rng.random(len(edge_probabilities)) < probabilities
        else:
            survives = ()
        adjacency: Dict[VertexId, List[VertexId]] = {}
        for (edge, _), alive in zip(edge_probabilities, survives):
            if alive:
                adjacency.setdefault(edge.u, []).append(edge.v)
                adjacency.setdefault(edge.v, []).append(edge.u)
        if target in _reachable(adjacency, source):
            successes += 1
    return ReachabilityEstimate(
        probability=successes / n_samples, n_samples=n_samples, successes=successes
    )


def monte_carlo_component_reachability(
    graph: UncertainGraph,
    anchor: VertexId,
    vertices: Iterable[VertexId],
    edges: Iterable[Edge],
    n_samples: int = 1000,
    seed: SeedLike = None,
) -> Dict[VertexId, float]:
    """Estimate ``P(v ↔ anchor)`` for every ``v`` within a small edge-induced component.

    Used by the F-tree to sample a single bi-connected component: only the
    component's edges are flipped, and reachability is evaluated towards
    the component's articulation vertex.
    """
    if n_samples <= 0:
        raise SampleSizeError(n_samples)
    rng = ensure_rng(seed)
    edge_list = [(edge, graph.probability(edge)) for edge in edges]
    probabilities = np.array([p for _, p in edge_list], dtype=float)
    targets = [v for v in vertices if v != anchor]
    counts = {vertex: 0 for vertex in targets}
    for _ in range(n_samples):
        if edge_list:
            survives = rng.random(len(edge_list)) < probabilities
        else:
            survives = ()
        adjacency: Dict[VertexId, List[VertexId]] = {}
        for (edge, _), alive in zip(edge_list, survives):
            if alive:
                adjacency.setdefault(edge.u, []).append(edge.v)
                adjacency.setdefault(edge.v, []).append(edge.u)
        reached = _reachable(adjacency, anchor)
        for vertex in targets:
            if vertex in reached:
                counts[vertex] += 1
    return {vertex: counts[vertex] / n_samples for vertex in targets}

"""Exact reachability and expected flow by possible-world enumeration.

Exponential in the number of uncertain edges, so only usable on small
graphs or small bi-connected components; the test suite and the exact
component evaluator of the F-tree rely on it as ground truth.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.exceptions import VertexNotFoundError
from repro.graph.possible_world import DEFAULT_ENUMERATION_LIMIT, enumerate_worlds
from repro.graph.uncertain_graph import UncertainGraph
from repro.reachability.estimators import FlowEstimate, ReachabilityEstimate
from repro.types import Edge, VertexId


def _restrict(graph: UncertainGraph, edges: Optional[Iterable[Edge]]) -> UncertainGraph:
    if edges is None:
        return graph
    return graph.edge_subgraph(edges, keep_all_vertices=True)


def exact_reachability_all(
    graph: UncertainGraph,
    source: VertexId,
    edges: Optional[Iterable[Edge]] = None,
    limit: int = DEFAULT_ENUMERATION_LIMIT,
) -> Dict[VertexId, float]:
    """Return the exact reachability probability from ``source`` to every vertex.

    Parameters
    ----------
    graph:
        The uncertain graph.
    source:
        Source vertex (probability 1.0 to itself).
    edges:
        Optional restriction to a subset of edges.
    limit:
        Maximum number of uncertain edges tolerated before raising
        :class:`~repro.exceptions.ExactEnumerationError`.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    restricted = _restrict(graph, edges)
    probabilities: Dict[VertexId, float] = {vertex: 0.0 for vertex in restricted.vertices()}
    for world, world_probability in enumerate_worlds(restricted, limit=limit):
        for vertex in world.reachable_from(source):
            probabilities[vertex] += world_probability
    # guard against floating point drift beyond [0, 1]
    return {vertex: min(1.0, max(0.0, p)) for vertex, p in probabilities.items()}


def exact_reachability(
    graph: UncertainGraph,
    source: VertexId,
    target: VertexId,
    edges: Optional[Iterable[Edge]] = None,
    limit: int = DEFAULT_ENUMERATION_LIMIT,
) -> ReachabilityEstimate:
    """Exact two-terminal reachability probability ``P(source ↔ target)`` (Definition 2)."""
    if not graph.has_vertex(target):
        raise VertexNotFoundError(target)
    probabilities = exact_reachability_all(graph, source, edges=edges, limit=limit)
    return ReachabilityEstimate(probability=probabilities[target])


def exact_expected_flow(
    graph: UncertainGraph,
    query: VertexId,
    edges: Optional[Iterable[Edge]] = None,
    include_query: bool = False,
    limit: int = DEFAULT_ENUMERATION_LIMIT,
) -> FlowEstimate:
    """Exact expected information flow ``E[flow(Q, G)]`` (Definition 3 / Equation 2)."""
    probabilities = exact_reachability_all(graph, query, edges=edges, limit=limit)
    total = 0.0
    for vertex, probability in probabilities.items():
        if vertex == query and not include_query:
            continue
        total += probability * graph.weight(vertex)
    reachability = {
        vertex: probability
        for vertex, probability in probabilities.items()
        if vertex != query or include_query
    }
    return FlowEstimate(
        expected_flow=total,
        reachability=reachability,
        n_samples=None,
        variance=None,
        include_query=include_query,
    )

"""Analytic reachability for mono-connected (tree-like) graphs.

Lemma 2 of the paper: if there is exactly one path between two vertices,
their reachability probability is the product of the edge probabilities
along that path.  Theorem 2 lifts this to whole mono-connected graphs,
where the expected information flow is the weight-weighted sum of those
path products — no sampling required.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Iterable, Optional, Set

from repro.exceptions import GraphError, VertexNotFoundError
from repro.graph.uncertain_graph import UncertainGraph
from repro.reachability.estimators import FlowEstimate
from repro.types import Edge, VertexId


def _adjacency(
    graph: UncertainGraph, edges: Optional[Iterable[Edge]]
) -> Dict[VertexId, Set[VertexId]]:
    if edges is None:
        return {v: set(graph.neighbors(v)) for v in graph.vertices()}
    adjacency: Dict[VertexId, Set[VertexId]] = {v: set() for v in graph.vertices()}
    for edge in edges:
        adjacency[edge.u].add(edge.v)
        adjacency[edge.v].add(edge.u)
    return adjacency


def is_mono_connected(
    graph: UncertainGraph,
    edges: Optional[Iterable[Edge]] = None,
    within: Optional[Iterable[VertexId]] = None,
) -> bool:
    """Return True if every pair of connected vertices has a unique path.

    A (sub)graph is mono-connected (Definition 6) exactly when it is a
    forest: any cycle would create vertex pairs with two distinct paths.
    ``within`` restricts the test to an induced vertex subset.
    """
    adjacency = _adjacency(graph, edges)
    if within is not None:
        keep = set(within)
        adjacency = {
            v: {n for n in neighbors if n in keep}
            for v, neighbors in adjacency.items()
            if v in keep
        }
    seen: Set[VertexId] = set()
    for start in adjacency:
        if start in seen:
            continue
        # BFS cycle detection on the undirected component
        parent: Dict[VertexId, Optional[VertexId]] = {start: None}
        queue = deque([start])
        seen.add(start)
        while queue:
            current = queue.popleft()
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    parent[neighbor] = current
                    queue.append(neighbor)
                elif parent.get(current) != neighbor:
                    return False
    return True


def mono_connected_reachability(
    graph: UncertainGraph,
    source: VertexId,
    edges: Optional[Iterable[Edge]] = None,
) -> Dict[VertexId, float]:
    """Exact reachability from ``source`` in a mono-connected (sub)graph.

    For every vertex connected to ``source`` the probability is the
    product of the edge probabilities on the unique path (Lemma 2).
    Unreachable vertices get probability 0.

    Raises
    ------
    GraphError
        If the component containing ``source`` is not mono-connected.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    adjacency = _adjacency(graph, edges)
    probabilities: Dict[VertexId, float] = {vertex: 0.0 for vertex in adjacency}
    probabilities[source] = 1.0
    parent: Dict[VertexId, Optional[VertexId]] = {source: None}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in adjacency[current]:
            if neighbor not in parent:
                parent[neighbor] = current
                probabilities[neighbor] = probabilities[current] * graph.probability(
                    current, neighbor
                )
                queue.append(neighbor)
            elif parent.get(current) != neighbor:
                raise GraphError(
                    "graph component is not mono-connected: "
                    f"cycle detected at edge ({current!r}, {neighbor!r})"
                )
    return probabilities


def mono_connected_expected_flow(
    graph: UncertainGraph,
    query: VertexId,
    edges: Optional[Iterable[Edge]] = None,
    include_query: bool = False,
) -> FlowEstimate:
    """Exact expected information flow for a mono-connected subgraph (Theorem 2)."""
    probabilities = mono_connected_reachability(graph, query, edges=edges)
    total = 0.0
    reachability: Dict[VertexId, float] = {}
    for vertex, probability in probabilities.items():
        if vertex == query and not include_query:
            continue
        reachability[vertex] = probability
        total += probability * graph.weight(vertex)
    return FlowEstimate(
        expected_flow=total,
        reachability=reachability,
        n_samples=None,
        variance=None,
        include_query=include_query,
    )


def path_probability(graph: UncertainGraph, path: Iterable[VertexId]) -> float:
    """Return the probability that every edge of ``path`` exists (Lemma 2 product)."""
    vertices = list(path)
    if len(vertices) <= 1:
        return 1.0
    log_probability = 0.0
    for u, v in zip(vertices, vertices[1:]):
        log_probability += math.log(graph.probability(u, v))
    return math.exp(log_probability)

"""The possible-world sampling engine (single entry point for Lemma 1).

Every Monte-Carlo estimator in the library — whole-graph expected flow,
two-terminal reachability, and the F-tree's per-component reachability —
is the same computation wearing different aggregation: draw ``n``
possible worlds, mark which vertices each world connects to a source,
and average.  The engine factors that shared core out:

1. :class:`repro.reachability.backends.base.SamplingProblem` maps the
   (restricted) edge set and any extra vertices to contiguous integer
   ids once;
2. a pluggable :class:`~repro.reachability.backends.base.SamplingBackend`
   produces the boolean ``(n_samples, n_vertices)`` reachability matrix
   (see :mod:`repro.reachability.backends` for the registry);
3. the engine aggregates that matrix into :class:`FlowEstimate`,
   :class:`ReachabilityEstimate` or per-vertex probability dicts.

Because the aggregation is shared and all built-in backends consume the
random stream in the same order, estimates are bit-for-bit identical
across backends for the same seed — the property the cross-backend test
harness pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.exceptions import SampleSizeError, VertexNotFoundError
from repro.graph.uncertain_graph import UncertainGraph
from repro.reachability.backends import BackendLike, make_backend
from repro.reachability.backends.base import (
    SamplingBackend,
    SamplingProblem,
    propagate_reachability_fallback,
    sample_flips,
)
from repro.reachability.estimators import FlowEstimate, ReachabilityEstimate
from repro.rng import SeedLike, ensure_rng
from repro.types import Edge, VertexId


@dataclass(frozen=True, eq=False)
class WorldBatch:
    """The result of one engine run: an indexed problem plus its worlds.

    Attributes
    ----------
    problem:
        The indexed sampling problem the batch was drawn for.
    reached:
        Boolean matrix of shape ``(n_samples, n_vertices)``; entry
        ``[s, v]`` is True iff indexed vertex ``v`` is connected to the
        source in world ``s``.
    """

    problem: SamplingProblem
    reached: np.ndarray

    @property
    def n_samples(self) -> int:
        """Number of sampled worlds in the batch."""
        return int(self.reached.shape[0])

    def hit_frequency(self, vertex: VertexId) -> float:
        """Return the fraction of worlds in which ``vertex`` was reached.

        Vertices outside the indexed problem were never reached (they are
        not incident to any sampled edge), so they report 0.0.
        """
        try:
            index = self.problem.index_of(vertex)
        except KeyError:
            return 0.0
        return float(self.reached[:, index].sum()) / self.n_samples

    def hit_frequencies(self, vertices: Iterable[VertexId]) -> np.ndarray:
        """Return the hit frequency of every listed vertex as one array.

        One vectorized column gather instead of a Python loop of
        :meth:`hit_frequency` calls; vertices outside the indexed
        problem report 0.0.  The result aligns with the input order.
        """
        vertices = list(vertices)
        frequencies = np.zeros(len(vertices), dtype=np.float64)
        positions: List[int] = []
        columns: List[int] = []
        for position, vertex in enumerate(vertices):
            try:
                columns.append(self.problem.index_of(vertex))
            except KeyError:
                continue
            positions.append(position)
        if positions:
            counts = self.reached[:, columns].sum(axis=0)
            frequencies[positions] = counts / self.n_samples
        return frequencies


@dataclass(frozen=True, eq=False)
class FlipBatch:
    """An indexed problem plus one shared edge-flip (survival) matrix.

    Unlike :class:`WorldBatch` this holds the *raw worlds* — which edges
    survived in each sample — before any reachability propagation, so
    one batch can be re-propagated for many different active edge
    subsets (the common-random-numbers candidate scoring of
    :mod:`repro.reachability.context`).

    Attributes
    ----------
    problem:
        The indexed sampling problem the flips were drawn for.
    flips:
        Boolean matrix of shape ``(n_samples, n_edges)``; entry
        ``[s, e]`` is True iff indexed edge ``e`` survived in world ``s``.
    """

    problem: SamplingProblem
    flips: np.ndarray

    @property
    def n_samples(self) -> int:
        """Number of sampled worlds in the batch."""
        return int(self.flips.shape[0])


class SamplingEngine:
    """Batched possible-world sampler with a pluggable backend.

    Parameters
    ----------
    backend:
        A backend name from :data:`repro.reachability.backends.BACKEND_NAMES`,
        an already constructed backend instance, or ``None`` for the
        default (:data:`repro.reachability.backends.DEFAULT_BACKEND`).
    """

    def __init__(self, backend: BackendLike = None) -> None:
        self.backend: SamplingBackend = make_backend(backend)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SamplingEngine backend={self.backend.name!r}>"

    # ------------------------------------------------------------------
    # core: draw a batch of worlds
    # ------------------------------------------------------------------
    def sample_worlds(
        self,
        graph: UncertainGraph,
        source: VertexId,
        n_samples: int,
        seed: SeedLike = None,
        edges: Optional[Iterable[Edge]] = None,
        extra_vertices: Iterable[VertexId] = (),
    ) -> WorldBatch:
        """Draw ``n_samples`` worlds and compute reachability from ``source``.

        Parameters
        ----------
        graph:
            The uncertain graph supplying edge probabilities.
        source:
            The vertex reachability is measured from.
        n_samples:
            Number of independent possible worlds.
        seed:
            Seed or generator; the stream contract (world-major edge
            flips) makes the batch identical across built-in backends.
        edges:
            Optional restriction to a subset of edges (the candidate
            subgraph of the selection algorithms).
        extra_vertices:
            Vertices to index even when no restricted edge touches them
            (e.g. the isolated targets of a component estimate).
        """
        if n_samples <= 0:
            raise SampleSizeError(n_samples)
        rng = ensure_rng(seed)
        problem = SamplingProblem.from_edges(
            _restricted_edges(graph, edges), source, extra_vertices=extra_vertices
        )
        reached = self.backend.sample_reachability(problem, int(n_samples), rng)
        return WorldBatch(problem=problem, reached=reached)

    # ------------------------------------------------------------------
    # flip-matrix / delta-propagation primitives (CRN candidate scoring)
    # ------------------------------------------------------------------
    def sample_flips(
        self,
        graph: UncertainGraph,
        source: VertexId,
        n_samples: int,
        seed: SeedLike = None,
        edges: Optional[Iterable[Edge]] = None,
        extra_vertices: Iterable[VertexId] = (),
    ) -> FlipBatch:
        """Draw one shared edge-flip matrix without propagating it.

        The flips are produced by the backend-independent
        :func:`~repro.reachability.backends.base.sample_flips` stream
        implementation, so the batch is bit-for-bit identical across
        backends for the same seed — which is what lets the evaluation
        context guarantee identical candidate scores on any backend.
        """
        if n_samples <= 0:
            raise SampleSizeError(n_samples)
        rng = ensure_rng(seed)
        problem = SamplingProblem.from_edges(
            _restricted_edges(graph, edges), source, extra_vertices=extra_vertices
        )
        flips = sample_flips(problem, int(n_samples), rng)
        return FlipBatch(problem=problem, flips=flips)

    def propagate(
        self,
        problem: SamplingProblem,
        flips: np.ndarray,
        edge_indices: np.ndarray,
        base_reached: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Closure of a flip matrix over the listed active edges.

        Thin passthrough to the backend's ``propagate_reachability``
        primitive (see :class:`~repro.reachability.backends.base.SamplingBackend`);
        backends predating the incremental contract fall back to the
        backend-independent reference closure.
        """
        propagate = getattr(
            self.backend, "propagate_reachability", propagate_reachability_fallback
        )
        return propagate(problem, flips, edge_indices, base_reached=base_reached)

    # ------------------------------------------------------------------
    # aggregations (the three public estimators route through these)
    # ------------------------------------------------------------------
    def expected_flow(
        self,
        graph: UncertainGraph,
        query: VertexId,
        n_samples: int = 1000,
        seed: SeedLike = None,
        edges: Optional[Iterable[Edge]] = None,
        include_query: bool = False,
    ) -> FlowEstimate:
        """Monte-Carlo estimate of ``E[flow(Q, G)]`` (Lemma 1)."""
        if not graph.has_vertex(query):
            raise VertexNotFoundError(query)
        batch = self.sample_worlds(graph, query, n_samples, seed=seed, edges=edges)
        problem, reached = batch.problem, batch.reached
        n_samples = batch.n_samples

        weights = graph.weights()
        weight_vector = np.array(
            [weights.get(vertex, 0.0) for vertex in problem.vertex_ids], dtype=np.float64
        )
        if not include_query:
            # cheaper than masking the query's (always-True) column out of
            # the reached matrix: its flow contribution becomes zero here
            # and its reachability entry is skipped below
            weight_vector[problem.source] = 0.0
        flow_samples = reached.astype(np.float64) @ weight_vector
        hit_counts = reached.sum(axis=0)
        reachability = {
            vertex: int(count) / n_samples
            for index, (vertex, count) in enumerate(zip(problem.vertex_ids, hit_counts))
            if count and (include_query or index != problem.source)
        }
        variance = float(flow_samples.var(ddof=1)) if n_samples > 1 else 0.0
        return FlowEstimate(
            expected_flow=float(flow_samples.mean()),
            reachability=reachability,
            n_samples=n_samples,
            variance=variance,
            include_query=include_query,
        )

    def pair_reachability(
        self,
        graph: UncertainGraph,
        source: VertexId,
        target: VertexId,
        n_samples: int = 1000,
        seed: SeedLike = None,
        edges: Optional[Iterable[Edge]] = None,
    ) -> ReachabilityEstimate:
        """Monte-Carlo estimate of the two-terminal reachability ``P(source ↔ target)``."""
        for vertex in (source, target):
            if not graph.has_vertex(vertex):
                raise VertexNotFoundError(vertex)
        if n_samples <= 0:
            raise SampleSizeError(n_samples)
        if source == target:
            return ReachabilityEstimate(
                probability=1.0, n_samples=n_samples, successes=n_samples
            )
        batch = self.sample_worlds(
            graph, source, n_samples, seed=seed, edges=edges, extra_vertices=(target,)
        )
        successes = int(batch.reached[:, batch.problem.index_of(target)].sum())
        return ReachabilityEstimate(
            probability=successes / batch.n_samples,
            n_samples=batch.n_samples,
            successes=successes,
        )

    def component_reachability(
        self,
        graph: UncertainGraph,
        anchor: VertexId,
        vertices: Iterable[VertexId],
        edges: Iterable[Edge],
        n_samples: int = 1000,
        seed: SeedLike = None,
    ) -> Dict[VertexId, float]:
        """Estimate ``P(v ↔ anchor)`` for every ``v`` of an edge-induced component."""
        targets: List[VertexId] = [v for v in vertices if v != anchor]
        batch = self.sample_worlds(
            graph,
            anchor,
            n_samples,
            seed=seed,
            edges=list(edges),
            extra_vertices=targets,
        )
        frequencies = batch.hit_frequencies(targets)
        return {vertex: float(f) for vertex, f in zip(targets, frequencies)}


def _restricted_edges(
    graph: UncertainGraph, edges: Optional[Iterable[Edge]]
) -> List[Tuple[Edge, float]]:
    """Pair each (optionally restricted) edge with its probability."""
    if edges is None:
        return list(graph.probabilities().items())
    return [(edge, graph.probability(edge)) for edge in edges]


__all__ = ["FlipBatch", "SamplingEngine", "WorldBatch"]

"""The possible-world sampling engine (single entry point for Lemma 1).

Every Monte-Carlo estimator in the library — whole-graph expected flow,
two-terminal reachability, and the F-tree's per-component reachability —
is the same computation wearing different aggregation: draw ``n``
possible worlds, mark which vertices each world connects to a source,
and average.  The engine factors that shared core out:

1. :func:`repro.reachability.layout.graph_layout` maps the (restricted)
   edge set to contiguous integer ids **once per graph content** — the
   digest-keyed :class:`~repro.reachability.layout.LayoutCache` shares
   the interned :class:`~repro.reachability.layout.GraphLayout` across
   calls, engines and threads, and
   :meth:`~repro.reachability.layout.GraphLayout.problem` materializes
   the per-call :class:`~repro.reachability.backends.base.SamplingProblem`
   view (plus any extra vertices) in O(1);
2. a pluggable :class:`~repro.reachability.backends.base.SamplingBackend`
   produces the boolean ``(n_samples, n_vertices)`` reachability matrix
   (see :mod:`repro.reachability.backends` for the registry);
3. the engine aggregates that matrix into :class:`FlowEstimate`,
   :class:`ReachabilityEstimate` or per-vertex probability dicts.

Because the aggregation is shared and all built-in backends consume the
random stream in the same order, estimates are bit-for-bit identical
across backends for the same seed — the property the cross-backend test
harness pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Union

import numpy as np

from repro.exceptions import SampleSizeError, VertexNotFoundError
from repro.graph.uncertain_graph import UncertainGraph
from repro.parallel.adaptive import AUTO_SAMPLES, AdaptiveSettings, shard_rounds
from repro.parallel.executor import (
    ExecutorLike,
    SamplingExecutor,
    SerialExecutor,
    ShardTask,
    make_executor,
    resolve_executor,
)
from repro.parallel.plan import get_default_shard_size, plan_shards
from repro.reachability.backends import BackendLike, make_backend
from repro.reachability.backends.base import (
    SamplingBackend,
    SamplingProblem,
    propagate_reachability_fallback,
    sample_flips,
)
from repro.reachability.layout import graph_layout
from repro.reachability.confidence import (
    flow_confidence_interval,
    proportion_interval_function,
)
from repro.reachability.estimators import FlowEstimate, ReachabilityEstimate
from repro.rng import SeedLike, ensure_rng, split_seed_sequences
from repro.telemetry import current_telemetry
from repro.types import Edge, VertexId

#: Sample-count specification: a positive integer budget, or
#: :data:`~repro.parallel.adaptive.AUTO_SAMPLES` for CI-driven stopping.
SampleSpec = Union[int, str]

#: Shared in-process executor for sharded paths that were not handed one.
_SERIAL_EXECUTOR = SerialExecutor()


@dataclass(frozen=True, eq=False)
class WorldBatch:
    """The result of one engine run: an indexed problem plus its worlds.

    Attributes
    ----------
    problem:
        The indexed sampling problem the batch was drawn for.
    reached:
        Boolean matrix of shape ``(n_samples, n_vertices)``; entry
        ``[s, v]`` is True iff indexed vertex ``v`` is connected to the
        source in world ``s``.
    """

    problem: SamplingProblem
    reached: np.ndarray

    @property
    def n_samples(self) -> int:
        """Number of sampled worlds in the batch."""
        return int(self.reached.shape[0])

    def hit_frequency(self, vertex: VertexId) -> float:
        """Return the fraction of worlds in which ``vertex`` was reached.

        Vertices outside the indexed problem were never reached (they are
        not incident to any sampled edge), so they report 0.0.
        """
        try:
            index = self.problem.index_of(vertex)
        except KeyError:
            return 0.0
        return float(self.reached[:, index].sum()) / self.n_samples

    def hit_counts(self, vertices: Iterable[VertexId]) -> np.ndarray:
        """Return the number of worlds in which each listed vertex was reached.

        One vectorized column gather instead of a Python loop; vertices
        outside the indexed problem were never reached (they are not
        incident to any sampled edge) and report 0.  The ``int64``
        result aligns with the input order.
        """
        vertices = list(vertices)
        counts = np.zeros(len(vertices), dtype=np.int64)
        positions: List[int] = []
        columns: List[int] = []
        for position, vertex in enumerate(vertices):
            try:
                columns.append(self.problem.index_of(vertex))
            except KeyError:
                continue
            positions.append(position)
        if positions:
            counts[positions] = self.reached[:, columns].sum(axis=0)
        return counts

    def hit_frequencies(self, vertices: Iterable[VertexId]) -> np.ndarray:
        """Return the hit frequency of every listed vertex as one array.

        The bulk counterpart of :meth:`hit_frequency`: one
        :meth:`hit_counts` column gather divided by the sample count.
        Vertices outside the indexed problem report 0.0; the result
        aligns with the input order.
        """
        return self.hit_counts(vertices) / self.n_samples


@dataclass(frozen=True, eq=False)
class FlipBatch:
    """An indexed problem plus one shared edge-flip (survival) matrix.

    Unlike :class:`WorldBatch` this holds the *raw worlds* — which edges
    survived in each sample — before any reachability propagation, so
    one batch can be re-propagated for many different active edge
    subsets (the common-random-numbers candidate scoring of
    :mod:`repro.reachability.context`).

    Attributes
    ----------
    problem:
        The indexed sampling problem the flips were drawn for.
    flips:
        Boolean matrix of shape ``(n_samples, n_edges)``; entry
        ``[s, e]`` is True iff indexed edge ``e`` survived in world ``s``.
    """

    problem: SamplingProblem
    flips: np.ndarray

    @property
    def n_samples(self) -> int:
        """Number of sampled worlds in the batch."""
        return int(self.flips.shape[0])


class SamplingEngine:
    """Batched possible-world sampler with a pluggable backend.

    Parameters
    ----------
    backend:
        A backend name from :data:`repro.reachability.backends.BACKEND_NAMES`,
        an already constructed backend instance, or ``None`` for the
        default (:data:`repro.reachability.backends.DEFAULT_BACKEND`).
    executor:
        Sharded-sampling executor (see :mod:`repro.parallel`): ``None``
        defers to the process-wide default (normally unsharded
        single-stream sampling, the historical behaviour), an integer is
        a worker count, or pass a :class:`~repro.parallel.executor.SamplingExecutor`
        instance to share one pool across engines.
    shard_size:
        Worlds per shard when an executor is active (``None`` uses
        :data:`~repro.parallel.plan.DEFAULT_SHARD_SIZE`).  Part of the
        determinism key: results are a pure function of
        ``(seed, n_samples, shard_size)`` and never of worker count.
    """

    def __init__(
        self,
        backend: BackendLike = None,
        executor: ExecutorLike = None,
        shard_size: Optional[int] = None,
    ) -> None:
        self.backend: SamplingBackend = make_backend(backend)
        self.executor: Optional[SamplingExecutor] = make_executor(executor)
        self.shard_size = shard_size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SamplingEngine backend={self.backend.name!r}>"

    # ------------------------------------------------------------------
    # executor / shard plumbing
    # ------------------------------------------------------------------
    def _resolve_executor(self, executor: ExecutorLike) -> Optional[SamplingExecutor]:
        """Call-level spec beats the engine's executor beats the global default."""
        if executor is not None:
            return make_executor(executor)
        if self.executor is not None:
            return self.executor
        return resolve_executor(None)

    def _resolve_shard_size(self, shard_size: Optional[int]) -> int:
        resolved = shard_size if shard_size is not None else self.shard_size
        return int(resolved) if resolved is not None else get_default_shard_size()

    def _run_sharded(
        self,
        problem: SamplingProblem,
        n_samples: int,
        seed: SeedLike,
        executor: SamplingExecutor,
        shard_size: Optional[int],
        backend: Optional[SamplingBackend],
    ) -> np.ndarray:
        """Split one request into seeded shard tasks and reduce in order.

        ``backend=None`` draws raw flip matrices, otherwise reachability
        matrices.  Deterministic per ``(seed, n_samples, shard_size)``:
        shard ``i`` runs on the ``i``-th spawned child seed and the
        partial results are concatenated in shard order, so worker count
        and completion order never influence the reduction.
        """
        plan = plan_shards(n_samples, self._resolve_shard_size(shard_size))
        children = split_seed_sequences(seed, plan.n_shards)
        tasks = [
            ShardTask(problem=problem, n_samples=size, seed=child, backend=backend)
            for size, child in zip(plan.shard_sizes, children)
        ]
        parts = executor.map_shards(tasks)
        width = problem.n_edges if backend is None else problem.n_vertices
        if not parts:
            return np.zeros((0, width), dtype=bool)
        return np.vstack(parts)

    # ------------------------------------------------------------------
    # core: draw a batch of worlds
    # ------------------------------------------------------------------
    def sample_worlds(
        self,
        graph: UncertainGraph,
        source: VertexId,
        n_samples: int,
        seed: SeedLike = None,
        edges: Optional[Iterable[Edge]] = None,
        extra_vertices: Iterable[VertexId] = (),
        executor: ExecutorLike = None,
        shard_size: Optional[int] = None,
    ) -> WorldBatch:
        """Draw ``n_samples`` worlds and compute reachability from ``source``.

        Parameters
        ----------
        graph:
            The uncertain graph supplying edge probabilities.
        source:
            The vertex reachability is measured from.
        n_samples:
            Number of independent possible worlds.
        seed:
            Seed or generator; the stream contract (world-major edge
            flips) makes the batch identical across built-in backends.
        edges:
            Optional restriction to a subset of edges (the candidate
            subgraph of the selection algorithms).
        extra_vertices:
            Vertices to index even when no restricted edge touches them
            (e.g. the isolated targets of a component estimate).
        executor:
            Sharded-sampling executor override (see :mod:`repro.parallel`).
            With an active executor the batch is drawn shard by shard
            from per-shard child seeds — a different (equally valid)
            stream than the unsharded path, but bit-for-bit identical
            for any worker count given ``(seed, n_samples, shard_size)``.
            Note an *integer* spec here builds (and tears down) a fresh
            executor per call — for repeated calls pass an executor
            instance, or set one at engine construction, so the process
            pool is reused.
        shard_size:
            Worlds per shard for the executor path.
        """
        if n_samples <= 0:
            raise SampleSizeError(n_samples)
        problem = graph_layout(graph, edges).problem(source, extra_vertices)
        active = self._resolve_executor(executor)
        tel = current_telemetry()
        if tel.enabled:
            with tel.span(
                "engine.sample_worlds",
                backend=self.backend.name,
                n_samples=int(n_samples),
                sharded=active is not None,
            ):
                reached = self._draw_worlds(problem, n_samples, seed, active, shard_size)
            tel.count("engine.sample_calls")
            tel.count("engine.worlds_sampled", int(n_samples))
        else:
            reached = self._draw_worlds(problem, n_samples, seed, active, shard_size)
        return WorldBatch(problem=problem, reached=reached)

    def _draw_worlds(
        self,
        problem: SamplingProblem,
        n_samples: int,
        seed: SeedLike,
        active: Optional[SamplingExecutor],
        shard_size: Optional[int],
    ) -> np.ndarray:
        if active is None:
            rng = ensure_rng(seed)
            return self.backend.sample_reachability(problem, int(n_samples), rng)
        return self._run_sharded(
            problem, int(n_samples), seed, active, shard_size, self.backend
        )

    # ------------------------------------------------------------------
    # flip-matrix / delta-propagation primitives (CRN candidate scoring)
    # ------------------------------------------------------------------
    def sample_flips(
        self,
        graph: UncertainGraph,
        source: VertexId,
        n_samples: int,
        seed: SeedLike = None,
        edges: Optional[Iterable[Edge]] = None,
        extra_vertices: Iterable[VertexId] = (),
        executor: ExecutorLike = None,
        shard_size: Optional[int] = None,
    ) -> FlipBatch:
        """Draw one shared edge-flip matrix without propagating it.

        The flips are produced by the backend-independent
        :func:`~repro.reachability.backends.base.sample_flips` stream
        implementation, so the batch is bit-for-bit identical across
        backends for the same seed — which is what lets the evaluation
        context guarantee identical candidate scores on any backend.
        With an active ``executor`` the matrix is drawn shard by shard
        (still backend-independent, still worker-count invariant).
        """
        if n_samples <= 0:
            raise SampleSizeError(n_samples)
        problem = graph_layout(graph, edges).problem(source, extra_vertices)
        active = self._resolve_executor(executor)
        tel = current_telemetry()
        if tel.enabled:
            with tel.span(
                "engine.sample_flips",
                n_samples=int(n_samples),
                sharded=active is not None,
            ):
                flips = self._draw_flips(problem, n_samples, seed, active, shard_size)
            tel.count("engine.flip_calls")
            tel.count("engine.worlds_sampled", int(n_samples))
        else:
            flips = self._draw_flips(problem, n_samples, seed, active, shard_size)
        return FlipBatch(problem=problem, flips=flips)

    def _draw_flips(
        self,
        problem: SamplingProblem,
        n_samples: int,
        seed: SeedLike,
        active: Optional[SamplingExecutor],
        shard_size: Optional[int],
    ) -> np.ndarray:
        if active is None:
            rng = ensure_rng(seed)
            return sample_flips(problem, int(n_samples), rng)
        return self._run_sharded(
            problem, int(n_samples), seed, active, shard_size, backend=None
        )

    # ------------------------------------------------------------------
    # adaptive (CI-driven) sampling
    # ------------------------------------------------------------------
    def _sample_worlds_adaptive(
        self,
        graph: UncertainGraph,
        source: VertexId,
        seed: SeedLike,
        edges: Optional[Iterable[Edge]],
        extra_vertices: Iterable[VertexId],
        executor: ExecutorLike,
        shard_size: Optional[int],
        settings: AdaptiveSettings,
        width_of: Callable[[SamplingProblem, np.ndarray, int], float],
    ) -> WorldBatch:
        """Draw shards until ``width_of(problem, hit_counts, n)`` hits the target.

        The shard schedule (:func:`~repro.parallel.adaptive.shard_rounds`)
        and the seed split depend only on ``(seed, settings, shard_size)``,
        so the stopping point — and therefore the returned batch — is
        identical for any worker count.
        """
        problem = graph_layout(graph, edges).problem(source, extra_vertices)
        active = self._resolve_executor(executor) or _SERIAL_EXECUTOR
        size = self._resolve_shard_size(shard_size)
        plan = plan_shards(settings.max_samples, size)
        children = split_seed_sequences(seed, plan.n_shards)

        tel = current_telemetry()
        if not tel.enabled:
            return self._adaptive_loop(
                problem, active, size, plan.shard_sizes, children, settings, width_of
            )[0]
        with tel.span(
            "engine.sample_worlds_adaptive",
            backend=self.backend.name,
            max_samples=settings.max_samples,
            shard_size=size,
        ) as span:
            batch, rounds = self._adaptive_loop(
                problem, active, size, plan.shard_sizes, children, settings, width_of
            )
            span.set(n_samples=batch.n_samples, rounds=rounds)
        tel.count("engine.adaptive.rounds", rounds)
        tel.count("engine.worlds_sampled", batch.n_samples)
        tel.count("engine.sample_calls")
        return batch

    def _adaptive_loop(
        self,
        problem: SamplingProblem,
        active: SamplingExecutor,
        size: int,
        shard_sizes,
        children,
        settings: AdaptiveSettings,
        width_of: Callable[[SamplingProblem, np.ndarray, int], float],
    ):
        blocks: List[np.ndarray] = []
        counts = np.zeros(problem.n_vertices, dtype=np.int64)
        drawn_shards = 0
        drawn_samples = 0
        rounds = 0
        for round_shards in shard_rounds(settings, size):
            rounds += 1
            tasks = [
                ShardTask(
                    problem=problem,
                    n_samples=shard_sizes[index],
                    seed=children[index],
                    backend=self.backend,
                )
                for index in range(drawn_shards, drawn_shards + round_shards)
            ]
            parts = active.map_shards(tasks)
            for part in parts:
                blocks.append(part)
                counts += part.sum(axis=0)
                drawn_samples += part.shape[0]
            drawn_shards += round_shards
            if drawn_samples >= settings.min_samples:
                if width_of(problem, counts, drawn_samples) <= settings.target_width:
                    break
        reached = (
            np.vstack(blocks)
            if blocks
            else np.zeros((0, problem.n_vertices), dtype=bool)
        )
        return WorldBatch(problem=problem, reached=reached), rounds

    def propagate(
        self,
        problem: SamplingProblem,
        flips: np.ndarray,
        edge_indices: np.ndarray,
        base_reached: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Closure of a flip matrix over the listed active edges.

        Thin passthrough to the backend's ``propagate_reachability``
        primitive (see :class:`~repro.reachability.backends.base.SamplingBackend`);
        backends predating the incremental contract fall back to the
        backend-independent reference closure.
        """
        propagate = getattr(
            self.backend, "propagate_reachability", propagate_reachability_fallback
        )
        return propagate(problem, flips, edge_indices, base_reached=base_reached)

    # ------------------------------------------------------------------
    # aggregations (the three public estimators route through these)
    # ------------------------------------------------------------------
    def expected_flow(
        self,
        graph: UncertainGraph,
        query: VertexId,
        n_samples: SampleSpec = 1000,
        seed: SeedLike = None,
        edges: Optional[Iterable[Edge]] = None,
        include_query: bool = False,
        executor: ExecutorLike = None,
        shard_size: Optional[int] = None,
        adaptive: Optional[AdaptiveSettings] = None,
    ) -> FlowEstimate:
        """Monte-Carlo estimate of ``E[flow(Q, G)]`` (Lemma 1).

        ``n_samples="auto"`` switches to adaptive CI-driven stopping:
        shards of worlds are drawn until the weighted flow confidence
        interval (:func:`repro.reachability.confidence.flow_confidence_interval`)
        is narrower than ``adaptive.target_width`` or the
        ``adaptive.max_samples`` cap is hit.
        """
        if not graph.has_vertex(query):
            raise VertexNotFoundError(query)
        if _is_auto(n_samples):
            settings = adaptive or AdaptiveSettings()
            weights = graph.weights()

            def flow_width(problem: SamplingProblem, counts: np.ndarray, n: int) -> float:
                reachability_counts = {}
                interval_weights = {}
                for index, vertex in enumerate(problem.vertex_ids):
                    if not include_query and index == problem.source:
                        continue
                    weight = float(weights.get(vertex, 0.0))
                    if weight == 0.0:
                        continue
                    reachability_counts[vertex] = int(counts[index])
                    interval_weights[vertex] = weight
                return flow_confidence_interval(
                    reachability_counts,
                    n,
                    interval_weights,
                    alpha=settings.alpha,
                    method=settings.method,
                ).width

            batch = self._sample_worlds_adaptive(
                graph, query, seed, edges, (), executor, shard_size, settings, flow_width
            )
        else:
            batch = self.sample_worlds(
                graph,
                query,
                n_samples,
                seed=seed,
                edges=edges,
                executor=executor,
                shard_size=shard_size,
            )
        return aggregate_expected_flow(graph, batch, include_query=include_query)

    def pair_reachability(
        self,
        graph: UncertainGraph,
        source: VertexId,
        target: VertexId,
        n_samples: SampleSpec = 1000,
        seed: SeedLike = None,
        edges: Optional[Iterable[Edge]] = None,
        executor: ExecutorLike = None,
        shard_size: Optional[int] = None,
        adaptive: Optional[AdaptiveSettings] = None,
    ) -> ReachabilityEstimate:
        """Monte-Carlo estimate of the two-terminal reachability ``P(source ↔ target)``.

        ``n_samples="auto"`` draws shards until the Wilson (or normal)
        interval around the success fraction is narrower than
        ``adaptive.target_width``, capped at ``adaptive.max_samples``.
        """
        for vertex in (source, target):
            if not graph.has_vertex(vertex):
                raise VertexNotFoundError(vertex)
        auto = _is_auto(n_samples)
        if not auto and n_samples <= 0:
            raise SampleSizeError(n_samples)
        if source == target:
            pinned = (adaptive or AdaptiveSettings()).min_samples if auto else n_samples
            return ReachabilityEstimate(probability=1.0, n_samples=pinned, successes=pinned)
        if auto:
            settings = adaptive or AdaptiveSettings()
            interval_fn = proportion_interval_function(settings.method)

            def pair_width(problem: SamplingProblem, counts: np.ndarray, n: int) -> float:
                successes = int(counts[problem.index_of(target)])
                return interval_fn(successes, n, alpha=settings.alpha).width

            batch = self._sample_worlds_adaptive(
                graph,
                source,
                seed,
                edges,
                (target,),
                executor,
                shard_size,
                settings,
                pair_width,
            )
        else:
            batch = self.sample_worlds(
                graph,
                source,
                n_samples,
                seed=seed,
                edges=edges,
                extra_vertices=(target,),
                executor=executor,
                shard_size=shard_size,
            )
        return aggregate_pair_reachability(batch, target)

    def component_reachability(
        self,
        graph: UncertainGraph,
        anchor: VertexId,
        vertices: Iterable[VertexId],
        edges: Iterable[Edge],
        n_samples: int = 1000,
        seed: SeedLike = None,
        executor: ExecutorLike = None,
        shard_size: Optional[int] = None,
    ) -> Dict[VertexId, float]:
        """Estimate ``P(v ↔ anchor)`` for every ``v`` of an edge-induced component."""
        targets: List[VertexId] = [v for v in vertices if v != anchor]
        batch = self.sample_worlds(
            graph,
            anchor,
            n_samples,
            seed=seed,
            edges=list(edges),
            extra_vertices=targets,
            executor=executor,
            shard_size=shard_size,
        )
        return aggregate_component_reachability(batch, targets)


# ----------------------------------------------------------------------
# batch aggregations — shared by the engine's one-shot estimators and the
# batched query service, which answers many queries from one WorldBatch.
# Keeping these as free functions over an already-sampled batch is what
# makes "batched answer == single-query answer" true by construction
# rather than by parallel implementations that must be kept in sync.
# ----------------------------------------------------------------------
def flow_weight_vector(
    graph: UncertainGraph, problem: SamplingProblem, include_query: bool
) -> np.ndarray:
    """Per-indexed-vertex information weights, aligned with ``problem``.

    Vertices outside the graph weigh nothing; with ``include_query``
    False the source's weight is zeroed — cheaper than masking its
    (always-True) column out of a reached matrix, its flow contribution
    simply becomes zero.
    """
    weights = graph.weights()
    weight_vector = np.array(
        [weights.get(vertex, 0.0) for vertex in problem.vertex_ids], dtype=np.float64
    )
    if not include_query:
        weight_vector[problem.source] = 0.0
    return weight_vector


def aggregate_expected_flow(
    graph: UncertainGraph, batch: WorldBatch, include_query: bool = False
) -> FlowEstimate:
    """Aggregate a sampled world batch into a :class:`FlowEstimate`.

    Exactly the aggregation :meth:`SamplingEngine.expected_flow` applies
    after sampling, factored out so a cached or shared batch yields the
    bit-for-bit identical estimate.  Extra always-unreached vertices in
    the batch (e.g. pooled pair-query targets) contribute exact zeros to
    the flow dot product and are skipped by the ``count`` filter, so
    pooling requests over one batch does not perturb the numbers.
    """
    problem, reached = batch.problem, batch.reached
    n_samples = batch.n_samples
    weight_vector = flow_weight_vector(graph, problem, include_query)
    flow_samples = reached.astype(np.float64) @ weight_vector
    hit_counts = reached.sum(axis=0)
    reachability = {
        vertex: int(count) / n_samples
        for index, (vertex, count) in enumerate(zip(problem.vertex_ids, hit_counts))
        if count and (include_query or index != problem.source)
    }
    variance = float(flow_samples.var(ddof=1)) if n_samples > 1 else 0.0
    return FlowEstimate(
        expected_flow=float(flow_samples.mean()),
        reachability=reachability,
        n_samples=n_samples,
        variance=variance,
        include_query=include_query,
    )


def aggregate_pair_reachability(batch: WorldBatch, target: VertexId) -> ReachabilityEstimate:
    """Aggregate a world batch into the two-terminal estimate for ``target``.

    A target outside the indexed problem is not incident to any sampled
    edge, hence reached in no world: zero successes — the same answer a
    batch that carried the target as an always-False extra column would
    produce, which is what lets pooled batches drop the extra columns.
    """
    try:
        successes = int(batch.reached[:, batch.problem.index_of(target)].sum())
    except KeyError:
        successes = 0
    return ReachabilityEstimate(
        probability=successes / batch.n_samples,
        n_samples=batch.n_samples,
        successes=successes,
    )


def aggregate_component_reachability(
    batch: WorldBatch, targets: Iterable[VertexId]
) -> Dict[VertexId, float]:
    """Aggregate a world batch into per-target reachability probabilities.

    One bulk :meth:`WorldBatch.hit_frequencies` column gather; targets
    outside the indexed problem report 0.0.
    """
    targets = list(targets)
    frequencies = batch.hit_frequencies(targets)
    return {vertex: float(f) for vertex, f in zip(targets, frequencies)}


def _is_auto(n_samples: SampleSpec) -> bool:
    """True for the adaptive sentinel; rejects any other string loudly."""
    if isinstance(n_samples, str):
        if n_samples != AUTO_SAMPLES:
            raise ValueError(
                f"n_samples must be a positive integer or {AUTO_SAMPLES!r}, got {n_samples!r}"
            )
        return True
    return False


__all__ = [
    "FlipBatch",
    "SamplingEngine",
    "WorldBatch",
    "aggregate_component_reachability",
    "aggregate_expected_flow",
    "aggregate_pair_reachability",
    "flow_weight_vector",
]

"""Shared-sample evaluation contexts: common-random-numbers scoring.

Every greedy selector spends its time asking the same question hundreds
of times per round: *"what would the expected flow be if I added this
one candidate edge to the edges selected so far?"*.  Resampling a fresh
batch of possible worlds per candidate (the paper's literal scheme, kept
as the ``"resample"`` reference mode) pays the full sampling cost per
candidate **and** compares candidates across independent noise — the
argmax then picks the luckiest draw as often as the best edge.

:class:`EvaluationContext` fixes one batch of sampled edge flips per
selection round instead (common random numbers, CRN):

1. the edge-flip matrix for the whole candidate universe (base edges
   plus every candidate) is drawn **once** per round through the
   backend-independent stream primitive, so the same worlds are reused
   for every candidate and are bit-for-bit identical across backends;
2. the base edge set is propagated once, giving the per-world baseline
   closure and flow;
3. each candidate is scored **incrementally** against that baseline:
   a candidate that attaches a brand-new vertex ``v`` via ``(u, v)``
   changes exactly one column of the closure (``v`` is reached where
   the edge survived and ``u`` was reached — no onward propagation is
   possible because ``v`` has no other active edge), which costs one
   vectorized AND per candidate; a cycle-closing candidate re-runs the
   backend's fixpoint seeded from the baseline closure, which converges
   after a handful of sweeps because only the new frontier can gain.

Because adding an edge can only grow per-world reachability, every CRN
score is ≥ the round's base flow — candidate gains are nonnegative by
construction rather than up to sampling luck.

Typical use (one call per greedy round)::

    context = EvaluationContext(graph, query, n_samples=1000, seed=7)
    scores = context.score_candidates(selected_edges, candidate_edges)
    index, edge, flow = scores.best()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SampleSizeError, VertexNotFoundError
from repro.graph.uncertain_graph import UncertainGraph
from repro.parallel.executor import ExecutorLike
from repro.reachability.backends import BackendLike
from repro.reachability.engine import SamplingEngine, flow_weight_vector
from repro.rng import SeedLike, ensure_rng
from repro.types import Edge, VertexId


@dataclass(frozen=True)
class CandidateScores:
    """Result of scoring one greedy round against a shared world batch.

    Attributes
    ----------
    candidates:
        The scored candidate edges, in input order.
    scores:
        Expected flow of ``base_edges + [candidate]`` per candidate,
        all estimated on the same possible worlds.
    base_flow:
        Expected flow of the base edge set on the same worlds; every
        score is ≥ this value.
    n_samples:
        Number of shared worlds behind the estimates.
    fast_evaluations:
        Candidates scored by the O(n_samples) attach-delta shortcut.
    delta_evaluations:
        Cycle-closing candidates scored by incremental re-propagation.
    """

    candidates: Tuple[Edge, ...]
    scores: np.ndarray
    base_flow: float
    n_samples: int
    fast_evaluations: int
    delta_evaluations: int

    def best(self) -> Tuple[int, Edge, float]:
        """Return ``(index, edge, score)`` of the best candidate.

        Ties break towards the first candidate in input order, which
        keeps selections deterministic across backends (scores are
        bit-for-bit identical, see :class:`EvaluationContext`).
        """
        if not self.candidates:
            raise ValueError("no candidates were scored")
        index = int(np.argmax(self.scores))
        return index, self.candidates[index], float(self.scores[index])

    def gains(self) -> np.ndarray:
        """Per-candidate marginal gain over the base flow (all ≥ 0)."""
        return self.scores - self.base_flow


class EvaluationContext:
    """Common-random-numbers candidate scoring for one greedy selection.

    Parameters
    ----------
    graph:
        The uncertain graph supplying edge probabilities and weights.
    source:
        The query vertex flow is measured towards.
    n_samples:
        Possible worlds shared by all candidates of one round.
    seed:
        Seed or generator; each round consumes fresh draws from the one
        stream, so a seeded context is fully reproducible.
    backend:
        Possible-world sampling backend name or instance (see
        :mod:`repro.reachability.backends`).  Flips are drawn by shared
        stream code and propagation is exact on every backend, so the
        scores — and therefore the selections — are identical across
        backends for the same seed.
    include_query:
        Whether the query vertex's own weight counts towards the flow.
    executor:
        Sharded-sampling executor or worker count (see
        :mod:`repro.parallel`).  When active, each round's shared flip
        matrix is drawn shard by shard from per-shard child seeds — a
        different (equally valid) stream than the unsharded default,
        but bit-for-bit identical for any worker count given
        ``(seed, n_samples, shard_size)``, so selections stay
        reproducible when scaling across cores.
    shard_size:
        Worlds per shard for the executor path.

    ``backend``, ``executor`` and ``shard_size`` left at ``None`` resolve
    from the active :func:`repro.session` (falling back to
    ``repro.runtime.defaults``), so contexts built inside a session
    inherit its configuration without extra arguments.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        source: VertexId,
        n_samples: int = 1000,
        seed: SeedLike = None,
        backend: BackendLike = None,
        include_query: bool = False,
        executor: ExecutorLike = None,
        shard_size: Optional[int] = None,
    ) -> None:
        if not graph.has_vertex(source):
            raise VertexNotFoundError(source)
        if n_samples <= 0:
            raise SampleSizeError(n_samples)
        self.graph = graph
        self.source = source
        self.n_samples = int(n_samples)
        self.include_query = include_query
        self._engine = SamplingEngine(backend, executor=executor, shard_size=shard_size)
        self._rng = ensure_rng(seed)
        #: number of completed scoring rounds (diagnostics)
        self.rounds = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<EvaluationContext source={self.source!r} "
            f"n_samples={self.n_samples} backend={self._engine.backend.name!r}>"
        )

    # ------------------------------------------------------------------
    def score_candidates(
        self,
        base_edges: Sequence[Edge],
        candidates: Sequence[Edge],
    ) -> CandidateScores:
        """Score every candidate edge against one shared world batch.

        Draws the flip matrix for ``base_edges + candidates`` once,
        propagates the base closure once, and scores each candidate
        incrementally.  One call evaluates a whole greedy round.
        """
        base_edges = list(base_edges)
        candidates = list(candidates)
        # every universe edge gets its own independent flip column, so a
        # candidate repeated there would survive with two chances — loud
        # rejection instead of a silently inflated score
        seen = set(base_edges)
        for candidate in candidates:
            if candidate in seen:
                raise ValueError(
                    f"candidate {candidate!r} duplicates a base edge or another candidate"
                )
            seen.add(candidate)
        universe: List[Edge] = base_edges + candidates
        batch = self._engine.sample_flips(
            self.graph, self.source, self.n_samples, seed=self._rng, edges=universe
        )
        problem, flips = batch.problem, batch.flips
        n_base = len(base_edges)
        base_indices = np.arange(n_base)
        base_reached = self._engine.propagate(problem, flips, base_indices)

        weight_vector = flow_weight_vector(self.graph, problem, self.include_query)
        base_flow_worlds = base_reached.astype(np.float64) @ weight_vector
        base_flow = float(base_flow_worlds.mean())

        # vertices already touched by the base subgraph (plus the source):
        # a candidate endpoint outside this set is reachable only through
        # the candidate edge itself, enabling the one-column fast path
        touched = np.zeros(problem.n_vertices, dtype=bool)
        touched[problem.source] = True
        if n_base:
            touched[problem.edge_u[base_indices]] = True
            touched[problem.edge_v[base_indices]] = True

        scores = np.empty(len(candidates), dtype=np.float64)
        fast = 0
        delta = 0
        for position, _ in enumerate(candidates):
            edge_index = n_base + position
            u = int(problem.edge_u[edge_index])
            v = int(problem.edge_v[edge_index])
            attach_target = None
            if touched[u] and not touched[v]:
                attach_target = (u, v)
            elif touched[v] and not touched[u]:
                attach_target = (v, u)
            if attach_target is not None:
                anchor, new_vertex = attach_target
                gained = flips[:, edge_index] & base_reached[:, anchor]
                scores[position] = float(
                    (base_flow_worlds + weight_vector[new_vertex] * gained).mean()
                )
                fast += 1
            else:
                active = np.append(base_indices, edge_index)
                reached = self._engine.propagate(
                    problem, flips, active, base_reached=base_reached
                )
                scores[position] = float(
                    (reached.astype(np.float64) @ weight_vector).mean()
                )
                delta += 1

        self.rounds += 1
        return CandidateScores(
            candidates=tuple(candidates),
            scores=scores,
            base_flow=base_flow,
            n_samples=batch.n_samples,
            fast_evaluations=fast,
            delta_evaluations=delta,
        )


__all__ = ["CandidateScores", "EvaluationContext"]

"""Cheap reachability bounds (related-work baselines).

The paper's related-work section discusses reliability bounds as a
possible alternative to sampling and dismisses them as either too weak or
too expensive.  We implement the two simplest ones so that the claim can
be inspected empirically:

* the **most-probable-path lower bound**: the probability of the single
  most probable path between two vertices lower-bounds their
  reachability probability;
* the **minimum-cut upper bound**: for any vertex cut separating the two
  vertices, the probability that at least one edge across the cut exists
  upper-bounds the reachability probability.  We use the trivial cut
  around the target vertex, which is exactly the "all incident edges
  fail" complement.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Tuple

from repro.algorithms.shortest_path import most_probable_path
from repro.exceptions import VertexNotFoundError
from repro.graph.uncertain_graph import UncertainGraph
from repro.types import Edge, VertexId


def most_probable_path_lower_bound(
    graph: UncertainGraph,
    source: VertexId,
    target: VertexId,
    edges: Optional[Iterable[Edge]] = None,
) -> float:
    """Lower bound on ``P(source ↔ target)``: the most probable path's probability."""
    if source == target:
        return 1.0
    _, probability = most_probable_path(graph, source, target, edges=edges)
    return probability


def cut_upper_bound(
    graph: UncertainGraph,
    source: VertexId,
    target: VertexId,
    edges: Optional[Iterable[Edge]] = None,
) -> float:
    """Upper bound on ``P(source ↔ target)`` from the target's incident-edge cut.

    The target can only be reached if at least one of its incident edges
    exists, so ``1 - prod(1 - p(e))`` over those edges is an upper bound.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    if not graph.has_vertex(target):
        raise VertexNotFoundError(target)
    if source == target:
        return 1.0
    allowed = None if edges is None else set(edges)
    log_all_fail = 0.0
    any_edge = False
    for edge in graph.incident_edges(target):
        if allowed is not None and edge not in allowed:
            continue
        any_edge = True
        p = graph.probability(edge)
        if p >= 1.0:
            return 1.0
        log_all_fail += math.log1p(-p)
    if not any_edge:
        return 0.0
    return 1.0 - math.exp(log_all_fail)


def reachability_bounds(
    graph: UncertainGraph,
    source: VertexId,
    target: VertexId,
    edges: Optional[Iterable[Edge]] = None,
) -> Tuple[float, float]:
    """Return ``(lower, upper)`` bounds on the reachability probability."""
    lower = most_probable_path_lower_bound(graph, source, target, edges=edges)
    upper = cut_upper_bound(graph, source, target, edges=edges)
    # The bounds are independent constructions; numerically the lower
    # bound can exceed the upper one only through floating point noise.
    if lower > upper:
        lower, upper = min(lower, upper), max(lower, upper)
    return lower, upper

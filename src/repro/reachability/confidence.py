"""Confidence intervals for sampled reachability probabilities.

Definition 10 of the paper builds a two-sided ``1 - alpha`` interval
around the sampled success fraction using the normal approximation of
the binomial distribution; the greedy selection heuristic FT+M+CI uses
the interval to prune candidate edges whose flow upper bound falls below
another candidate's lower bound.  The Wilson score interval is provided
as a better-behaved alternative for extreme fractions (an extension over
the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.types import VertexId

#: Minimum number of samples before the Central Limit Theorem based
#: interval may be used for pruning (paper Section 6.3).
MIN_SAMPLES_FOR_PRUNING = 30


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval ``[lower, upper]`` around ``estimate``."""

    estimate: float
    lower: float
    upper: float
    alpha: float

    def __post_init__(self) -> None:
        if not (self.lower <= self.estimate <= self.upper):
            # allow for small floating point wobble, otherwise reject
            if self.lower - 1e-12 > self.estimate or self.estimate > self.upper + 1e-12:
                raise ValueError(
                    f"inconsistent interval [{self.lower}, {self.upper}] "
                    f"around {self.estimate}"
                )

    @property
    def width(self) -> float:
        """Width of the interval."""
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """Return True if ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper

    def dominates(self, other: "ConfidenceInterval") -> bool:
        """Return True if this interval lies entirely above ``other``.

        Used for the CI pruning rule: candidate ``e`` dominates ``e'``
        when ``lb(e) > ub(e')``.
        """
        return self.lower > other.upper


def standard_normal_quantile(p: float) -> float:
    """Return the ``p``-quantile of the standard normal distribution.

    Uses the Acklam rational approximation (relative error below 1.15e-9),
    avoiding a SciPy dependency in the core library.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile probability must lie in (0, 1), got {p!r}")
    # Coefficients of the Acklam approximation.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


def normal_confidence_interval(
    successes: int, n_samples: int, alpha: float = 0.01
) -> ConfidenceInterval:
    """Normal-approximation interval for a binomial proportion (Definition 10).

    The interval is ``p_hat ± z * sqrt(p_hat (1 - p_hat) / n)`` where
    ``z`` is the ``1 - alpha/2`` standard-normal quantile, clamped to
    ``[0, 1]``.

    Note
    ----
    The paper's Equation 6 omits the ``1/sqrt(n)`` factor in its half
    width; we include it, as the Central Limit Theorem requires, so the
    interval actually shrinks with the number of samples.
    """
    _validate_counts(successes, n_samples)
    p_hat = successes / n_samples
    z = standard_normal_quantile(1.0 - alpha / 2.0)
    half_width = z * math.sqrt(p_hat * (1.0 - p_hat) / n_samples)
    return ConfidenceInterval(
        estimate=p_hat,
        lower=max(0.0, p_hat - half_width),
        upper=min(1.0, p_hat + half_width),
        alpha=alpha,
    )


def wilson_confidence_interval(
    successes: int, n_samples: int, alpha: float = 0.01
) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion.

    More reliable than the normal approximation when the success
    fraction is close to 0 or 1 or the sample count is small.
    """
    _validate_counts(successes, n_samples)
    p_hat = successes / n_samples
    z = standard_normal_quantile(1.0 - alpha / 2.0)
    z2 = z * z
    denominator = 1.0 + z2 / n_samples
    centre = (p_hat + z2 / (2.0 * n_samples)) / denominator
    half_width = (
        z
        * math.sqrt(p_hat * (1.0 - p_hat) / n_samples + z2 / (4.0 * n_samples * n_samples))
        / denominator
    )
    return ConfidenceInterval(
        estimate=p_hat,
        lower=max(0.0, centre - half_width),
        upper=min(1.0, centre + half_width),
        alpha=alpha,
    )


#: Binomial-proportion interval functions by method name — the single
#: registry behind ``method=`` arguments (flow intervals, adaptive
#: stopping); add new methods here and every consumer picks them up.
PROPORTION_INTERVAL_METHODS = {
    "normal": normal_confidence_interval,
    "wilson": wilson_confidence_interval,
}


def proportion_interval_function(method: str):
    """Look up a binomial-proportion interval function by method name."""
    try:
        return PROPORTION_INTERVAL_METHODS[method]
    except KeyError:
        raise ValueError(f"unknown confidence interval method {method!r}") from None


def flow_confidence_interval(
    reachability_counts: Mapping[VertexId, int],
    n_samples: int,
    weights: Mapping[VertexId, float],
    alpha: float = 0.01,
    exact_contribution: float = 0.0,
    method: str = "normal",
) -> ConfidenceInterval:
    """Confidence interval for an expected flow aggregated from per-vertex counts.

    Lower/upper flow bounds sum the per-vertex interval bounds weighted
    by the vertex weights (paper Section 6.3); vertices whose
    reachability is known exactly contribute through
    ``exact_contribution``.

    Parameters
    ----------
    reachability_counts:
        For each sampled vertex, the number of worlds in which it reached
        the query vertex.
    n_samples:
        Number of sampled worlds behind each count.
    weights:
        Vertex weights.
    alpha:
        Significance level (paper uses 0.01).
    exact_contribution:
        Flow contributed by analytically-known vertices; added verbatim
        to estimate, lower and upper bound.
    method:
        ``"normal"`` (Definition 10) or ``"wilson"``.
    """
    interval_fn = proportion_interval_function(method)
    estimate = exact_contribution
    lower = exact_contribution
    upper = exact_contribution
    for vertex, successes in reachability_counts.items():
        weight = float(weights.get(vertex, 0.0))
        interval = interval_fn(successes, n_samples, alpha=alpha)
        estimate += interval.estimate * weight
        lower += interval.lower * weight
        upper += interval.upper * weight
    return ConfidenceInterval(estimate=estimate, lower=lower, upper=upper, alpha=alpha)


def _validate_counts(successes: int, n_samples: int) -> None:
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples!r}")
    if successes < 0 or successes > n_samples:
        raise ValueError(
            f"successes must lie in [0, n_samples], got {successes!r} of {n_samples!r}"
        )
